//! The long-lived serving front: [`PlannerService`].
//!
//! The paper frames cleaning-selection as an *interactive loop* — a
//! fact-checker streams claims against a dataset whose values keep
//! getting cleaned — but `solve_batch`/`sweep` are one-shot: the caller
//! blocks until the whole batch returns. This module adds the
//! request/response front the ROADMAP calls for, with no async runtime
//! (none is available offline): a [`PlannerService`] owns an
//! `Arc<SolverRegistry>`, a [`CacheStore`], and a [`WorkerPool`], and
//! callers hand it work via [`PlannerService::submit`] /
//! [`PlannerService::submit_sweep`], getting back a [`RequestHandle`] —
//! a hand-rolled future: poll with [`RequestHandle::is_ready`], take
//! with [`RequestHandle::try_wait`], or block on
//! [`RequestHandle::wait`]. Sweeps return a [`SweepHandle`], which
//! adds incremental consumption on top: because the sweep is
//! decomposed into one task per budget point,
//! [`SweepHandle::wait_next_point`] yields each [`Plan`] the moment its
//! point completes (ascending budget order), while later points are
//! still solving.
//!
//! ## Admission control and fair scheduling
//!
//! Every request is costed by [`Problem::estimated_engine_evals`]
//! (times the number of budget points, for sweeps) and routed to a
//! [`Lane`]:
//!
//! * **Inline** — below [`ServiceOptions::inline_threshold`] the
//!   request is solved synchronously at `submit`; queueing a pool job
//!   would cost more than the solve (the same admission rule as the
//!   batch executor).
//! * **Interactive** — below
//!   [`ServiceOptions::interactive_threshold`]: the latency-sensitive
//!   lane.
//! * **Bulk** — everything else (big sweeps, audits).
//!
//! Pool workers always drain the interactive lane before the bulk
//! lane, and a sweep is decomposed into one task *per budget point* —
//! so even on a single worker, an interactive claim waits for at most
//! one budget point of a running sweep, never for the whole thing.
//! That is what keeps a huge sweep from starving interactive claims.
//!
//! ## Determinism
//!
//! Service plans are byte-identical to their synchronous counterparts
//! ([`SolverRegistry::solve`]/[`SolverRegistry::sweep`]): solvers are
//! pure functions of (problem, budget, engine tables), and the tables
//! are shared through the same fingerprint-keyed [`CacheStore`]. The
//! only fields that may differ are the store-observability counters in
//! [`PlanDiagnostics`](super::PlanDiagnostics), which
//! [`Plan::divergence`] deliberately ignores.
//!
//! Panics inside a request are contained: the worker survives and the
//! handle resolves to [`CoreError::WorkerPanicked`].
//!
//! ## Request lifecycle: cancellation
//!
//! Every in-flight request is cancellable: call
//! [`RequestHandle::cancel`], or simply drop the handle — an abandoned
//! request is cancelled automatically, so work nobody will observe is
//! never solved. Cancellation is cooperative and takes effect at task
//! granularity: a queued task is dropped *at dispatch* (it never
//! reaches a solver, and performs zero engine builds), and because a
//! sweep is decomposed into one task per budget point, cancelling a
//! 50-point sweep mid-flight stops after the point currently being
//! solved. A request that is already solving its final form completes
//! the computation but discards the result: once cancelled, a handle
//! can never report [`WaitOutcome::Ready`].
//!
//! Waiting is typed by [`WaitOutcome`]: [`RequestHandle::try_wait`] /
//! [`RequestHandle::wait_timeout`] distinguish `Ready` / `TimedOut` /
//! `Taken` / `Cancelled`, so a caller that times out once can retry
//! and still retrieve the result (the old `Option` API conflated
//! "timed out" with "already taken" and could lose a completed plan).
//! [`RequestHandle::wait_or_cancel`] couples a wait to a liveness
//! probe — the network front's disconnect-driven cancel hook: when the
//! probe reports the client gone, the request is cancelled instead of
//! solved for nobody.
//!
//! ## Per-tenant quotas
//!
//! Requests carry a [`TenantId`] (default: `"default"`), and the
//! service enforces a [`QuotaPolicy`] per tenant — a cap on concurrent
//! in-flight requests and on the summed admission-control estimates
//! ([`RequestHandle::estimate`]) outstanding at once. Quota is
//! acquired at submit ([`PlannerService::submit`] returns a typed
//! [`CoreError::QuotaExceeded`] *before* anything is queued) and
//! released exactly once, on completion, cancellation, or panic — so a
//! tenant that saturates its quota is throttled at the door and can
//! never crowd another tenant's interactive lane.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use super::cache::{CacheKey, CacheStore};
use super::exec::{CancelToken, ExecOptions};
use super::pool::{TwoLaneQueue, WorkerPool};
use super::{EngineCache, Plan, Problem, Solver, SolverRegistry};
use crate::budget::Budget;
use crate::{CoreError, Result};

/// Which path a request took through the service (see the module
/// docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Solved synchronously at `submit` (admission control).
    Inline,
    /// Queued on the latency-sensitive lane.
    Interactive,
    /// Queued on the throughput lane.
    Bulk,
}

/// The tenant a request is accounted to. Cheap to clone (shared
/// string); two ids with the same name are the same tenant. The
/// default tenant is `"default"` — single-tenant deployments never
/// need to mention it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// A tenant id with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Self(Arc::from(name.as_ref()))
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        Self::new("default")
    }
}

impl From<&str> for TenantId {
    fn from(name: &str) -> Self {
        Self::new(name)
    }
}

impl From<String> for TenantId {
    fn from(name: String) -> Self {
        Self::new(name)
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-tenant admission limits, enforced at submit time (see the
/// [module docs](self)). The default is [`QuotaPolicy::unlimited`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct QuotaPolicy {
    /// Maximum requests (a sweep counts once) in flight — queued or
    /// running — at any moment.
    pub max_in_flight: usize,
    /// Maximum summed admission-control estimates
    /// ([`Problem::estimated_engine_evals`], × budget points for
    /// sweeps) outstanding at any moment. Caps the *volume* of engine
    /// work a tenant can have queued, not just the request count.
    pub max_outstanding_evals: u64,
}

impl QuotaPolicy {
    /// A policy with both limits.
    pub fn new(max_in_flight: usize, max_outstanding_evals: u64) -> Self {
        Self {
            max_in_flight,
            max_outstanding_evals,
        }
    }

    /// No limits (the default for tenants without an explicit policy).
    pub fn unlimited() -> Self {
        Self::new(usize::MAX, u64::MAX)
    }

    /// Caps concurrent in-flight requests.
    pub fn with_max_in_flight(mut self, requests: usize) -> Self {
        self.max_in_flight = requests;
        self
    }

    /// Caps outstanding estimated engine evaluations.
    pub fn with_max_outstanding_evals(mut self, evals: u64) -> Self {
        self.max_outstanding_evals = evals;
        self
    }
}

impl Default for QuotaPolicy {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// A tenant's live accounting snapshot ([`PlannerService::quota_usage`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct QuotaUsage {
    /// Requests currently in flight (queued or running).
    pub in_flight: usize,
    /// Summed admission-control estimates currently outstanding.
    pub outstanding_evals: u64,
}

/// Per-tenant quota ledger entry.
struct TenantState {
    policy: QuotaPolicy,
    usage: QuotaUsage,
}

/// Configuration for a [`PlannerService`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceOptions {
    /// Requests whose total estimated engine evaluations fall below
    /// this are solved synchronously at `submit` (default:
    /// [`ExecOptions::DEFAULT_INLINE_THRESHOLD`]).
    pub inline_threshold: u64,
    /// Queued requests below this estimate ride the interactive lane;
    /// the rest ride bulk (default:
    /// [`ServiceOptions::DEFAULT_INTERACTIVE_THRESHOLD`]).
    pub interactive_threshold: u64,
    /// Capacity of the service-owned [`CacheStore`] when none is
    /// supplied (default:
    /// [`ServiceOptions::DEFAULT_STORE_CAPACITY`]).
    pub store_capacity: usize,
    /// The worker pool requests run on (`None` — the default — uses
    /// [`WorkerPool::global`]).
    pub pool: Option<Arc<WorkerPool>>,
}

impl ServiceOptions {
    /// Default [`ServiceOptions::interactive_threshold`]: requests
    /// estimated under ~1M engine evaluations are treated as
    /// latency-sensitive.
    pub const DEFAULT_INTERACTIVE_THRESHOLD: u64 = 1 << 20;

    /// Default [`ServiceOptions::store_capacity`].
    pub const DEFAULT_STORE_CAPACITY: usize = 256;

    /// The default configuration.
    pub fn new() -> Self {
        Self {
            inline_threshold: ExecOptions::DEFAULT_INLINE_THRESHOLD,
            interactive_threshold: Self::DEFAULT_INTERACTIVE_THRESHOLD,
            store_capacity: Self::DEFAULT_STORE_CAPACITY,
            pool: None,
        }
    }

    /// Sets the inline-admission threshold.
    pub fn with_inline_threshold(mut self, evals: u64) -> Self {
        self.inline_threshold = evals;
        self
    }

    /// Sets the interactive/bulk lane boundary.
    pub fn with_interactive_threshold(mut self, evals: u64) -> Self {
        self.interactive_threshold = evals;
        self
    }

    /// Sets the capacity of the service-owned store.
    pub fn with_store_capacity(mut self, entries: usize) -> Self {
        self.store_capacity = entries;
        self
    }

    /// Runs requests on a dedicated pool instead of the global one.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }
}

impl Default for ServiceOptions {
    /// Hand-written so `default()` agrees with `new()` on the
    /// thresholds (a derived Default would zero them and disable
    /// admission control entirely).
    fn default() -> Self {
        Self::new()
    }
}

/// One solve request: `strategy` on `problem` under `budget`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SolveRequest {
    /// Registry strategy name (`"auto"`, `"greedy"`, …).
    pub strategy: String,
    /// The lowered problem, shared so queued tasks can outlive the
    /// submitting stack frame.
    pub problem: Arc<Problem>,
    /// The cleaning budget.
    pub budget: Budget,
    /// Persistence identity for store lookups (see
    /// [`cache`](super::cache)'s fingerprint contract); `None` opts the
    /// request out of the persistent store.
    pub key: Option<CacheKey>,
    /// The tenant this request is quota-accounted to.
    pub tenant: TenantId,
}

impl SolveRequest {
    /// A request with no store key, accounted to the default tenant.
    pub fn new(strategy: impl Into<String>, problem: Arc<Problem>, budget: Budget) -> Self {
        Self {
            strategy: strategy.into(),
            problem,
            budget,
            key: None,
            tenant: TenantId::default(),
        }
    }

    /// Attaches the persistence identity.
    pub fn with_key(mut self, key: CacheKey) -> Self {
        self.key = Some(key);
        self
    }

    /// Accounts the request to `tenant`.
    pub fn with_tenant(mut self, tenant: impl Into<TenantId>) -> Self {
        self.tenant = tenant.into();
        self
    }
}

/// One budget-sweep request: `strategy` on `problem` across `budgets`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SweepRequest {
    /// Registry strategy name.
    pub strategy: String,
    /// The lowered problem.
    pub problem: Arc<Problem>,
    /// The budget grid; plans come back in this order.
    pub budgets: Vec<Budget>,
    /// Persistence identity (as in [`SolveRequest::key`]). Without a
    /// key the sweep still shares its prefix work internally, through
    /// a store private to the request.
    pub key: Option<CacheKey>,
    /// The tenant this request is quota-accounted to.
    pub tenant: TenantId,
}

impl SweepRequest {
    /// A request with no store key, accounted to the default tenant.
    pub fn new(strategy: impl Into<String>, problem: Arc<Problem>, budgets: Vec<Budget>) -> Self {
        Self {
            strategy: strategy.into(),
            problem,
            budgets,
            key: None,
            tenant: TenantId::default(),
        }
    }

    /// Attaches the persistence identity.
    pub fn with_key(mut self, key: CacheKey) -> Self {
        self.key = Some(key);
        self
    }

    /// Accounts the request to `tenant`.
    pub fn with_tenant(mut self, tenant: impl Into<TenantId>) -> Self {
        self.tenant = tenant.into();
        self
    }
}

/// Counter snapshot from [`PlannerService::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceStats {
    /// Requests accepted (a sweep counts once).
    pub submitted: u64,
    /// Requests whose handle has resolved.
    pub completed: u64,
    /// Requests solved synchronously at `submit`.
    pub inline: u64,
    /// Requests queued on the interactive lane.
    pub interactive: u64,
    /// Requests queued on the bulk lane.
    pub bulk: u64,
    /// Requests that panicked (resolved to
    /// [`CoreError::WorkerPanicked`]).
    pub panics: u64,
    /// Requests cancelled before completing (explicitly or by handle
    /// drop). A request counts in exactly one of
    /// [`ServiceStats::completed`] / `cancelled`, so
    /// `completed + cancelled == submitted` once everything in flight
    /// has resolved.
    pub cancelled: u64,
    /// Submits rejected at the door with
    /// [`CoreError::QuotaExceeded`] (never counted in
    /// [`ServiceStats::submitted`]).
    pub quota_rejected: u64,
    /// Tasks waiting on the interactive lane right now.
    pub queued_interactive: usize,
    /// Tasks waiting on the bulk lane right now.
    pub queued_bulk: usize,
    /// Requests currently unresolved (submitted − completed −
    /// cancelled): queued *or* running. The saturation gauge a load
    /// harness records alongside the queue depths.
    pub in_flight: u64,
    /// Interactive-lane tasks executing on a worker right now
    /// (sweeps count once per in-flight budget point).
    pub running_interactive: usize,
    /// Bulk-lane tasks executing on a worker right now.
    pub running_bulk: usize,
}

/// The outcome of a non-consuming wait ([`RequestHandle::try_wait`] /
/// [`RequestHandle::wait_timeout`]). Replaces the old
/// `Option<Result<T>>` API, which conflated "timed out" with "result
/// already taken" — a caller that timed out once could silently lose a
/// completed plan. `TimedOut` leaves the result in place: retrying (or
/// blocking on [`RequestHandle::wait`]) still retrieves it.
#[derive(Debug)]
#[must_use = "a WaitOutcome distinguishes TimedOut (retry) from Taken/Cancelled (don't)"]
pub enum WaitOutcome<T> {
    /// The request resolved; this take consumed the result.
    Ready(Result<T>),
    /// Still pending when the timeout elapsed. The result, when it
    /// arrives, remains retrievable.
    TimedOut,
    /// The result was already taken by an earlier successful wait.
    Taken,
    /// The request was cancelled; no result will ever arrive.
    Cancelled,
}

impl<T> WaitOutcome<T> {
    /// The result, if this outcome carried one.
    pub fn ready(self) -> Option<Result<T>> {
        match self {
            Self::Ready(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the wait timed out (result still pending).
    pub fn is_timed_out(&self) -> bool {
        matches!(self, Self::TimedOut)
    }

    /// Whether the result was already taken.
    pub fn is_taken(&self) -> bool {
        matches!(self, Self::Taken)
    }

    /// Whether the request was cancelled.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, Self::Cancelled)
    }
}

/// Locks a state-only mutex, recovering from poisoning. The mutexes
/// this guards (result slots, sweep point slots, the tenant ledger)
/// protect plain data whose invariants hold between statements — no
/// critical section leaves them mid-update — so a panic on one thread
/// says nothing about the data's integrity. Propagating the poison
/// instead would cascade one contained [`CoreError::WorkerPanicked`]
/// request into panics in every sibling waiter *and into quota
/// release*, leaking the tenant's ledger entries forever.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Result slot shared between a [`RequestHandle`] and the worker that
/// completes it.
enum Slot<T> {
    Pending,
    Ready(Result<T>),
    Taken,
    /// Terminal: set by [`HandleShared::cancel`]; a completion arriving
    /// afterwards is discarded, so a cancelled request can never read
    /// as `Ready`.
    Cancelled,
}

struct HandleShared<T> {
    slot: Mutex<Slot<T>>,
    ready: Condvar,
}

impl<T> HandleShared<T> {
    fn new() -> Self {
        Self {
            slot: Mutex::new(Slot::Pending),
            ready: Condvar::new(),
        }
    }

    /// Resolves the slot with `result`, bumping `completed` under the
    /// slot lock (so a waiter that wakes on the notify already sees the
    /// request counted). Returns `false` — discarding the result and
    /// counting nothing — when the request was cancelled first.
    fn complete_counted(&self, result: Result<T>, completed: &AtomicU64) -> bool {
        let mut slot = lock_recover(&self.slot);
        match *slot {
            Slot::Pending => {
                completed.fetch_add(1, Ordering::Relaxed);
                *slot = Slot::Ready(result);
                self.ready.notify_all();
                true
            }
            Slot::Cancelled => false,
            Slot::Ready(_) | Slot::Taken => {
                debug_assert!(false, "a request must be completed exactly once");
                false
            }
        }
    }

    /// Blocks until the slot leaves `Pending`, without consuming it.
    fn await_resolution(&self) {
        let mut slot = lock_recover(&self.slot);
        while matches!(*slot, Slot::Pending) {
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Flips a still-pending slot to `Cancelled`, waking waiters.
    /// Returns whether this call performed the transition (a resolved
    /// or already-cancelled slot is left untouched).
    fn cancel(&self) -> bool {
        let mut slot = lock_recover(&self.slot);
        if matches!(*slot, Slot::Pending) {
            *slot = Slot::Cancelled;
            self.ready.notify_all();
            true
        } else {
            false
        }
    }
}

/// One request's quota reservation. Released exactly once — on
/// completion, cancellation, or panic — whichever comes first
/// (idempotent, so the completion path and the cancel path can both
/// call it without double-counting).
struct QuotaLease {
    service: Arc<ServiceInner>,
    tenant: TenantId,
    estimate: u64,
    released: AtomicBool,
}

impl QuotaLease {
    fn release(&self) {
        if !self.released.swap(true, Ordering::AcqRel) {
            self.service.release_quota(&self.tenant, self.estimate);
        }
    }
}

/// One request's shared lifecycle state — slot, cancellation token,
/// quota lease — built once per submit (after the quota was acquired)
/// and shared between the handle and the queued tasks.
struct RequestSetup<T> {
    shared: Arc<HandleShared<T>>,
    cancel: CancelToken,
    lease: Arc<QuotaLease>,
}

impl<T> RequestSetup<T> {
    fn new(service: &Arc<ServiceInner>, tenant: TenantId, estimate: u64) -> Self {
        Self {
            shared: Arc::new(HandleShared::new()),
            cancel: CancelToken::new(),
            lease: Arc::new(QuotaLease {
                service: Arc::clone(service),
                tenant,
                estimate,
                released: AtomicBool::new(false),
            }),
        }
    }

    /// A handle over this request's state, routed to `lane`.
    fn handle(&self, lane: Lane) -> RequestHandle<T> {
        RequestHandle {
            shared: Arc::clone(&self.shared),
            lane,
            estimate: self.lease.estimate,
            cancel: self.cancel.clone(),
            lease: Arc::clone(&self.lease),
        }
    }
}

/// How long a wait is allowed to block on a pending slot.
#[derive(Debug, Clone, Copy)]
enum WaitLimit {
    /// Return [`WaitOutcome::TimedOut`] immediately (`try_wait`).
    Poll,
    /// Block until the deadline, then report `TimedOut`.
    Until(std::time::Instant),
    /// Block until the request resolves (`wait`, or a `wait_timeout`
    /// whose deadline overflows [`std::time::Instant`]).
    Forever,
}

/// A hand-rolled future for an in-flight request (no async runtime is
/// available offline): poll with [`RequestHandle::is_ready`], take the
/// result with [`RequestHandle::try_wait`] /
/// [`RequestHandle::wait_timeout`] (typed [`WaitOutcome`]s), or block
/// on [`RequestHandle::wait`]. `T` is [`Plan`] for solves and
/// `Vec<Plan>` for sweeps.
///
/// **Dropping the handle cancels the request** (see the [module
/// docs](self)): a request nobody can observe any more is never worth
/// solving. Call [`RequestHandle::cancel`] to abandon it explicitly
/// while keeping the handle around.
#[must_use = "dropping a RequestHandle cancels the request"]
pub struct RequestHandle<T> {
    shared: Arc<HandleShared<T>>,
    lane: Lane,
    estimate: u64,
    cancel: CancelToken,
    lease: Arc<QuotaLease>,
}

impl<T> RequestHandle<T> {
    /// Which lane the request was routed to ([`Lane::Inline`] handles
    /// are ready immediately).
    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// The admission-control estimate the routing (and quota
    /// accounting) was keyed on.
    pub fn estimate(&self) -> u64 {
        self.estimate
    }

    /// The tenant the request is accounted to.
    pub fn tenant(&self) -> &TenantId {
        &self.lease.tenant
    }

    /// Whether the request has resolved — completed (result ready or
    /// already taken) or cancelled.
    pub fn is_ready(&self) -> bool {
        !matches!(*lock_recover(&self.shared.slot), Slot::Pending)
    }

    /// Whether the request was cancelled.
    pub fn is_cancelled(&self) -> bool {
        matches!(*lock_recover(&self.shared.slot), Slot::Cancelled)
    }

    /// Cancels the request: queued work is dropped at dispatch, an
    /// in-flight sweep stops after its current budget point, and the
    /// tenant's quota is released immediately. Waiters wake with
    /// [`WaitOutcome::Cancelled`]. Returns `true` when this call
    /// cancelled the request, `false` when it had already resolved
    /// (the result — if not yet taken — stays retrievable) or was
    /// already cancelled. Idempotent.
    pub fn cancel(&self) -> bool {
        self.cancel.cancel();
        if self.shared.cancel() {
            self.lease
                .service
                .stats
                .cancelled
                .fetch_add(1, Ordering::Relaxed);
            self.lease.release();
            true
        } else {
            false
        }
    }

    /// Takes the result if it is ready ([`WaitOutcome::Ready`]);
    /// otherwise reports — without consuming anything — whether the
    /// request is still pending ([`WaitOutcome::TimedOut`]), was
    /// already taken, or was cancelled.
    pub fn try_wait(&self) -> WaitOutcome<T> {
        self.wait_deadline(WaitLimit::Poll)
    }

    /// Blocks until the result is ready, waiting at most `timeout`.
    /// [`WaitOutcome::TimedOut`] does **not** consume the result: a
    /// later wait still retrieves it. A `timeout` too large to
    /// represent as a deadline (e.g. [`Duration::MAX`]) waits forever —
    /// it can never elapse.
    pub fn wait_timeout(&self, timeout: Duration) -> WaitOutcome<T> {
        // `Instant + Duration` panics on overflow, so a huge timeout
        // must degrade to wait-forever, not crash the waiter.
        match std::time::Instant::now().checked_add(timeout) {
            Some(deadline) => self.wait_deadline(WaitLimit::Until(deadline)),
            None => self.wait_deadline(WaitLimit::Forever),
        }
    }

    /// Blocks like [`RequestHandle::wait_timeout`], but instead of a
    /// fixed deadline it re-checks `alive()` every `poll` interval and
    /// **cancels the request** ([`RequestHandle::cancel`]) the moment
    /// the callback returns `false`, returning
    /// [`WaitOutcome::Cancelled`]. This is the network front's
    /// disconnect-driven cancel hook: `alive` probes the client socket,
    /// so a client that hangs up mid-solve stops burning worker time
    /// instead of computing a plan nobody will read.
    pub fn wait_or_cancel(
        &self,
        poll: Duration,
        mut alive: impl FnMut() -> bool,
    ) -> WaitOutcome<T> {
        loop {
            match self.wait_timeout(poll) {
                WaitOutcome::TimedOut => {
                    if !alive() {
                        self.cancel();
                        return WaitOutcome::Cancelled;
                    }
                }
                outcome => return outcome,
            }
        }
    }

    /// Shared wait loop (see [`WaitLimit`] for the Pending behavior).
    fn wait_deadline(&self, limit: WaitLimit) -> WaitOutcome<T> {
        let mut slot = lock_recover(&self.shared.slot);
        loop {
            match std::mem::replace(&mut *slot, Slot::Taken) {
                Slot::Ready(r) => return WaitOutcome::Ready(r),
                Slot::Taken => return WaitOutcome::Taken,
                Slot::Cancelled => {
                    *slot = Slot::Cancelled;
                    return WaitOutcome::Cancelled;
                }
                Slot::Pending => {
                    *slot = Slot::Pending;
                    slot = match limit {
                        WaitLimit::Poll => return WaitOutcome::TimedOut,
                        WaitLimit::Until(deadline) => {
                            let now = std::time::Instant::now();
                            if deadline <= now {
                                return WaitOutcome::TimedOut;
                            }
                            self.shared
                                .ready
                                .wait_timeout(slot, deadline - now)
                                .unwrap_or_else(PoisonError::into_inner)
                                .0
                        }
                        WaitLimit::Forever => self
                            .shared
                            .ready
                            .wait(slot)
                            .unwrap_or_else(PoisonError::into_inner),
                    };
                }
            }
        }
    }

    /// Blocks until the request resolves and returns the result;
    /// cancellation surfaces as [`CoreError::Cancelled`].
    ///
    /// # Panics
    /// If the result was already taken via [`RequestHandle::try_wait`]
    /// / [`RequestHandle::wait_timeout`].
    pub fn wait(self) -> Result<T> {
        match self.wait_deadline(WaitLimit::Forever) {
            WaitOutcome::Ready(r) => r,
            WaitOutcome::Cancelled => Err(CoreError::Cancelled),
            WaitOutcome::Taken => panic!("RequestHandle result already taken by try_wait"),
            WaitOutcome::TimedOut => unreachable!("a Forever wait cannot time out"),
        }
    }
}

impl<T> Drop for RequestHandle<T> {
    /// Cancellation-on-drop: an abandoned request must not burn worker
    /// time nobody will observe. No-op when the request already
    /// resolved (including the normal `wait()` path, which takes the
    /// result before dropping).
    fn drop(&mut self) {
        self.cancel();
    }
}

impl<T> std::fmt::Debug for RequestHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("lane", &self.lane)
            .field("estimate", &self.estimate)
            .field("tenant", &self.lease.tenant)
            .field("ready", &self.is_ready())
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// Outcome of polling a [`SweepHandle`] for its next budget point.
#[derive(Debug)]
pub enum PointOutcome {
    /// The next budget point (ascending budget order) resolved with
    /// this per-point result.
    Point(Result<Plan>),
    /// Every budget point has already been yielded.
    Done,
    /// The next point is still solving (nothing was consumed).
    TimedOut,
    /// The sweep was cancelled; remaining points will never resolve.
    Cancelled,
}

impl PointOutcome {
    /// The per-point result, if this outcome carried one.
    pub fn point(self) -> Option<Result<Plan>> {
        match self {
            Self::Point(r) => Some(r),
            _ => None,
        }
    }

    /// Whether all points have been yielded.
    pub fn is_done(&self) -> bool {
        matches!(self, Self::Done)
    }

    /// Whether the wait timed out (next point still solving).
    pub fn is_timed_out(&self) -> bool {
        matches!(self, Self::TimedOut)
    }

    /// Whether the sweep was cancelled.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, Self::Cancelled)
    }
}

/// A hand-rolled future for an in-flight budget sweep. Wraps the
/// sweep's aggregate `RequestHandle<Vec<Plan>>` (all of whose waits are
/// available here) and adds **incremental consumption**: the sweep
/// decomposition already runs one task per budget point, so
/// [`SweepHandle::try_next_point`] / [`SweepHandle::wait_next_point`]
/// yield each [`Plan`] as its point completes, in ascending budget
/// order, while later points are still solving. Each streamed plan is
/// byte-identical ([`Plan::divergence`]) to its slot in the aggregate
/// [`SweepHandle::wait`] result — streaming changes delivery, never
/// bytes.
///
/// Dropping the handle cancels the sweep (remaining points are skipped
/// after the one currently solving), exactly like dropping the
/// underlying [`RequestHandle`].
#[must_use = "dropping a SweepHandle cancels the sweep"]
pub struct SweepHandle {
    handle: RequestHandle<Vec<Plan>>,
    /// Per-point state for queued sweeps; `None` when the request
    /// resolved at submit time (inline lane, empty grid, or a submit
    /// error), in which case points are replayed out of `buffered`.
    state: Option<Arc<SweepState>>,
    total: usize,
    next: usize,
    buffered: Option<Result<Vec<Plan>>>,
}

impl SweepHandle {
    /// A handle over a queued sweep whose points resolve through
    /// `state`.
    fn streamed(handle: RequestHandle<Vec<Plan>>, state: Arc<SweepState>, total: usize) -> Self {
        Self {
            handle,
            state: Some(state),
            total,
            next: 0,
            buffered: None,
        }
    }

    /// A handle over a sweep that resolved at submit time.
    fn resolved(handle: RequestHandle<Vec<Plan>>, total: usize) -> Self {
        Self {
            handle,
            state: None,
            total,
            next: 0,
            buffered: None,
        }
    }

    /// Which lane the sweep was routed to.
    pub fn lane(&self) -> Lane {
        self.handle.lane()
    }

    /// The admission-control estimate (points × per-point evals).
    pub fn estimate(&self) -> u64 {
        self.handle.estimate()
    }

    /// The tenant the sweep is accounted to.
    pub fn tenant(&self) -> &TenantId {
        self.handle.tenant()
    }

    /// Number of budget points in the sweep grid.
    pub fn points(&self) -> usize {
        self.total
    }

    /// Number of points already yielded through the streaming API.
    pub fn points_yielded(&self) -> usize {
        self.next
    }

    /// Whether the aggregate result has resolved (see
    /// [`RequestHandle::is_ready`]); individual points may be ready
    /// much earlier.
    pub fn is_ready(&self) -> bool {
        self.handle.is_ready()
    }

    /// Whether the sweep was cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.handle.is_cancelled()
    }

    /// Cancels the sweep (see [`RequestHandle::cancel`]): remaining
    /// budget points are skipped after the one currently solving, and
    /// any point waiter wakes with [`PointOutcome::Cancelled`].
    pub fn cancel(&self) -> bool {
        let cancelled = self.handle.cancel();
        if let Some(state) = &self.state {
            state.wake_point_waiters();
        }
        cancelled
    }

    /// Yields the next budget point if it already resolved
    /// ([`PointOutcome::Point`]); otherwise reports — without consuming
    /// anything — that it is still solving ([`PointOutcome::TimedOut`]),
    /// that all points were yielded, or that the sweep was cancelled.
    pub fn try_next_point(&mut self) -> PointOutcome {
        self.next_point(WaitLimit::Poll)
    }

    /// Blocks until the next budget point resolves and yields it;
    /// returns [`PointOutcome::Done`] once all points were yielded and
    /// [`PointOutcome::Cancelled`] if the sweep was cancelled.
    pub fn wait_next_point(&mut self) -> PointOutcome {
        self.next_point(WaitLimit::Forever)
    }

    /// Like [`SweepHandle::wait_next_point`], waiting at most
    /// `timeout`. [`PointOutcome::TimedOut`] does not consume the
    /// point; a later wait still yields it.
    pub fn wait_next_point_timeout(&mut self, timeout: Duration) -> PointOutcome {
        match std::time::Instant::now().checked_add(timeout) {
            Some(deadline) => self.next_point(WaitLimit::Until(deadline)),
            None => self.next_point(WaitLimit::Forever),
        }
    }

    /// Like [`SweepHandle::wait_next_point`], but re-checks `alive()`
    /// every `poll` interval and cancels the sweep the moment it
    /// returns `false` — the per-point analogue of
    /// [`RequestHandle::wait_or_cancel`], so a client that hangs up
    /// mid-stream stops the remaining budget points.
    pub fn wait_next_point_or_cancel(
        &mut self,
        poll: Duration,
        mut alive: impl FnMut() -> bool,
    ) -> PointOutcome {
        loop {
            match self.wait_next_point_timeout(poll) {
                PointOutcome::TimedOut => {
                    if !alive() {
                        self.cancel();
                        return PointOutcome::Cancelled;
                    }
                }
                outcome => return outcome,
            }
        }
    }

    fn next_point(&mut self, limit: WaitLimit) -> PointOutcome {
        match &self.state {
            Some(state) => {
                if self.next >= self.total {
                    // The final point's slot is published before the
                    // fold resolves the aggregate, so without this
                    // wait a consumer could observe `Done`, drop the
                    // handle, and have the drop-cancel race the fold
                    // into counting a fully-streamed sweep as
                    // cancelled. Resolution is imminent here — the
                    // finisher that wrote the last slot folds next —
                    // so the wait is bounded and usually a no-op.
                    self.handle.shared.await_resolution();
                    return PointOutcome::Done;
                }
                match state.wait_point(self.next, limit) {
                    PointWait::Ready(result) => {
                        self.next += 1;
                        PointOutcome::Point(result)
                    }
                    PointWait::TimedOut => PointOutcome::TimedOut,
                    PointWait::Cancelled => PointOutcome::Cancelled,
                }
            }
            None => {
                if self.buffered.is_none() {
                    // Submit-time-resolved sweeps hold the whole result
                    // in the aggregate slot; take it once and replay.
                    match self.handle.try_wait() {
                        WaitOutcome::Ready(result) => self.buffered = Some(result),
                        WaitOutcome::Cancelled => return PointOutcome::Cancelled,
                        // `wait()` already consumed the aggregate (or a
                        // still-pending slot, which cannot happen for a
                        // submit-time-resolved sweep): nothing to
                        // stream.
                        WaitOutcome::Taken => return PointOutcome::Done,
                        WaitOutcome::TimedOut => return PointOutcome::TimedOut,
                    }
                }
                match self.buffered.as_ref().expect("buffered result just set") {
                    Ok(plans) => {
                        if self.next >= plans.len() {
                            return PointOutcome::Done;
                        }
                        let plan = plans[self.next].clone();
                        self.next += 1;
                        PointOutcome::Point(Ok(plan))
                    }
                    Err(e) => {
                        // A sweep that failed wholesale at submit
                        // surfaces its error as the first (and only)
                        // streamed point.
                        if self.next > 0 {
                            return PointOutcome::Done;
                        }
                        let err = e.clone();
                        self.next = self.total.max(1);
                        PointOutcome::Point(Err(err))
                    }
                }
            }
        }
    }

    /// Takes the aggregate result if ready (see
    /// [`RequestHandle::try_wait`]).
    pub fn try_wait(&self) -> WaitOutcome<Vec<Plan>> {
        self.handle.try_wait()
    }

    /// Blocks for the aggregate result at most `timeout` (see
    /// [`RequestHandle::wait_timeout`]).
    pub fn wait_timeout(&self, timeout: Duration) -> WaitOutcome<Vec<Plan>> {
        self.handle.wait_timeout(timeout)
    }

    /// Disconnect-driven aggregate wait (see
    /// [`RequestHandle::wait_or_cancel`]).
    pub fn wait_or_cancel(
        &self,
        poll: Duration,
        alive: impl FnMut() -> bool,
    ) -> WaitOutcome<Vec<Plan>> {
        self.handle.wait_or_cancel(poll, alive)
    }

    /// Blocks until the sweep resolves and returns every plan in budget
    /// order; works after (and regardless of) streaming consumption.
    ///
    /// # Panics
    /// Like [`RequestHandle::wait`], if the aggregate result was
    /// already taken via [`SweepHandle::try_wait`] /
    /// [`SweepHandle::wait_timeout`].
    pub fn wait(self) -> Result<Vec<Plan>> {
        let Self {
            handle, buffered, ..
        } = self;
        match buffered {
            // Streaming already took the aggregate slot; hand back the
            // stashed result (dropping the resolved handle is a no-op).
            Some(result) => result,
            None => handle.wait(),
        }
    }
}

impl std::fmt::Debug for SweepHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepHandle")
            .field("points", &self.total)
            .field("yielded", &self.next)
            .field("handle", &self.handle)
            .finish()
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    inline: AtomicU64,
    interactive: AtomicU64,
    bulk: AtomicU64,
    panics: AtomicU64,
    cancelled: AtomicU64,
    quota_rejected: AtomicU64,
    /// Lane-occupancy gauges: tasks executing on a worker right now.
    running_interactive: AtomicUsize,
    running_bulk: AtomicUsize,
}

impl Counters {
    fn running_gauge(&self, lane: Lane) -> &AtomicUsize {
        match lane {
            Lane::Interactive => &self.running_interactive,
            // Inline work never reaches a worker; charging it to the
            // bulk gauge would misreport occupancy, and no caller
            // passes Inline here.
            Lane::Bulk | Lane::Inline => &self.running_bulk,
        }
    }
}

/// RAII occupancy marker: increments a lane's running gauge for the
/// lifetime of one executing task, decrementing even when the solver
/// panics (the panic is contained by [`solve_contained`], but the
/// guard's `Drop` makes the gauge robust to any unwind path).
struct RunningGuard<'c>(&'c AtomicUsize);

impl<'c> RunningGuard<'c> {
    fn enter(counters: &'c Counters, lane: Lane) -> Self {
        let gauge = counters.running_gauge(lane);
        gauge.fetch_add(1, Ordering::Relaxed);
        Self(gauge)
    }
}

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

struct ServiceInner {
    registry: Arc<SolverRegistry>,
    store: Arc<CacheStore>,
    pool: Arc<WorkerPool>,
    queue: Arc<TwoLaneQueue>,
    inline_threshold: u64,
    interactive_threshold: u64,
    stats: Counters,
    /// Per-tenant quota ledger. Tenants without an explicit
    /// [`QuotaPolicy`] run unlimited (but are still metered).
    tenants: Mutex<HashMap<TenantId, TenantState>>,
}

impl ServiceInner {
    fn lane_for(&self, estimate: u64) -> Lane {
        if estimate < self.inline_threshold {
            Lane::Inline
        } else if estimate < self.interactive_threshold {
            Lane::Interactive
        } else {
            Lane::Bulk
        }
    }

    /// Reserves quota for one request of `estimate` evals, or rejects
    /// with a typed [`CoreError::QuotaExceeded`] (nothing is queued on
    /// rejection).
    fn acquire_quota(&self, tenant: &TenantId, estimate: u64) -> Result<()> {
        let mut tenants = lock_recover(&self.tenants);
        let state = tenants
            .entry(tenant.clone())
            .or_insert_with(|| TenantState {
                policy: QuotaPolicy::unlimited(),
                usage: QuotaUsage::default(),
            });
        let reason = if state.usage.in_flight >= state.policy.max_in_flight {
            Some(format!(
                "in-flight requests {}/{} (limit reached)",
                state.usage.in_flight, state.policy.max_in_flight
            ))
        } else if state.usage.outstanding_evals.saturating_add(estimate)
            > state.policy.max_outstanding_evals
        {
            Some(format!(
                "outstanding estimated engine evals {} + {} would exceed {}",
                state.usage.outstanding_evals, estimate, state.policy.max_outstanding_evals
            ))
        } else {
            None
        };
        match reason {
            Some(reason) => {
                self.stats.quota_rejected.fetch_add(1, Ordering::Relaxed);
                Err(CoreError::QuotaExceeded {
                    tenant: tenant.name().to_string(),
                    reason,
                })
            }
            None => {
                state.usage.in_flight += 1;
                state.usage.outstanding_evals =
                    state.usage.outstanding_evals.saturating_add(estimate);
                Ok(())
            }
        }
    }

    /// Returns one request's reservation (only ever called through
    /// [`QuotaLease::release`], which guarantees exactly-once). An
    /// idle entry with the default (unlimited) policy is evicted — the
    /// ledger must not grow without bound when tenant ids are derived
    /// from request input; entries installed via
    /// [`PlannerService::set_quota`] are kept.
    fn release_quota(&self, tenant: &TenantId, estimate: u64) {
        let mut tenants = lock_recover(&self.tenants);
        let state = tenants
            .get_mut(tenant)
            .expect("released a lease for a tenant that never acquired");
        state.usage.in_flight = state.usage.in_flight.saturating_sub(1);
        state.usage.outstanding_evals = state.usage.outstanding_evals.saturating_sub(estimate);
        if state.usage == QuotaUsage::default() && state.policy == QuotaPolicy::unlimited() {
            tenants.remove(tenant);
        }
    }

    /// Queues `task` on `lane` and hands the pool one token for it.
    /// Tokens execute the highest-priority task available when they
    /// run, so interactive work overtakes queued bulk work; tasks whose
    /// `cancel` token has flipped by dispatch time are dropped un-run.
    fn enqueue(
        self: &Arc<Self>,
        lane: Lane,
        cancel: CancelToken,
        task: impl FnOnce() + Send + 'static,
    ) {
        debug_assert!(lane != Lane::Inline);
        self.queue
            .push(lane == Lane::Interactive, Some(cancel), Box::new(task));
        let queue = Arc::clone(&self.queue);
        self.pool.submit(move || queue.run_next());
    }
}

/// Renders a panic payload for [`CoreError::WorkerPanicked`].
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Solves one (solver, problem, budget) with a cache wired to `store`
/// under `key`, containing panics.
fn solve_contained(
    stats: &Counters,
    store: &Arc<CacheStore>,
    key: Option<CacheKey>,
    solver: &Arc<dyn Solver>,
    problem: &Problem,
    budget: Budget,
) -> Result<Plan> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let cache = match key {
            Some(key) => EngineCache::with_store(Arc::clone(store), key),
            None => EngineCache::new(),
        };
        solver.solve_with_cache(problem, budget, &cache)
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            stats.panics.fetch_add(1, Ordering::Relaxed);
            Err(CoreError::WorkerPanicked {
                detail: panic_detail(payload.as_ref()),
            })
        }
    }
}

/// Shared state of an in-flight sweep: per-point slots plus a
/// completion counter; the task that finishes last folds the slots (in
/// budget order, first error by index — the sequential semantics) and
/// resolves the handle. Cancellation-aware: once the sweep's token
/// flips, remaining points report [`SweepState::skip_point`] instead
/// of solving, and the fold is abandoned (the handle was already
/// resolved to `Cancelled`, the quota already released, by
/// [`RequestHandle::cancel`]).
struct SweepState {
    slots: Vec<Mutex<Option<Result<Plan>>>>,
    remaining: AtomicUsize,
    /// Resolved-point count plus the wake channel for streaming
    /// waiters ([`SweepHandle::wait_next_point`]). Bumped *after* the
    /// slot write (or skip), under its own lock, so a waiter blocked on
    /// the next index wakes exactly when it can make progress.
    progress: Mutex<usize>,
    point_ready: Condvar,
    shared: Arc<HandleShared<Vec<Plan>>>,
    inner: Arc<ServiceInner>,
    lease: Arc<QuotaLease>,
    cancel: CancelToken,
}

/// What [`SweepState::wait_point`] observed for one budget point.
enum PointWait {
    Ready(Result<Plan>),
    TimedOut,
    Cancelled,
}

impl SweepState {
    fn finish_point(&self, index: usize, result: Result<Plan>) {
        *lock_recover(&self.slots[index]) = Some(result);
        self.point_done();
    }

    /// A budget point observed the cancelled token and did not solve.
    fn skip_point(&self) {
        self.point_done();
    }

    fn point_done(&self) {
        {
            let mut progress = lock_recover(&self.progress);
            *progress += 1;
            self.point_ready.notify_all();
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            if self.cancel.is_cancelled() {
                // The cancel path already resolved the handle and
                // counted the request; just make sure the quota
                // reservation is gone (idempotent).
                self.lease.release();
                return;
            }
            let mut plans = Vec::with_capacity(self.slots.len());
            let mut first_err: Option<Result<Vec<Plan>>> = None;
            for slot in &self.slots {
                // Clone, don't take: a streaming consumer that lags
                // behind the fold still reads its remaining points out
                // of the slots afterwards.
                match lock_recover(slot)
                    .clone()
                    .expect("every budget point completed")
                {
                    Ok(plan) => plans.push(plan),
                    Err(e) => {
                        first_err = Some(Err(e));
                        break;
                    }
                }
            }
            // Release before resolving: a waiter that wakes on the
            // completion must already see the quota freed.
            self.lease.release();
            self.shared
                .complete_counted(first_err.unwrap_or(Ok(plans)), &self.inner.stats.completed);
        }
    }

    /// Blocks until budget point `index` resolves (its slot is
    /// written), the sweep is cancelled, or `limit` elapses. Lock
    /// order: `progress` is held across the slot peek; finishers take a
    /// slot and `progress` strictly in sequence (never both), so the
    /// pair cannot deadlock, and because finishers need `progress` to
    /// notify, a wakeup can never be lost between the peek and the
    /// wait.
    fn wait_point(&self, index: usize, limit: WaitLimit) -> PointWait {
        let mut progress = lock_recover(&self.progress);
        loop {
            if self.cancel.is_cancelled() {
                return PointWait::Cancelled;
            }
            if let Some(result) = lock_recover(&self.slots[index]).clone() {
                return PointWait::Ready(result);
            }
            progress = match limit {
                WaitLimit::Poll => return PointWait::TimedOut,
                WaitLimit::Until(deadline) => {
                    let now = std::time::Instant::now();
                    if deadline <= now {
                        return PointWait::TimedOut;
                    }
                    self.point_ready
                        .wait_timeout(progress, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                }
                WaitLimit::Forever => self
                    .point_ready
                    .wait(progress)
                    .unwrap_or_else(PoisonError::into_inner),
            };
        }
    }

    /// Wakes any [`SweepState::wait_point`] waiter so it can observe a
    /// cancellation that did not pass through a finishing point.
    fn wake_point_waiters(&self) {
        let _progress = lock_recover(&self.progress);
        self.point_ready.notify_all();
    }
}

/// The long-lived serving front over a [`SolverRegistry`]: owns the
/// registry, a fingerprint-keyed [`CacheStore`], and a [`WorkerPool`],
/// and serves [`SolveRequest`]s / [`SweepRequest`]s asynchronously
/// through [`RequestHandle`]s. Cheap to clone (all state is shared);
/// share one service per process or tenant.
///
/// See the [module docs](self) for admission control, fairness, and
/// determinism.
#[derive(Clone)]
pub struct PlannerService {
    inner: Arc<ServiceInner>,
}

impl PlannerService {
    /// A service with its own [`CacheStore`] (capacity
    /// [`ServiceOptions::store_capacity`]).
    pub fn new(registry: Arc<SolverRegistry>, opts: ServiceOptions) -> Self {
        let store = Arc::new(CacheStore::new(opts.store_capacity));
        Self::with_store(registry, store, opts)
    }

    /// A service sharing an existing store (e.g. one warmed by batch
    /// jobs, or shared across services).
    pub fn with_store(
        registry: Arc<SolverRegistry>,
        store: Arc<CacheStore>,
        opts: ServiceOptions,
    ) -> Self {
        let pool = opts.pool.unwrap_or_else(WorkerPool::global);
        Self {
            inner: Arc::new(ServiceInner {
                registry,
                store,
                pool,
                queue: Arc::new(TwoLaneQueue::default()),
                inline_threshold: opts.inline_threshold,
                interactive_threshold: opts.interactive_threshold,
                stats: Counters::default(),
                tenants: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The registry serving this service.
    pub fn registry(&self) -> &Arc<SolverRegistry> {
        &self.inner.registry
    }

    /// The persistent engine store (inspect
    /// [`CacheStore::stats`] for warm/cold behavior, or invalidate
    /// entries after cleaning steps).
    pub fn store(&self) -> &Arc<CacheStore> {
        &self.inner.store
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let (queued_interactive, queued_bulk) = self.inner.queue.depths();
        let c = &self.inner.stats;
        let submitted = c.submitted.load(Ordering::Relaxed);
        let completed = c.completed.load(Ordering::Relaxed);
        let cancelled = c.cancelled.load(Ordering::Relaxed);
        ServiceStats {
            submitted,
            completed,
            inline: c.inline.load(Ordering::Relaxed),
            interactive: c.interactive.load(Ordering::Relaxed),
            bulk: c.bulk.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            cancelled,
            quota_rejected: c.quota_rejected.load(Ordering::Relaxed),
            queued_interactive,
            queued_bulk,
            // Gauge from independently-racing counters: saturate
            // rather than wrap when a completion lands between loads.
            in_flight: submitted.saturating_sub(completed.saturating_add(cancelled)),
            running_interactive: c.running_interactive.load(Ordering::Relaxed),
            running_bulk: c.running_bulk.load(Ordering::Relaxed),
        }
    }

    /// Live per-tenant accounting, sorted by tenant name: every tenant
    /// with in-flight work or an explicit [`QuotaPolicy`]. The load
    /// harness scrapes this (via `GET /v1/stats`) to record per-tenant
    /// saturation; idle default-policy tenants are evicted on release,
    /// so the listing stays bounded.
    pub fn tenant_usages(&self) -> Vec<(TenantId, QuotaUsage)> {
        let tenants = lock_recover(&self.inner.tenants);
        let mut usages: Vec<(TenantId, QuotaUsage)> = tenants
            .iter()
            .map(|(tenant, state)| (tenant.clone(), state.usage))
            .collect();
        usages.sort_by(|a, b| a.0.name().cmp(b.0.name()));
        usages
    }

    /// Installs (or replaces) `tenant`'s [`QuotaPolicy`]. In-flight
    /// accounting is preserved: tightening a policy below the current
    /// usage rejects new submits until enough requests resolve.
    pub fn set_quota(&self, tenant: impl Into<TenantId>, policy: QuotaPolicy) {
        let mut tenants = lock_recover(&self.inner.tenants);
        tenants
            .entry(tenant.into())
            .and_modify(|state| state.policy = policy)
            .or_insert(TenantState {
                policy,
                usage: QuotaUsage::default(),
            });
    }

    /// `tenant`'s live accounting (zeroes for a tenant that never
    /// submitted).
    pub fn quota_usage(&self, tenant: &TenantId) -> QuotaUsage {
        lock_recover(&self.inner.tenants)
            .get(tenant)
            .map(|state| state.usage)
            .unwrap_or_default()
    }

    /// Submits one solve. Quota is checked first: a tenant over its
    /// [`QuotaPolicy`] gets a typed [`CoreError::QuotaExceeded`] and
    /// nothing is queued. Unknown strategies resolve the *handle* with
    /// [`CoreError::UnknownStrategy`]; small requests (see the module
    /// docs) are solved inline before `submit` returns.
    pub fn submit(&self, request: SolveRequest) -> Result<RequestHandle<Plan>> {
        let inner = &self.inner;
        let estimate = request.problem.estimated_engine_evals();
        inner.acquire_quota(&request.tenant, estimate)?;
        inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let setup = RequestSetup::new(inner, request.tenant.clone(), estimate);
        let RequestSetup {
            shared,
            cancel,
            lease,
        } = &setup;

        let solver = match inner.registry.get(&request.strategy) {
            Ok(solver) => solver,
            Err(e) => {
                shared.complete_counted(Err(e), &inner.stats.completed);
                // Error-resolved requests count as inline so the lane
                // counters always sum to `submitted`.
                inner.stats.inline.fetch_add(1, Ordering::Relaxed);
                lease.release();
                return Ok(setup.handle(Lane::Inline));
            }
        };

        let lane = inner.lane_for(estimate);
        match lane {
            Lane::Inline => {
                let result = solve_contained(
                    &inner.stats,
                    &inner.store,
                    request.key,
                    &solver,
                    &request.problem,
                    request.budget,
                );
                shared.complete_counted(result, &inner.stats.completed);
                inner.stats.inline.fetch_add(1, Ordering::Relaxed);
                lease.release();
            }
            Lane::Interactive | Lane::Bulk => {
                let counter = if lane == Lane::Interactive {
                    &inner.stats.interactive
                } else {
                    &inner.stats.bulk
                };
                counter.fetch_add(1, Ordering::Relaxed);
                let task_inner = Arc::clone(inner);
                let task_shared = Arc::clone(shared);
                let task_cancel = cancel.clone();
                let task_lease = Arc::clone(lease);
                inner.enqueue(lane, cancel.clone(), move || {
                    // The dispatcher drops cancelled tasks; this check
                    // covers a cancel landing between pop and run. The
                    // cancel path did the bookkeeping already.
                    if task_cancel.is_cancelled() {
                        return;
                    }
                    let _running = RunningGuard::enter(&task_inner.stats, lane);
                    let result = solve_contained(
                        &task_inner.stats,
                        &task_inner.store,
                        request.key,
                        &solver,
                        &request.problem,
                        request.budget,
                    );
                    // Release before resolving: a waiter that wakes on
                    // the completion must already see the quota freed.
                    task_lease.release();
                    task_shared.complete_counted(result, &task_inner.stats.completed);
                });
            }
        }
        Ok(setup.handle(lane))
    }

    /// Submits a budget sweep. The request is costed by its *total*
    /// estimate (points × per-point), but executed as one task per
    /// budget point, so interactive work interleaves between points.
    /// Prefix work is shared across points through the service store
    /// when a key is supplied, or a request-private store otherwise —
    /// plans are byte-identical to [`SolverRegistry::sweep`] either
    /// way. The returned [`SweepHandle`] yields each plan as its point
    /// completes ([`SweepHandle::wait_next_point`]) or the whole grid
    /// at once ([`SweepHandle::wait`]).
    pub fn submit_sweep(&self, request: SweepRequest) -> Result<SweepHandle> {
        let inner = &self.inner;
        let estimate = request
            .problem
            .estimated_engine_evals()
            .saturating_mul(request.budgets.len() as u64);
        inner.acquire_quota(&request.tenant, estimate)?;
        inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let setup = RequestSetup::new(inner, request.tenant.clone(), estimate);
        // Every `done` caller resolves at submit time (error, empty
        // grid, or inline solve), so the request counts as inline —
        // the lane counters always sum to `submitted`.
        let done = |result: Result<Vec<Plan>>, lane: Lane| {
            setup
                .shared
                .complete_counted(result, &inner.stats.completed);
            inner.stats.inline.fetch_add(1, Ordering::Relaxed);
            setup.lease.release();
            setup.handle(lane)
        };

        let points = request.budgets.len();
        let solver = match inner.registry.get(&request.strategy) {
            Ok(solver) => solver,
            Err(e) => return Ok(SweepHandle::resolved(done(Err(e), Lane::Inline), points)),
        };
        if request.budgets.is_empty() {
            return Ok(SweepHandle::resolved(done(Ok(Vec::new()), Lane::Inline), 0));
        }

        // Without a trustworthy identity, share prefix work through a
        // store private to this request (mirroring `exec::sweep`).
        let (store, key) = match request.key {
            Some(key) => (Arc::clone(&inner.store), key),
            None => (Arc::new(CacheStore::new(1)), CacheKey::new(0, 0)),
        };

        let lane = inner.lane_for(estimate);
        if lane == Lane::Inline {
            // One shared cache, sequential — the sequential sweep path.
            let result = catch_unwind(AssertUnwindSafe(|| {
                let cache = EngineCache::with_store(store, key);
                // A single sequential chain: carry the greedy
                // trajectory memo from budget point to budget point.
                cache.enable_sweep_resume();
                request
                    .budgets
                    .iter()
                    .map(|&b| solver.solve_with_cache(&request.problem, b, &cache))
                    .collect::<Result<Vec<Plan>>>()
            }))
            .unwrap_or_else(|payload| {
                inner.stats.panics.fetch_add(1, Ordering::Relaxed);
                Err(CoreError::WorkerPanicked {
                    detail: panic_detail(payload.as_ref()),
                })
            });
            return Ok(SweepHandle::resolved(done(result, Lane::Inline), points));
        }

        let counter = if lane == Lane::Interactive {
            &inner.stats.interactive
        } else {
            &inner.stats.bulk
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(SweepState {
            slots: request.budgets.iter().map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(request.budgets.len()),
            progress: Mutex::new(0),
            point_ready: Condvar::new(),
            shared: Arc::clone(&setup.shared),
            inner: Arc::clone(inner),
            lease: Arc::clone(&setup.lease),
            cancel: setup.cancel.clone(),
        });
        let handle_state = Arc::clone(&state);
        // Resume-chain decomposition: instead of one pool task per
        // budget point, deal the points round-robin to at most
        // `pool.threads()` chain tasks. Each chain solves its points
        // sequentially on one sweep-resuming [`EngineCache`], so the
        // greedy trajectory memo carries from point to point. Plans
        // stay byte-identical to independent per-point solves (see
        // [`super::exec::SweepMode`]).
        let budgets: Arc<[Budget]> = request.budgets.clone().into();
        let chains = inner.pool.threads().min(budgets.len()).max(1);
        for chain in 0..chains {
            let state = Arc::clone(&state);
            let solver = Arc::clone(&solver);
            let problem = Arc::clone(&request.problem);
            let store = Arc::clone(&store);
            let budgets = Arc::clone(&budgets);
            let task_inner = Arc::clone(inner);
            inner.enqueue(lane, setup.cancel.clone(), move || {
                let mut running = None;
                let mut cache = None;
                for index in (chain..budgets.len()).step_by(chains) {
                    // Cancellation between budget points: a flipped
                    // token means the remaining points are skipped, so
                    // abandoning a 50-point sweep stops after the
                    // point currently being solved.
                    if state.cancel.is_cancelled() {
                        state.skip_point();
                        continue;
                    }
                    running.get_or_insert_with(|| RunningGuard::enter(&task_inner.stats, lane));
                    let budget = budgets[index];
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let cache = cache.get_or_insert_with(|| {
                            let cache = EngineCache::with_store(Arc::clone(&store), key);
                            cache.enable_sweep_resume();
                            cache
                        });
                        solver.solve_with_cache(&problem, budget, cache)
                    }));
                    let result = match outcome {
                        Ok(result) => result,
                        Err(payload) => {
                            task_inner.stats.panics.fetch_add(1, Ordering::Relaxed);
                            // The panic may have torn the resume chain
                            // mid-update; discard it so the next point
                            // starts from a fresh cache.
                            cache = None;
                            Err(CoreError::WorkerPanicked {
                                detail: panic_detail(payload.as_ref()),
                            })
                        }
                    };
                    state.finish_point(index, result);
                }
            });
        }
        Ok(SweepHandle::streamed(
            setup.handle(lane),
            handle_state,
            points,
        ))
    }
}

impl std::fmt::Debug for PlannerService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannerService")
            .field("strategies", &self.inner.registry.names().len())
            .field("pool_threads", &self.inner.pool.threads())
            .field("inline_threshold", &self.inner.inline_threshold)
            .field("interactive_threshold", &self.inner.interactive_threshold)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use fc_claims::{BiasQuery, ClaimSet, Direction, DupQuery, LinearClaim};
    use fc_uncertain::{rng_from_seed, DiscreteDist};
    use rand::Rng;

    fn claims(n: usize) -> ClaimSet {
        let perturbations: Vec<LinearClaim> = (0..n - 1)
            .map(|i| LinearClaim::window_sum(i, 2).unwrap())
            .collect();
        let weights = vec![1.0; perturbations.len()];
        ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            perturbations,
            weights,
            Direction::HigherIsStronger,
        )
        .unwrap()
    }

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = rng_from_seed(seed);
        let dists = (0..n)
            .map(|_| {
                let k = rng.gen_range(2..=3);
                let vals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..10.0)).collect();
                DiscreteDist::uniform_over(&vals).unwrap()
            })
            .collect::<Vec<_>>();
        let current = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let costs = (0..n).map(|_| rng.gen_range(1..5)).collect();
        Instance::new(dists, current, costs).unwrap()
    }

    fn dup_problem(n: usize, seed: u64) -> Arc<Problem> {
        Arc::new(
            Problem::discrete_min_var(
                random_instance(n, seed),
                Arc::new(DupQuery::new(claims(n), 6.0)),
            )
            .unwrap(),
        )
    }

    fn service(opts: ServiceOptions) -> PlannerService {
        PlannerService::new(Arc::new(SolverRegistry::with_defaults()), opts)
    }

    #[test]
    fn tiny_request_is_solved_inline_at_submit() {
        let svc = service(ServiceOptions::new());
        let problem = dup_problem(6, 1);
        let expected = svc
            .registry()
            .solve("greedy", &problem, Budget::absolute(2))
            .unwrap();
        let handle = svc
            .submit(SolveRequest::new(
                "greedy",
                Arc::clone(&problem),
                Budget::absolute(2),
            ))
            .unwrap();
        assert_eq!(handle.lane(), Lane::Inline);
        assert!(
            handle.is_ready(),
            "inline handles resolve before submit returns"
        );
        let plan = handle.wait().unwrap();
        assert_eq!(plan.divergence(&expected), None);
        let stats = svc.stats();
        assert_eq!(stats.inline, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn queued_request_matches_synchronous_solve() {
        // Threshold 0 forces the queue even for a small problem.
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let problem = dup_problem(10, 2);
        let expected = svc
            .registry()
            .solve("auto", &problem, Budget::absolute(3))
            .unwrap();
        let handle = svc
            .submit(SolveRequest::new(
                "auto",
                Arc::clone(&problem),
                Budget::absolute(3),
            ))
            .unwrap();
        assert_eq!(handle.lane(), Lane::Interactive);
        let plan = handle.wait().unwrap();
        assert_eq!(plan.divergence(&expected), None);
    }

    #[test]
    fn sweep_matches_registry_sweep_bytes() {
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let problem = dup_problem(12, 3);
        let budgets: Vec<Budget> = (0..8).map(Budget::absolute).collect();
        let expected = svc.registry().sweep("greedy", &problem, &budgets).unwrap();
        let handle = svc
            .submit_sweep(SweepRequest::new(
                "greedy",
                Arc::clone(&problem),
                budgets.clone(),
            ))
            .unwrap();
        let plans = handle.wait().unwrap();
        assert_eq!(plans.len(), expected.len());
        for (i, (a, b)) in plans.iter().zip(&expected).enumerate() {
            assert_eq!(a.divergence(b), None, "budget point {i}");
        }
    }

    #[test]
    fn streamed_sweep_yields_points_in_budget_order_with_identical_bytes() {
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let problem = dup_problem(12, 31);
        let budgets: Vec<Budget> = (0..8).map(Budget::absolute).collect();
        let expected = svc.registry().sweep("greedy", &problem, &budgets).unwrap();
        let mut handle = svc
            .submit_sweep(SweepRequest::new(
                "greedy",
                Arc::clone(&problem),
                budgets.clone(),
            ))
            .unwrap();
        assert_eq!(handle.points(), budgets.len());
        let mut streamed = Vec::new();
        loop {
            match handle.wait_next_point() {
                PointOutcome::Point(r) => streamed.push(r.unwrap()),
                PointOutcome::Done => break,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(handle.points_yielded(), budgets.len());
        assert!(
            handle.wait_next_point().is_done(),
            "a drained stream stays Done"
        );
        assert_eq!(streamed.len(), expected.len());
        for (i, (a, b)) in streamed.iter().zip(&expected).enumerate() {
            assert_eq!(a.divergence(b), None, "streamed budget point {i}");
        }
        // Streaming never consumes the aggregate: wait() still returns
        // the full grid, byte-identical to the streamed points.
        let plans = handle.wait().unwrap();
        for (i, (a, b)) in plans.iter().zip(&streamed).enumerate() {
            assert_eq!(a.divergence(b), None, "aggregate vs streamed point {i}");
        }
    }

    #[test]
    fn inline_sweep_streams_its_buffered_points() {
        // Inline-lane sweeps resolve at submit; streaming replays the
        // buffered result point by point.
        let svc = service(ServiceOptions::new());
        let problem = dup_problem(6, 32);
        let budgets: Vec<Budget> = (1..=3).map(Budget::absolute).collect();
        let expected = svc.registry().sweep("greedy", &problem, &budgets).unwrap();
        let mut handle = svc
            .submit_sweep(SweepRequest::new(
                "greedy",
                Arc::clone(&problem),
                budgets.clone(),
            ))
            .unwrap();
        assert_eq!(handle.lane(), Lane::Inline);
        for (i, want) in expected.iter().enumerate() {
            let got = handle
                .try_next_point()
                .point()
                .unwrap_or_else(|| panic!("inline point {i} is ready at submit"))
                .unwrap();
            assert_eq!(got.divergence(want), None, "inline streamed point {i}");
        }
        assert!(handle.try_next_point().is_done());
        // The aggregate slot was taken by streaming, but wait() hands
        // back the stashed result instead of panicking.
        assert_eq!(handle.wait().unwrap().len(), expected.len());
    }

    #[test]
    fn empty_and_error_sweeps_stream_deterministically() {
        let svc = service(ServiceOptions::new());
        let problem = dup_problem(6, 33);
        let mut empty = svc
            .submit_sweep(SweepRequest::new("greedy", Arc::clone(&problem), vec![]))
            .unwrap();
        assert_eq!(empty.points(), 0);
        assert!(empty.try_next_point().is_done());
        empty.wait().unwrap();

        let mut unknown = svc
            .submit_sweep(SweepRequest::new(
                "no-such-strategy",
                Arc::clone(&problem),
                vec![Budget::absolute(1), Budget::absolute(2)],
            ))
            .unwrap();
        let err = unknown
            .wait_next_point()
            .point()
            .expect("a failed sweep streams its error as the first point")
            .unwrap_err();
        assert!(
            matches!(err, CoreError::UnknownStrategy { .. }),
            "got {err}"
        );
        assert!(
            unknown.wait_next_point().is_done(),
            "the error is yielded exactly once"
        );
    }

    /// Parks every solve after the first `free` until the gate opens;
    /// delegates to `greedy`. With a single-threaded pool the sweep
    /// chain solves points in index order, so "first point done, second
    /// point parked mid-solve" is a deterministic state.
    #[derive(Debug)]
    struct StepSolver {
        gate: Arc<Gate>,
        free: usize,
        calls: AtomicUsize,
    }

    impl Solver for StepSolver {
        fn name(&self) -> &'static str {
            "step"
        }
        fn solve_with_cache<'p>(
            &self,
            problem: &'p Problem,
            budget: Budget,
            cache: &EngineCache<'p>,
        ) -> Result<Plan> {
            if self.calls.fetch_add(1, Ordering::SeqCst) >= self.free {
                {
                    let mut entered = self.gate.entered.lock().unwrap();
                    *entered += 1;
                    self.gate.entered_cv.notify_all();
                }
                let mut open = self.gate.open.lock().unwrap();
                while !*open {
                    open = self.gate.opened.wait(open).unwrap();
                }
            }
            crate::planner::GreedySolver.solve_with_cache(problem, budget, cache)
        }
    }

    fn stepped_service(free: usize) -> (PlannerService, Arc<Gate>) {
        let gate = Arc::new(Gate::default());
        let mut registry = SolverRegistry::with_defaults();
        registry.register_solver(Arc::new(StepSolver {
            gate: Arc::clone(&gate),
            free,
            calls: AtomicUsize::new(0),
        }));
        let svc = PlannerService::new(
            Arc::new(registry),
            ServiceOptions::new()
                .with_inline_threshold(0)
                .with_interactive_threshold(0)
                .with_pool(Arc::new(WorkerPool::new(1))),
        );
        (svc, gate)
    }

    #[test]
    fn first_point_streams_while_later_points_still_solve() {
        let (svc, gate) = stepped_service(1);
        let problem = dup_problem(10, 34);
        let budgets: Vec<Budget> = (1..=4).map(Budget::absolute).collect();
        let expected = svc.registry().sweep("greedy", &problem, &budgets).unwrap();
        let mut handle = svc
            .submit_sweep(SweepRequest::new("step", Arc::clone(&problem), budgets))
            .unwrap();
        // Point 0 solves freely; point 1 parks on the gate.
        let first = handle
            .wait_next_point()
            .point()
            .expect("first point streams before the sweep resolves")
            .unwrap();
        assert_eq!(first.divergence(&expected[0]), None);
        gate.wait_entered(1); // point 1 is deterministically mid-solve
        assert!(!handle.is_ready(), "the aggregate has not resolved");
        assert_eq!(
            svc.stats().completed,
            0,
            "the sweep counts as completed only at the final fold"
        );
        assert!(
            handle.try_next_point().is_timed_out(),
            "the parked point is not ready"
        );
        gate.open_up();
        let mut streamed = vec![first];
        loop {
            match handle.wait_next_point() {
                PointOutcome::Point(r) => streamed.push(r.unwrap()),
                PointOutcome::Done => break,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        for (i, (a, b)) in streamed.iter().zip(&expected).enumerate() {
            assert_eq!(a.divergence(b), None, "budget point {i}");
        }
        // `Done` synchronizes with the final fold, so the sweep is
        // already counted; the aggregate wait still works afterwards.
        assert_eq!(svc.stats().completed, 1);
        handle.wait().unwrap();
    }

    #[test]
    fn draining_to_done_then_dropping_counts_completed_not_cancelled() {
        // Regression: the last point's slot is published before the
        // final fold resolves the aggregate. `Done` must synchronize
        // with the fold — a consumer that drains the stream and
        // immediately drops the handle must never race the drop-cancel
        // into flipping a fully-delivered sweep to cancelled.
        let svc = PlannerService::new(
            Arc::new(SolverRegistry::with_defaults()),
            ServiceOptions::new()
                .with_inline_threshold(0)
                .with_pool(Arc::new(WorkerPool::new(2))),
        );
        let rounds = 20;
        for round in 0..rounds {
            let problem = dup_problem(10, 50 + round);
            let budgets: Vec<Budget> = (1..=3).map(Budget::absolute).collect();
            let mut handle = svc
                .submit_sweep(SweepRequest::new("greedy", problem, budgets))
                .unwrap();
            loop {
                match handle.wait_next_point() {
                    PointOutcome::Point(r) => {
                        r.unwrap();
                    }
                    PointOutcome::Done => break,
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
            drop(handle);
        }
        let stats = svc.stats();
        assert_eq!(stats.cancelled, 0, "drop after Done must never cancel");
        assert_eq!(stats.completed, rounds);
    }

    #[test]
    fn cancelling_mid_stream_skips_the_remaining_points() {
        let (svc, gate) = stepped_service(1);
        let problem = dup_problem(10, 35);
        let budgets: Vec<Budget> = (1..=6).map(Budget::absolute).collect();
        let mut handle = svc
            .submit_sweep(SweepRequest::new("step", Arc::clone(&problem), budgets))
            .unwrap();
        handle
            .wait_next_point()
            .point()
            .expect("first point streams")
            .unwrap();
        gate.wait_entered(1); // point 1 mid-solve
        assert!(handle.cancel());
        assert!(handle.wait_next_point().is_cancelled());
        gate.open_up();
        // Drain the single worker past the skipped points.
        svc.submit(SolveRequest::new(
            "greedy",
            dup_problem(8, 36),
            Budget::absolute(1),
        ))
        .unwrap()
        .wait()
        .unwrap();
        assert_eq!(
            *gate.entered.lock().unwrap(),
            1,
            "only the mid-solve point ran to completion; the rest were skipped"
        );
        assert_eq!(svc.stats().cancelled, 1);
        assert_eq!(svc.quota_usage(&TenantId::default()), QuotaUsage::default());
    }

    #[test]
    fn stream_disconnect_cancels_via_wait_next_point_or_cancel() {
        let (svc, gate) = stepped_service(1);
        let problem = dup_problem(10, 37);
        let budgets: Vec<Budget> = (1..=4).map(Budget::absolute).collect();
        let mut handle = svc
            .submit_sweep(SweepRequest::new("step", Arc::clone(&problem), budgets))
            .unwrap();
        handle
            .wait_next_point_or_cancel(Duration::from_millis(5), || true)
            .point()
            .expect("a live client streams the first point")
            .unwrap();
        gate.wait_entered(1);
        // The "client" hangs up: the next wait observes it and cancels.
        let outcome = handle.wait_next_point_or_cancel(Duration::from_millis(5), || false);
        assert!(outcome.is_cancelled());
        assert!(handle.is_cancelled());
        gate.open_up();
        assert_eq!(svc.stats().cancelled, 1);
    }

    #[test]
    fn lane_routing_follows_estimates() {
        let svc = service(
            ServiceOptions::new()
                .with_inline_threshold(0)
                .with_interactive_threshold(0),
        );
        let handle = svc
            .submit(SolveRequest::new(
                "greedy",
                dup_problem(10, 4),
                Budget::absolute(2),
            ))
            .unwrap();
        assert_eq!(handle.lane(), Lane::Bulk);
        handle.wait().unwrap();
        let stats = svc.stats();
        assert_eq!(stats.bulk, 1);
        assert_eq!(stats.interactive, 0);
    }

    #[test]
    fn unknown_strategy_resolves_immediately() {
        let svc = service(ServiceOptions::new());
        let handle = svc
            .submit(SolveRequest::new(
                "nope",
                dup_problem(6, 5),
                Budget::absolute(1),
            ))
            .unwrap();
        assert!(handle.is_ready());
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, CoreError::UnknownStrategy { name } if name == "nope"));
        // Error-resolved requests still keep the lane accounting
        // consistent: inline + interactive + bulk == submitted.
        let stats = svc.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.inline, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn strategy_refusal_is_a_typed_error_not_a_hang() {
        // "best" refuses MaxPr problems; the handle must resolve to the
        // typed refusal.
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let inst = random_instance(8, 6);
        let problem = Arc::new(
            Problem::discrete_max_pr(inst, Arc::new(BiasQuery::new(claims(8), 4.0)), 0.5).unwrap(),
        );
        let handle = svc
            .submit(SolveRequest::new("best", problem, Budget::absolute(2)))
            .unwrap();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, CoreError::StrategyUnsupported { .. }));
    }

    #[test]
    fn panicking_solver_is_contained() {
        #[derive(Debug)]
        struct PanickySolver;
        impl Solver for PanickySolver {
            fn name(&self) -> &'static str {
                "panicky"
            }
            fn solve_with_cache<'p>(
                &self,
                _problem: &'p Problem,
                _budget: Budget,
                _cache: &EngineCache<'p>,
            ) -> Result<Plan> {
                panic!("solver exploded");
            }
        }
        let mut registry = SolverRegistry::with_defaults();
        registry.register_solver(Arc::new(PanickySolver));
        let svc = PlannerService::new(
            Arc::new(registry),
            ServiceOptions::new().with_inline_threshold(0),
        );
        let err = svc
            .submit(SolveRequest::new(
                "panicky",
                dup_problem(6, 7),
                Budget::absolute(1),
            ))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(
            matches!(&err, CoreError::WorkerPanicked { detail } if detail.contains("exploded")),
            "got {err}"
        );
        assert_eq!(svc.stats().panics, 1);
        // The service (and its pool) keep serving after the panic.
        let problem = dup_problem(6, 8);
        let ok = svc
            .submit(SolveRequest::new(
                "greedy",
                Arc::clone(&problem),
                Budget::absolute(1),
            ))
            .unwrap()
            .wait();
        assert!(ok.is_ok());
    }

    #[test]
    fn try_wait_takes_exactly_once() {
        let svc = service(ServiceOptions::new());
        let handle = svc
            .submit(SolveRequest::new(
                "greedy",
                dup_problem(6, 9),
                Budget::absolute(1),
            ))
            .unwrap();
        assert!(handle.try_wait().ready().expect("inline: ready").is_ok());
        assert!(
            handle.try_wait().is_taken(),
            "second take reports Taken, not a timeout"
        );
        assert!(handle.is_ready(), "taken still reads as ready");
        assert!(!handle.cancel(), "a resolved request cannot be cancelled");
    }

    #[test]
    fn concurrent_submitters_get_identical_plans() {
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let problem = dup_problem(14, 10);
        let budget = Budget::absolute(4);
        let expected = svc.registry().solve("auto", &problem, budget).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let svc = svc.clone();
                let problem = Arc::clone(&problem);
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..3 {
                        let plan = svc
                            .submit(SolveRequest::new("auto", Arc::clone(&problem), budget))
                            .unwrap()
                            .wait()
                            .unwrap();
                        assert_eq!(plan.divergence(expected), None);
                    }
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.completed, 12);
    }

    #[test]
    fn keyed_requests_share_the_store() {
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let problem = dup_problem(12, 11);
        let key = CacheKey::new(problem.instance_fingerprint(), 99);
        for _ in 0..3 {
            svc.submit(
                SolveRequest::new("greedy", Arc::clone(&problem), Budget::absolute(3))
                    .with_key(key),
            )
            .unwrap()
            .wait()
            .unwrap();
        }
        assert_eq!(
            svc.store().stats().scoped_builds,
            1,
            "repeat keyed requests reuse one table build"
        );
    }

    /// A solver that parks every solve until the gate opens, then
    /// delegates to `greedy`. Lets tests pin the (single-threaded)
    /// pool in a known state: requests submitted behind a closed gate
    /// are deterministically still queued.
    #[derive(Debug, Default)]
    struct Gate {
        open: Mutex<bool>,
        opened: Condvar,
        entered: Mutex<usize>,
        entered_cv: Condvar,
    }

    impl Gate {
        fn open_up(&self) {
            *self.open.lock().unwrap() = true;
            self.opened.notify_all();
        }

        /// Blocks until `n` solves have reached the gate.
        fn wait_entered(&self, n: usize) {
            let mut entered = self.entered.lock().unwrap();
            while *entered < n {
                entered = self.entered_cv.wait(entered).unwrap();
            }
        }
    }

    #[derive(Debug)]
    struct GateSolver {
        gate: Arc<Gate>,
    }

    impl Solver for GateSolver {
        fn name(&self) -> &'static str {
            "gate"
        }
        fn solve_with_cache<'p>(
            &self,
            problem: &'p Problem,
            budget: Budget,
            cache: &EngineCache<'p>,
        ) -> Result<Plan> {
            {
                let mut entered = self.gate.entered.lock().unwrap();
                *entered += 1;
                self.gate.entered_cv.notify_all();
            }
            let mut open = self.gate.open.lock().unwrap();
            while !*open {
                open = self.gate.opened.wait(open).unwrap();
            }
            drop(open);
            crate::planner::GreedySolver.solve_with_cache(problem, budget, cache)
        }
    }

    /// A service whose single-threaded pool can be pinned via the
    /// returned gate.
    fn gated_service(opts: ServiceOptions) -> (PlannerService, Arc<Gate>) {
        let gate = Arc::new(Gate::default());
        let mut registry = SolverRegistry::with_defaults();
        registry.register_solver(Arc::new(GateSolver {
            gate: Arc::clone(&gate),
        }));
        let svc = PlannerService::new(
            Arc::new(registry),
            opts.with_pool(Arc::new(WorkerPool::new(1))),
        );
        (svc, gate)
    }

    #[test]
    fn timed_out_wait_does_not_lose_the_result() {
        // The PR-3 API returned `None` for both "timed out" and
        // "already taken", so one timeout could lose a completed plan
        // forever. Regression: a 0-duration timeout reports TimedOut
        // and a later wait() still gets the plan.
        let (svc, gate) = gated_service(ServiceOptions::new().with_inline_threshold(0));
        let problem = dup_problem(8, 21);
        let expected = svc
            .registry()
            .solve("greedy", &problem, Budget::absolute(2))
            .unwrap();
        let handle = svc
            .submit(SolveRequest::new(
                "gate",
                Arc::clone(&problem),
                Budget::absolute(2),
            ))
            .unwrap();
        gate.wait_entered(1); // deterministically pending
        assert!(
            handle.wait_timeout(Duration::ZERO).is_timed_out(),
            "a pending request times out"
        );
        assert!(
            handle.try_wait().is_timed_out(),
            "try_wait on a pending request is a zero-wait timeout"
        );
        gate.open_up();
        let plan = handle.wait().expect("the timed-out wait consumed nothing");
        assert_eq!(plan.strategy, expected.strategy);
        assert_eq!(plan.selection.objects(), expected.selection.objects());
    }

    #[test]
    fn dropped_queued_sweep_performs_zero_engine_builds() {
        // A handle dropped before dispatch must never reach a worker:
        // the dispatcher drops the cancelled point tasks un-run, so the
        // keyed sweep performs zero scoped-table builds in the store.
        let (svc, gate) = gated_service(
            ServiceOptions::new()
                .with_inline_threshold(0)
                .with_interactive_threshold(0),
        );
        // Pin the only worker behind the gate (unkeyed: no store I/O).
        let blocker = svc
            .submit(SolveRequest::new(
                "gate",
                dup_problem(8, 22),
                Budget::absolute(2),
            ))
            .unwrap();
        gate.wait_entered(1);

        let problem = dup_problem(12, 23);
        let key = CacheKey::new(problem.instance_fingerprint(), 7);
        let budgets: Vec<Budget> = (0..6).map(Budget::absolute).collect();
        let sweep = svc
            .submit_sweep(SweepRequest::new("greedy", Arc::clone(&problem), budgets).with_key(key))
            .unwrap();
        assert_eq!(sweep.lane(), Lane::Bulk);
        drop(sweep); // cancellation-on-drop, while every point is queued

        let stats = svc.stats();
        assert_eq!(stats.cancelled, 1, "the drop registered as a cancel");
        assert_eq!(
            svc.quota_usage(&TenantId::default()).in_flight,
            1,
            "only the blocker still holds quota"
        );

        gate.open_up();
        blocker.wait().unwrap();
        // Drain the queue behind the cancelled point tasks: this
        // request's token runs after theirs have been discarded.
        svc.submit(SolveRequest::new(
            "greedy",
            dup_problem(8, 24),
            Budget::absolute(1),
        ))
        .unwrap()
        .wait()
        .unwrap();

        assert_eq!(
            svc.store().stats().scoped_builds,
            0,
            "a cancelled queued sweep never builds an engine"
        );
        assert_eq!(svc.quota_usage(&TenantId::default()), QuotaUsage::default());
    }

    #[test]
    fn cancelling_mid_sweep_stops_after_the_current_point() {
        // Route the sweep itself through the gate solver: point 0 parks
        // on the worker; the cancel lands while it solves; the
        // remaining points are dropped at dispatch.
        let (svc, gate) = gated_service(
            ServiceOptions::new()
                .with_inline_threshold(0)
                .with_interactive_threshold(0),
        );
        let problem = dup_problem(10, 25);
        let budgets: Vec<Budget> = (1..=8).map(Budget::absolute).collect();
        let handle = svc
            .submit_sweep(SweepRequest::new("gate", Arc::clone(&problem), budgets))
            .unwrap();
        gate.wait_entered(1); // point 0 is mid-solve
        assert!(handle.cancel(), "first cancel lands");
        assert!(!handle.cancel(), "cancel is idempotent");
        assert!(handle.is_cancelled());
        assert!(handle.try_wait().is_cancelled());
        gate.open_up();
        // Drain: everything after point 0 must have been discarded.
        svc.submit(SolveRequest::new(
            "greedy",
            dup_problem(8, 26),
            Budget::absolute(1),
        ))
        .unwrap()
        .wait()
        .unwrap();
        assert_eq!(
            *gate.entered.lock().unwrap(),
            1,
            "only the in-flight budget point ran; cancellation stopped the rest"
        );
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, CoreError::Cancelled), "got {err}");
        assert_eq!(svc.quota_usage(&TenantId::default()), QuotaUsage::default());
    }

    #[test]
    fn quota_rejects_at_submit_with_a_typed_error() {
        let (svc, gate) = gated_service(ServiceOptions::new().with_inline_threshold(0));
        svc.set_quota("alice", QuotaPolicy::default().with_max_in_flight(2));
        let problem = dup_problem(8, 27);
        let a1 = svc
            .submit(
                SolveRequest::new("gate", Arc::clone(&problem), Budget::absolute(1))
                    .with_tenant("alice"),
            )
            .unwrap();
        let a2 = svc
            .submit(
                SolveRequest::new("greedy", Arc::clone(&problem), Budget::absolute(1))
                    .with_tenant("alice"),
            )
            .unwrap();
        let err = svc
            .submit(
                SolveRequest::new("greedy", Arc::clone(&problem), Budget::absolute(1))
                    .with_tenant("alice"),
            )
            .unwrap_err();
        assert!(
            matches!(&err, CoreError::QuotaExceeded { tenant, .. } if tenant == "alice"),
            "got {err}"
        );
        // Other tenants are unaffected by alice's exhaustion.
        let b = svc
            .submit(SolveRequest::new(
                "greedy",
                Arc::clone(&problem),
                Budget::absolute(1),
            ))
            .unwrap();
        let stats = svc.stats();
        assert_eq!(stats.quota_rejected, 1);
        assert_eq!(stats.submitted, 3, "the rejected submit never existed");
        gate.open_up();
        a1.wait().unwrap();
        a2.wait().unwrap();
        b.wait().unwrap();
        assert_eq!(
            svc.quota_usage(&TenantId::new("alice")),
            QuotaUsage::default()
        );
        // Quota freed: alice can submit again.
        svc.submit(SolveRequest::new("greedy", problem, Budget::absolute(1)).with_tenant("alice"))
            .unwrap()
            .wait()
            .unwrap();
    }

    #[test]
    fn quota_caps_outstanding_evals_not_just_request_count() {
        let svc = service(ServiceOptions::new());
        let problem = dup_problem(10, 28);
        let per_request = problem.estimated_engine_evals();
        assert!(per_request > 0);
        svc.set_quota(
            "metered",
            QuotaPolicy::default().with_max_outstanding_evals(per_request - 1),
        );
        let err = svc
            .submit(
                SolveRequest::new("greedy", Arc::clone(&problem), Budget::absolute(1))
                    .with_tenant("metered"),
            )
            .unwrap_err();
        assert!(
            matches!(&err, CoreError::QuotaExceeded { reason, .. } if reason.contains("evals")),
            "got {err}"
        );
    }

    #[test]
    fn quota_is_released_on_panic() {
        #[derive(Debug)]
        struct PanickySolver;
        impl Solver for PanickySolver {
            fn name(&self) -> &'static str {
                "panicky"
            }
            fn solve_with_cache<'p>(
                &self,
                _problem: &'p Problem,
                _budget: Budget,
                _cache: &EngineCache<'p>,
            ) -> Result<Plan> {
                panic!("solver exploded");
            }
        }
        let mut registry = SolverRegistry::with_defaults();
        registry.register_solver(Arc::new(PanickySolver));
        let svc = PlannerService::new(
            Arc::new(registry),
            ServiceOptions::new().with_inline_threshold(0),
        );
        svc.set_quota("alice", QuotaPolicy::default().with_max_in_flight(1));
        let err = svc
            .submit(
                SolveRequest::new("panicky", dup_problem(6, 29), Budget::absolute(1))
                    .with_tenant("alice"),
            )
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, CoreError::WorkerPanicked { .. }));
        assert_eq!(
            svc.quota_usage(&TenantId::new("alice")),
            QuotaUsage::default(),
            "the WorkerPanicked path released the lease"
        );
        // The freed quota admits the next request.
        svc.submit(
            SolveRequest::new("greedy", dup_problem(6, 30), Budget::absolute(1))
                .with_tenant("alice"),
        )
        .unwrap()
        .wait()
        .unwrap();
    }

    #[test]
    fn quota_is_released_on_cancellation() {
        let (svc, gate) = gated_service(ServiceOptions::new().with_inline_threshold(0));
        svc.set_quota("alice", QuotaPolicy::default().with_max_in_flight(1));
        // Pin the worker with a default-tenant request so alice's
        // request stays queued.
        let blocker = svc
            .submit(SolveRequest::new(
                "gate",
                dup_problem(8, 31),
                Budget::absolute(1),
            ))
            .unwrap();
        gate.wait_entered(1);
        let queued = svc
            .submit(
                SolveRequest::new("greedy", dup_problem(8, 32), Budget::absolute(1))
                    .with_tenant("alice"),
            )
            .unwrap();
        assert!(svc
            .submit(
                SolveRequest::new("greedy", dup_problem(8, 33), Budget::absolute(1))
                    .with_tenant("alice"),
            )
            .is_err());
        assert!(queued.cancel());
        assert_eq!(
            svc.quota_usage(&TenantId::new("alice")),
            QuotaUsage::default(),
            "cancel released the lease immediately, before dispatch"
        );
        // The freed slot admits a new request straight away.
        let again = svc
            .submit(
                SolveRequest::new("greedy", dup_problem(8, 34), Budget::absolute(1))
                    .with_tenant("alice"),
            )
            .unwrap();
        gate.open_up();
        blocker.wait().unwrap();
        again.wait().unwrap();
        let stats = svc.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(
            stats.completed + stats.cancelled,
            stats.submitted,
            "every request resolved exactly one way"
        );
    }

    #[test]
    fn wait_timeout_with_huge_duration_waits_instead_of_panicking() {
        // `Instant::now() + Duration::MAX` overflows and used to panic
        // inside wait_timeout; the overflow must degrade to
        // wait-forever (a deadline past the representable range can
        // never elapse).
        let (svc, gate) = gated_service(ServiceOptions::new().with_inline_threshold(0));
        let handle = svc
            .submit(SolveRequest::new(
                "gate",
                dup_problem(8, 40),
                Budget::absolute(2),
            ))
            .unwrap();
        gate.wait_entered(1); // deterministically pending at wait time
        std::thread::scope(|s| {
            let waiter = s.spawn(|| handle.wait_timeout(Duration::MAX));
            gate.open_up();
            let outcome = waiter.join().expect("waiter must not panic");
            assert!(
                matches!(outcome, WaitOutcome::Ready(Ok(_))),
                "the overflowing timeout waited for the result"
            );
        });
    }

    #[test]
    fn wait_or_cancel_cancels_when_the_liveness_probe_fails() {
        let (svc, gate) = gated_service(ServiceOptions::new().with_inline_threshold(0));
        let handle = svc
            .submit(SolveRequest::new(
                "gate",
                dup_problem(8, 41),
                Budget::absolute(2),
            ))
            .unwrap();
        gate.wait_entered(1);
        // First poll reports alive, second reports the client gone.
        let mut polls = 0;
        let outcome = handle.wait_or_cancel(Duration::from_millis(1), || {
            polls += 1;
            polls < 2
        });
        assert!(outcome.is_cancelled());
        assert!(handle.is_cancelled());
        assert_eq!(svc.stats().cancelled, 1);
        assert_eq!(svc.quota_usage(&TenantId::default()).in_flight, 0);
        gate.open_up();
    }

    #[test]
    fn wait_or_cancel_returns_the_result_while_the_client_lives() {
        let svc = service(ServiceOptions::new().with_inline_threshold(0));
        let problem = dup_problem(8, 42);
        let expected = svc
            .registry()
            .solve("greedy", &problem, Budget::absolute(2))
            .unwrap();
        let handle = svc
            .submit(SolveRequest::new(
                "greedy",
                Arc::clone(&problem),
                Budget::absolute(2),
            ))
            .unwrap();
        let outcome = handle.wait_or_cancel(Duration::from_millis(1), || true);
        let plan = outcome.ready().expect("completed").unwrap();
        assert_eq!(plan.divergence(&expected), None);
    }

    #[test]
    fn panicked_request_leaves_siblings_waitable_and_ledger_releasable() {
        // One contained WorkerPanicked request must not poison the
        // slot/ledger locks for anyone else: the sibling handle stays
        // waitable and the tenant's quota still releases to zero.
        #[derive(Debug)]
        struct PanickySolver;
        impl Solver for PanickySolver {
            fn name(&self) -> &'static str {
                "panicky"
            }
            fn solve_with_cache<'p>(
                &self,
                _problem: &'p Problem,
                _budget: Budget,
                _cache: &EngineCache<'p>,
            ) -> Result<Plan> {
                panic!("solver exploded");
            }
        }
        let gate = Arc::new(Gate::default());
        let mut registry = SolverRegistry::with_defaults();
        registry.register_solver(Arc::new(GateSolver {
            gate: Arc::clone(&gate),
        }));
        registry.register_solver(Arc::new(PanickySolver));
        let svc = PlannerService::new(
            Arc::new(registry),
            ServiceOptions::new()
                .with_inline_threshold(0)
                .with_pool(Arc::new(WorkerPool::new(1))),
        );
        svc.set_quota("alice", QuotaPolicy::default().with_max_in_flight(3));
        let sibling = svc
            .submit(
                SolveRequest::new("gate", dup_problem(8, 43), Budget::absolute(2))
                    .with_tenant("alice"),
            )
            .unwrap();
        gate.wait_entered(1); // the sibling is mid-solve on the worker
        let doomed = svc
            .submit(
                SolveRequest::new("panicky", dup_problem(8, 44), Budget::absolute(1))
                    .with_tenant("alice"),
            )
            .unwrap();
        gate.open_up();
        let err = doomed.wait().unwrap_err();
        assert!(matches!(err, CoreError::WorkerPanicked { .. }));
        assert!(
            sibling.wait().is_ok(),
            "the sibling handle resolved normally after the panic"
        );
        assert_eq!(
            svc.quota_usage(&TenantId::new("alice")),
            QuotaUsage::default(),
            "both leases released despite the panic"
        );
        // The ledger keeps admitting work.
        svc.submit(
            SolveRequest::new("greedy", dup_problem(8, 45), Budget::absolute(1))
                .with_tenant("alice"),
        )
        .unwrap()
        .wait()
        .unwrap();
    }

    #[test]
    fn poisoned_slot_lock_recovers() {
        // Deliberately poison a pending request's slot mutex (a waiter
        // panicking while holding it), then verify completion and a
        // later wait both recover instead of cascading the panic.
        let (svc, gate) = gated_service(ServiceOptions::new().with_inline_threshold(0));
        let handle = svc
            .submit(SolveRequest::new(
                "gate",
                dup_problem(8, 46),
                Budget::absolute(2),
            ))
            .unwrap();
        gate.wait_entered(1);
        let shared = Arc::clone(&handle.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.slot.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        gate.open_up();
        assert!(
            handle.wait().is_ok(),
            "a poisoned slot lock recovers for both the completer and the waiter"
        );
    }

    #[test]
    fn poisoned_tenant_ledger_recovers() {
        let svc = service(ServiceOptions::new());
        let inner = Arc::clone(&svc.inner);
        let _ = std::thread::spawn(move || {
            let _guard = inner.tenants.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        // Quota bookkeeping keeps working on the recovered lock.
        svc.set_quota("alice", QuotaPolicy::default().with_max_in_flight(1));
        svc.submit(
            SolveRequest::new("greedy", dup_problem(8, 47), Budget::absolute(1))
                .with_tenant("alice"),
        )
        .unwrap()
        .wait()
        .unwrap();
        assert_eq!(
            svc.quota_usage(&TenantId::new("alice")),
            QuotaUsage::default()
        );
    }

    #[test]
    fn tenant_quotas_hold_under_concurrent_hammering() {
        // Tenant A hammers the bulk lane into (and past) its quota
        // while tenant B streams interactive claims; B must never be
        // rejected or served a wrong plan, and both ledgers must read
        // zero once the dust settles.
        let svc = PlannerService::new(
            Arc::new(SolverRegistry::with_defaults()),
            ServiceOptions::new()
                .with_inline_threshold(0)
                .with_pool(Arc::new(WorkerPool::new(2))),
        );
        svc.set_quota("a", QuotaPolicy::new(3, u64::MAX));
        let problem = dup_problem(12, 35);
        let budgets: Vec<Budget> = (0..5).map(Budget::absolute).collect();
        let expected = svc
            .registry()
            .solve("auto", &problem, Budget::absolute(3))
            .unwrap();
        let rejected = AtomicU64::new(0);
        std::thread::scope(|s| {
            let svc_a = svc.clone();
            let problem_a = Arc::clone(&problem);
            let budgets = &budgets;
            let rejected = &rejected;
            s.spawn(move || {
                for i in 0..20 {
                    match svc_a.submit_sweep(
                        SweepRequest::new("greedy", Arc::clone(&problem_a), budgets.clone())
                            .with_tenant("a"),
                    ) {
                        Ok(handle) if i % 3 == 0 => drop(handle), // churn: abandon
                        Ok(handle) => {
                            handle.wait().unwrap();
                        }
                        Err(CoreError::QuotaExceeded { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
            });
            for _ in 0..2 {
                let svc_b = svc.clone();
                let problem_b = Arc::clone(&problem);
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..8 {
                        let plan = svc_b
                            .submit(
                                SolveRequest::new(
                                    "auto",
                                    Arc::clone(&problem_b),
                                    Budget::absolute(3),
                                )
                                .with_tenant("b"),
                            )
                            .expect("tenant B is never rejected by A's quota")
                            .wait()
                            .unwrap();
                        assert_eq!(plan.divergence(expected), None);
                    }
                });
            }
        });
        assert_eq!(svc.quota_usage(&TenantId::new("a")), QuotaUsage::default());
        assert_eq!(svc.quota_usage(&TenantId::new("b")), QuotaUsage::default());
        let stats = svc.stats();
        assert_eq!(stats.quota_rejected, rejected.load(Ordering::Relaxed));
        // Cancelled sweeps may still be discarding tasks, but the
        // ledger and the counters must already balance.
        assert_eq!(stats.completed + stats.cancelled, stats.submitted);
    }
}
