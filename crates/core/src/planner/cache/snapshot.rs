//! Versioned on-disk persistence for a [`CacheStore`].
//!
//! A restarted (or freshly spawned) replica normally boots cold: every
//! stream's first request pays the full scoped-table build. This module
//! makes the prefix work survive the process — [`write_snapshot`]
//! serializes the resident entries (scoped Theorem 3.8 tables and
//! Lemma 3.1 modular benefits, keyed by their [`CacheKey`]
//! fingerprints) into a single checksummed file, and
//! [`restore_snapshot`] rehydrates them into a store so the first
//! lookup of each restored key is a **hit** with zero rebuild
//! evaluations.
//!
//! ## Format (version 1, all integers little-endian)
//!
//! ```text
//! magic    8 bytes   b"FCSNAPSH"
//! version  u32       1
//! scope    u64       caller-supplied topology fingerprint
//! count    u64       number of entries
//! entry*             instance u64 · query u64 · flags u8 ·
//!                    [scoped-tables payload] · [benefits len u64 + f64 bits]
//! checksum u64       FNV-1a over every preceding byte
//! ```
//!
//! `flags` bit 0 marks a tables payload; bits 1–2 encode the benefits
//! state (0 = never built, 1 = affine vector follows, 2 = non-affine
//! `None`). The scoped-tables payload is the self-describing encoding
//! from [`ScopedTables::encode_into`].
//!
//! ## Safety contract
//!
//! The snapshot trusts the same 64-bit fingerprint contract as the live
//! store: a restored entry is served for a key only when both
//! fingerprint halves match, exactly as a warm in-process entry would
//! be. Two guards keep a *wrong* warm hit out:
//!
//! * the `scope` header field is checked against the caller's expected
//!   topology fingerprint, so a snapshot from a server registered with
//!   different streams is rejected wholesale ([`SnapshotError::ScopeMismatch`]);
//! * the trailing checksum plus bounded decoding reject torn, truncated
//!   or bit-flipped files with a typed error — corruption can cost a
//!   cold start, never a panic and never a silently-wrong table.
//!
//! Restore never displaces live work: keys already resident in the
//! target store keep their entries, and the capacity cap is honored
//! (overflow entries are counted in [`SnapshotStats::skipped`], not
//! force-inserted).

use std::path::Path;
use std::sync::Arc;

use crate::ev::scoped::ScopedTables;

use super::{CacheKey, CacheSlot, CacheStore, Fnv1a};

/// File magic — first eight bytes of every snapshot.
const MAGIC: [u8; 8] = *b"FCSNAPSH";
/// Current format version.
const VERSION: u32 = 1;
/// Bytes before the first entry: magic + version + scope + count.
const HEADER_BYTES: usize = 8 + 4 + 8 + 8;
/// Trailing checksum width.
const CHECKSUM_BYTES: usize = 8;
/// Smallest possible entry: key (16 bytes) + flags (1 byte).
const MIN_ENTRY_BYTES: usize = 17;

/// Why a snapshot could not be written or restored. Every variant is a
/// recoverable "boot cold instead" signal — none of the restore paths
/// panic, and a failed restore leaves the target store untouched.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Reading or writing the file failed (missing file, permissions…).
    Io(std::io::Error),
    /// The file is too short to hold even the fixed-size envelope.
    Truncated,
    /// The file does not start with the snapshot magic — not a
    /// snapshot at all.
    BadMagic,
    /// The file's format version is one this build cannot read.
    UnsupportedVersion(u32),
    /// The trailing FNV-1a checksum does not match the contents — a
    /// torn write or bit rot.
    ChecksumMismatch,
    /// The snapshot was taken under a different topology fingerprint
    /// than the caller expects — its entries belong to other streams.
    ScopeMismatch {
        /// The scope the caller expected.
        expected: u64,
        /// The scope recorded in the file.
        found: u64,
    },
    /// The envelope checks passed but an entry payload is malformed
    /// (only reachable on a 64-bit checksum collision or a bug).
    Corrupt(&'static str),
    /// A per-stream slice carries an entry whose instance fingerprint
    /// does not belong to the target stream — the slice was cut from a
    /// different stream's working set and must not be installed.
    ForeignEntry {
        /// The instance fingerprint found in the slice.
        found: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot i/o error: {e}"),
            Self::Truncated => f.write_str("snapshot file truncated"),
            Self::BadMagic => f.write_str("not a cache snapshot (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            Self::ChecksumMismatch => f.write_str("snapshot checksum mismatch"),
            Self::ScopeMismatch { expected, found } => write!(
                f,
                "snapshot scope mismatch (expected {expected:#018x}, found {found:#018x})"
            ),
            Self::Corrupt(what) => write!(f, "snapshot payload corrupt: {what}"),
            Self::ForeignEntry { found } => write!(
                f,
                "snapshot slice carries a foreign entry (instance {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// What a snapshot or restore actually moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Entries written to, or inserted from, the snapshot.
    pub entries: usize,
    /// Total encoded size in bytes.
    pub bytes: usize,
    /// Restore only: entries present in the file but not inserted —
    /// their key was already resident, or the shard was at capacity.
    pub skipped: usize,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Collects the *built* slots of `store` (slots where neither engine
/// has finished building are dropped — there is nothing to keep warm)
/// whose keys satisfy `keep`, in each shard's FIFO insertion order.
/// Slot handles are cloned under the shard locks; encoding happens
/// outside them.
fn collect_built(
    store: &CacheStore,
    mut keep: impl FnMut(&CacheKey) -> bool,
) -> Vec<(CacheKey, Arc<CacheSlot>)> {
    let mut entries: Vec<(CacheKey, Arc<CacheSlot>)> = Vec::new();
    for shard in &store.shards {
        let s = shard.lock().expect("cache shard poisoned");
        for key in &s.order {
            if !keep(key) {
                continue;
            }
            if let Some(slot) = s.map.get(key) {
                if slot.tables.get().is_some() || slot.benefits.get().is_some() {
                    entries.push((*key, Arc::clone(slot)));
                }
            }
        }
    }
    entries
}

/// Encodes already-collected entries into the version-1 snapshot
/// format under the caller's fingerprint `scope`.
fn encode_entries(entries: &[(CacheKey, Arc<CacheSlot>)], scope: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    put_u64(&mut out, scope);
    put_u64(&mut out, entries.len() as u64);
    for (key, slot) in entries {
        put_u64(&mut out, key.instance);
        put_u64(&mut out, key.query);
        let tables = slot.tables.get();
        let benefits = slot.benefits.get();
        let mut flags = 0u8;
        if tables.is_some() {
            flags |= 1;
        }
        flags |= match benefits {
            None => 0,
            Some(Some(_)) => 1 << 1,
            Some(None) => 2 << 1,
        };
        out.push(flags);
        if let Some(tables) = tables {
            tables.encode_into(&mut out);
        }
        if let Some(Some(vs)) = benefits {
            put_u64(&mut out, vs.len() as u64);
            for &v in vs.iter() {
                put_u64(&mut out, v.to_bits());
            }
        }
    }
    let mut h = Fnv1a::new();
    h.write_bytes(&out);
    let digest = h.finish();
    put_u64(&mut out, digest);
    out
}

/// Serializes every built entry of `store` into the version-1 snapshot
/// format, under the caller's topology fingerprint `scope`. Entry
/// order follows each shard's FIFO insertion order, so identical
/// stores encode identical bytes.
pub fn snapshot_bytes(store: &CacheStore, scope: u64) -> (Vec<u8>, usize) {
    let entries = collect_built(store, |_| true);
    (encode_entries(&entries, scope), entries.len())
}

/// Serializes only the built entries that belong to one stream: those
/// whose `CacheKey` instance fingerprint is a member of
/// `fingerprints` (a session's active instance fingerprints — a
/// handful of values, scanned linearly). The slice rides the same
/// version-1 format as a full snapshot; callers distinguish it by the
/// per-stream `scope` they choose.
pub fn snapshot_stream_bytes(
    store: &CacheStore,
    scope: u64,
    fingerprints: &[u64],
) -> (Vec<u8>, usize) {
    let entries = collect_built(store, |key| fingerprints.contains(&key.instance));
    (encode_entries(&entries, scope), entries.len())
}

/// Number of built entries in `store` whose instance fingerprint is a
/// member of `fingerprints` — the warm-entry count a health report
/// attributes to one stream, without encoding anything.
pub fn stream_entry_count(store: &CacheStore, fingerprints: &[u64]) -> usize {
    collect_built(store, |key| fingerprints.contains(&key.instance)).len()
}

/// Writes a snapshot of `store` to `path` atomically: the bytes land
/// in a `.tmp` sibling first and are renamed into place, so a crash
/// mid-write leaves either the old snapshot or none — never a torn
/// file under the real name.
pub fn write_snapshot(
    store: &CacheStore,
    path: &Path,
    scope: u64,
) -> Result<SnapshotStats, SnapshotError> {
    let (bytes, entries) = snapshot_bytes(store, scope);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(SnapshotStats {
        entries,
        bytes: bytes.len(),
        skipped: 0,
    })
}

/// Bounded little-endian reader over the entry region.
struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(SnapshotError::Corrupt("entry truncated"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Corrupt("entry truncated"))?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(buf))
    }
}

/// Validates the envelope of `bytes` (length, magic, version,
/// checksum, scope) and decodes every entry into a fresh slot, without
/// touching any store.
fn decode_all(
    bytes: &[u8],
    expected_scope: u64,
) -> Result<Vec<(CacheKey, CacheSlot)>, SnapshotError> {
    if bytes.len() < HEADER_BYTES + CHECKSUM_BYTES {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let body_end = bytes.len() - CHECKSUM_BYTES;
    let mut h = Fnv1a::new();
    h.write_bytes(&bytes[..body_end]);
    let recorded = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if h.finish() != recorded {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let scope = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if scope != expected_scope {
        return Err(SnapshotError::ScopeMismatch {
            expected: expected_scope,
            found: scope,
        });
    }
    let count = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));

    let mut r = SnapReader {
        bytes: &bytes[..body_end],
        pos: HEADER_BYTES,
    };
    if count as usize > r.remaining() / MIN_ENTRY_BYTES {
        return Err(SnapshotError::Corrupt("entry count exceeds input"));
    }

    // Decode everything before touching the store, so a corrupt tail
    // (possible only past a checksum collision) cannot leave a
    // half-restored store.
    let mut decoded: Vec<(CacheKey, CacheSlot)> = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let key = CacheKey::new(r.u64()?, r.u64()?);
        let flags = r.u8()?;
        if flags & !0b111 != 0 || flags >> 1 > 2 {
            return Err(SnapshotError::Corrupt("unknown entry flags"));
        }
        let slot = CacheSlot::default();
        if flags & 1 != 0 {
            let (tables, consumed) =
                ScopedTables::decode_from(&r.bytes[r.pos..]).map_err(SnapshotError::Corrupt)?;
            r.pos += consumed;
            slot.tables
                .set(Arc::new(tables))
                .unwrap_or_else(|_| unreachable!("fresh slot"));
        }
        match flags >> 1 {
            0 => {}
            1 => {
                let len = r.u64()? as usize;
                if len > r.remaining() / 8 {
                    return Err(SnapshotError::Corrupt("benefits length exceeds input"));
                }
                let mut vs = Vec::with_capacity(len);
                for _ in 0..len {
                    vs.push(f64::from_bits(r.u64()?));
                }
                slot.benefits
                    .set(Some(Arc::new(vs)))
                    .unwrap_or_else(|_| unreachable!("fresh slot"));
            }
            _ => {
                slot.benefits
                    .set(None)
                    .unwrap_or_else(|_| unreachable!("fresh slot"));
            }
        }
        decoded.push((key, slot));
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Corrupt("trailing bytes after entries"));
    }
    Ok(decoded)
}

/// Inserts fully-decoded entries into `store`, never displacing live
/// work: existing keys win, and the capacity cap is honored instead of
/// evicting residents. Returns `(inserted, skipped)`.
fn install(store: &CacheStore, decoded: Vec<(CacheKey, CacheSlot)>) -> (usize, usize) {
    let mut inserted = 0usize;
    let mut skipped = 0usize;
    for (key, slot) in decoded {
        let mut shard = store.shard_of(key).lock().expect("cache shard poisoned");
        if shard.map.contains_key(&key) || shard.map.len() >= store.shard_capacity {
            skipped += 1;
            continue;
        }
        shard.map.insert(key, Arc::new(slot));
        shard.order.push_back(key);
        inserted += 1;
    }
    (inserted, skipped)
}

/// Decodes `bytes` and inserts every entry whose key is not already
/// resident into `store`, pre-seeding the slot `OnceLock`s so the
/// first lookup of a restored key is a warm hit. `expected_scope` must
/// match the scope recorded in the file.
///
/// On any error the store is left exactly as it was — entries are
/// fully decoded and validated before the first insertion.
pub fn restore_bytes(
    store: &CacheStore,
    bytes: &[u8],
    expected_scope: u64,
) -> Result<SnapshotStats, SnapshotError> {
    let decoded = decode_all(bytes, expected_scope)?;
    let (inserted, skipped) = install(store, decoded);
    Ok(SnapshotStats {
        entries: inserted,
        bytes: bytes.len(),
        skipped,
    })
}

/// [`restore_bytes`] for a per-stream slice: additionally refuses any
/// entry whose instance fingerprint is not a member of `fingerprints`
/// ([`SnapshotError::ForeignEntry`]) — a slice cut from a different
/// stream must never seed this stream's warm set, even when the scope
/// fingerprints happen to collide. All-or-nothing like the full
/// restore: the foreign check runs before the first insertion.
pub fn restore_stream_bytes(
    store: &CacheStore,
    bytes: &[u8],
    expected_scope: u64,
    fingerprints: &[u64],
) -> Result<SnapshotStats, SnapshotError> {
    let decoded = decode_all(bytes, expected_scope)?;
    for (key, _) in &decoded {
        if !fingerprints.contains(&key.instance) {
            return Err(SnapshotError::ForeignEntry {
                found: key.instance,
            });
        }
    }
    let (inserted, skipped) = install(store, decoded);
    Ok(SnapshotStats {
        entries: inserted,
        bytes: bytes.len(),
        skipped,
    })
}

/// [`restore_bytes`] over a file. A missing or unreadable file surfaces
/// as [`SnapshotError::Io`] — callers treat every error as "boot cold".
pub fn restore_snapshot(
    store: &CacheStore,
    path: &Path,
    expected_scope: u64,
) -> Result<SnapshotStats, SnapshotError> {
    let bytes = std::fs::read(path)?;
    restore_bytes(store, &bytes, expected_scope)
}

#[cfg(test)]
mod tests {
    use super::super::{fingerprint_instance, CacheStore};
    use super::*;
    use crate::instance::Instance;
    use fc_claims::{ClaimSet, Direction, DupQuery, LinearClaim};
    use fc_uncertain::DiscreteDist;

    fn instance() -> Instance {
        Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 4.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0, 3.0]).unwrap(),
                DiscreteDist::uniform_over(&[0.0, 6.0]).unwrap(),
            ],
            vec![2.0, 2.0, 3.0],
            vec![1, 1, 2],
        )
        .unwrap()
    }

    fn query() -> DupQuery {
        DupQuery::new(
            ClaimSet::new(
                LinearClaim::window_sum(0, 2).unwrap(),
                vec![
                    LinearClaim::window_sum(0, 2).unwrap(),
                    LinearClaim::window_sum(1, 2).unwrap(),
                ],
                vec![0.5, 0.5],
                Direction::HigherIsStronger,
            )
            .unwrap(),
            5.0,
        )
    }

    /// A store with one fully-built entry (tables + affine benefits)
    /// and one benefits-only non-affine entry.
    fn warm_store() -> (CacheStore, CacheKey, CacheKey) {
        // One shard: both keys are guaranteed resident together and
        // encode in strict FIFO order.
        let store = CacheStore::with_shards(8, 1);
        let inst = instance();
        let q = query();
        let k1 = CacheKey::new(fingerprint_instance(&inst), 11);
        let k2 = CacheKey::new(fingerprint_instance(&inst), 22);
        store.tables(k1, || ScopedTables::build(&inst, &q));
        store.benefits(k1, || Some(vec![1.5, -2.25, 0.0]));
        store.benefits(k2, || None);
        (store, k1, k2)
    }

    #[test]
    fn snapshot_round_trip_boots_warm() {
        let (store, k1, k2) = warm_store();
        let (bytes, entries) = snapshot_bytes(&store, 0xABCD);
        assert_eq!(entries, 2);

        let fresh = CacheStore::with_shards(8, 1);
        let stats = restore_bytes(&fresh, &bytes, 0xABCD).expect("restore");
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.bytes, bytes.len());

        // Every restored lookup is a warm hit: the builders must never run.
        let tables = fresh.tables(k1, || panic!("restored tables must be warm"));
        let benefits = fresh.benefits(k1, || panic!("restored benefits must be warm"));
        assert_eq!(
            benefits.as_deref().map(|v| v.as_slice()),
            Some(&[1.5, -2.25, 0.0][..])
        );
        assert!(fresh
            .benefits(k2, || panic!("restored None must be warm"))
            .is_none());
        let s = fresh.stats();
        assert_eq!(s.misses, 0, "a restored store serves with zero misses");
        assert_eq!(s.hits, 3);
        assert_eq!(s.scoped_builds, 0);

        // The restored tables are byte-identical to the originals.
        let mut original = Vec::new();
        store
            .tables(k1, || panic!("source must stay warm"))
            .encode_into(&mut original);
        let mut restored = Vec::new();
        tables.encode_into(&mut restored);
        assert_eq!(original, restored);
    }

    #[test]
    fn snapshot_file_round_trip_is_atomic() {
        let (store, k1, _) = warm_store();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fc-snapshot-test-{}.fcsnap", std::process::id()));
        let written = write_snapshot(&store, &path, 7).expect("write");
        assert!(written.entries == 2 && written.bytes > 0);
        assert!(
            !path.with_extension("fcsnap.tmp").exists(),
            "tmp file renamed away"
        );

        let fresh = CacheStore::with_shards(8, 1);
        let stats = restore_snapshot(&fresh, &path, 7).expect("restore");
        assert_eq!(stats.entries, 2);
        fresh.tables(k1, || panic!("file-restored tables must be warm"));
        std::fs::remove_file(&path).ok();

        // A missing file is a typed Io error, not a panic.
        assert!(matches!(
            restore_snapshot(&fresh, &path, 7),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn restore_rejects_corruption_with_typed_errors() {
        let (store, _, _) = warm_store();
        let (bytes, _) = snapshot_bytes(&store, 99);

        let check = |mangled: Vec<u8>, expect: fn(&SnapshotError) -> bool, what: &str| {
            let fresh = CacheStore::with_shards(8, 1);
            let err = restore_bytes(&fresh, &mangled, 99).expect_err(what);
            assert!(expect(&err), "{what}: got {err:?}");
            assert!(fresh.is_empty(), "{what}: failed restore must not insert");
        };

        check(
            bytes[..HEADER_BYTES].to_vec(),
            |e| matches!(e, SnapshotError::Truncated),
            "header-only file",
        );
        check(
            Vec::new(),
            |e| matches!(e, SnapshotError::Truncated),
            "empty file",
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        check(
            bad_magic,
            |e| matches!(e, SnapshotError::BadMagic),
            "bad magic",
        );
        let mut bad_version = bytes.clone();
        bad_version[8] = 0xEE;
        check(
            bad_version,
            |e| matches!(e, SnapshotError::UnsupportedVersion(_)),
            "future version",
        );
        let mut flipped = bytes.clone();
        flipped[HEADER_BYTES + 3] ^= 0x40;
        check(
            flipped,
            |e| matches!(e, SnapshotError::ChecksumMismatch),
            "bit flip in entries",
        );
        let mut dropped_tail = bytes.clone();
        dropped_tail.pop();
        check(
            dropped_tail,
            |e| matches!(e, SnapshotError::ChecksumMismatch),
            "last byte lost",
        );

        // Scope mismatch: intact file, wrong topology.
        let fresh = CacheStore::with_shards(8, 1);
        assert!(matches!(
            restore_bytes(&fresh, &bytes, 98),
            Err(SnapshotError::ScopeMismatch {
                expected: 98,
                found: 99
            })
        ));
        assert!(fresh.is_empty());
    }

    /// The per-stream scope the slice tests cut and restore under.
    const SLICE_SCOPE: u64 = 0x517C_E5C0;

    /// A second dataset with a distinct instance fingerprint, standing
    /// in for "some other stream" in the slice tests.
    fn other_instance() -> Instance {
        Instance::new(
            vec![
                DiscreteDist::uniform_over(&[2.0, 8.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0, 9.0]).unwrap(),
                DiscreteDist::uniform_over(&[3.0, 5.0]).unwrap(),
            ],
            vec![5.0, 5.0, 4.0],
            vec![2, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn stream_slice_round_trips_only_the_streams_entries() {
        let (store, k1, k2) = warm_store();
        // A foreign stream's entry shares the store but not the slice.
        let other = other_instance();
        let foreign = CacheKey::new(fingerprint_instance(&other), 33);
        store.benefits(foreign, || Some(vec![9.0]));
        assert_ne!(k1.instance, foreign.instance, "fixtures must differ");

        let (slice, entries) = snapshot_stream_bytes(&store, SLICE_SCOPE, &[k1.instance]);
        assert_eq!(entries, 2, "only the stream's two entries are cut");

        let fresh = CacheStore::with_shards(8, 1);
        let stats =
            restore_stream_bytes(&fresh, &slice, SLICE_SCOPE, &[k1.instance]).expect("restore");
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.skipped, 0);
        // Every restored lookup is warm; the foreign key never landed.
        fresh.tables(k1, || panic!("sliced tables must be warm"));
        let benefits = fresh.benefits(k1, || panic!("sliced benefits must be warm"));
        assert_eq!(
            benefits.as_deref().map(|v| v.as_slice()),
            Some(&[1.5, -2.25, 0.0][..])
        );
        assert!(fresh
            .benefits(k2, || panic!("sliced None must be warm"))
            .is_none());
        assert_eq!(fresh.len(), 2, "the foreign entry was not exported");
        assert_eq!(fresh.stats().misses, 0);

        // The slice's tables are byte-identical to the source's.
        let mut original = Vec::new();
        store
            .tables(k1, || panic!("source must stay warm"))
            .encode_into(&mut original);
        let mut restored = Vec::new();
        fresh
            .tables(k1, || panic!("restored must stay warm"))
            .encode_into(&mut restored);
        assert_eq!(original, restored);
    }

    #[test]
    fn stream_slice_of_a_foreign_stream_is_refused() {
        let (store, k1, _) = warm_store();
        let (slice, _) = snapshot_stream_bytes(&store, SLICE_SCOPE, &[k1.instance]);

        // Same scope, wrong stream: the fingerprint gate fires before
        // anything is installed.
        let other = fingerprint_instance(&other_instance());
        let fresh = CacheStore::with_shards(8, 1);
        let err = restore_stream_bytes(&fresh, &slice, SLICE_SCOPE, &[other])
            .expect_err("foreign slice must be refused");
        assert!(
            matches!(err, SnapshotError::ForeignEntry { found } if found == k1.instance),
            "got {err:?}"
        );
        assert!(fresh.is_empty(), "refused slice must not insert anything");

        // Different per-stream scope: refused even earlier, wholesale.
        let fresh = CacheStore::with_shards(8, 1);
        assert!(matches!(
            restore_stream_bytes(&fresh, &slice, 0xBEEF, &[k1.instance]),
            Err(SnapshotError::ScopeMismatch { .. })
        ));
        assert!(fresh.is_empty());
    }

    #[test]
    fn stream_slice_rejects_corruption_with_zero_partial_installs() {
        let (store, k1, _) = warm_store();
        let (slice, _) = snapshot_stream_bytes(&store, 77, &[k1.instance]);

        let check = |mangled: Vec<u8>, expect: fn(&SnapshotError) -> bool, what: &str| {
            let fresh = CacheStore::with_shards(8, 1);
            let err = restore_stream_bytes(&fresh, &mangled, 77, &[k1.instance]).expect_err(what);
            assert!(expect(&err), "{what}: got {err:?}");
            assert!(fresh.is_empty(), "{what}: failed restore must not insert");
        };

        let mut flipped = slice.clone();
        flipped[HEADER_BYTES + 5] ^= 0x08;
        check(
            flipped,
            |e| matches!(e, SnapshotError::ChecksumMismatch),
            "bit flip",
        );
        let mut truncated = slice.clone();
        truncated.truncate(slice.len() - 3);
        check(
            truncated,
            |e| matches!(e, SnapshotError::ChecksumMismatch),
            "truncation",
        );
        check(
            slice[..HEADER_BYTES - 2].to_vec(),
            |e| matches!(e, SnapshotError::Truncated),
            "header torn",
        );
    }

    #[test]
    fn restore_never_displaces_live_entries() {
        let (store, k1, _) = warm_store();
        let (bytes, _) = snapshot_bytes(&store, 5);

        // k1 already resident in the target: the live slot wins.
        let target = CacheStore::with_shards(8, 1);
        let inst = instance();
        let q = query();
        let live = target.tables(k1, || ScopedTables::build(&inst, &q));
        let stats = restore_bytes(&target, &bytes, 5).expect("restore");
        assert_eq!(stats.entries, 1, "only the non-resident key lands");
        assert_eq!(stats.skipped, 1);
        let after = target.tables(k1, || panic!("live entry must survive restore"));
        assert!(Arc::ptr_eq(&live, &after), "resident slot untouched");

        // Capacity cap honored: a one-entry store takes one entry.
        let tiny = CacheStore::with_shards(1, 1);
        let stats = restore_bytes(&tiny, &bytes, 5).expect("restore");
        assert_eq!(stats.entries + stats.skipped, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(tiny.len(), 1);
    }
}
