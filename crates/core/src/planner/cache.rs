//! Fingerprint-keyed persistence for engine prefix work.
//!
//! An [`EngineCache`](super::EngineCache) lives for one call chain: a
//! budget sweep or an objective batch over one [`Problem`](super::Problem).
//! Serving workloads, however, issue *sessions* of requests over the
//! same dataset — a fact-checker sweeps measures and budgets over one
//! table, then comes back tomorrow. The [`CacheStore`] makes the
//! expensive prefix work (the scoped Theorem 3.8 tables, the Lemma 3.1
//! modular benefits) outlive the call chain:
//!
//! * entries are keyed by a [`CacheKey`] — a pair of 64-bit FNV-1a
//!   fingerprints, one over the **instance contents** (distributions,
//!   current values, costs) and one over the **query identity**
//!   (measure, θ, claim family — supplied by the caller, who knows the
//!   concrete query type);
//! * the store is sharded (`Mutex` per shard) so concurrent workers
//!   contend only per shard, and each entry's engines are built at most
//!   once (`OnceLock` serializes racing builders);
//! * a capacity cap evicts whole entries FIFO, bounding memory on
//!   long-running servers;
//! * [`CacheStore::stats`] reports hits, misses, evictions, and the
//!   number of scoped-table builds — a warm store serves repeat
//!   sessions with **zero** rebuild evaluations.
//!
//! ## Fingerprint caveats
//!
//! Fingerprints are 64-bit content hashes, not proofs of identity: a
//! collision (astronomically unlikely, but possible) would serve the
//! wrong tables *silently*. The query half of the key is the caller's
//! contract — it must uniquely identify everything the engines depend
//! on (measure, θ, claim weights, discretization). The façade derives
//! it from the session's measure, θ, and claim-set contents; callers
//! wiring [`CacheStore`] to raw [`Problem`](super::Problem)s must do
//! the same or skip the store. Dimension mismatches are caught
//! ([`ScopedEv::with_tables`](crate::ev::scoped::ScopedEv::with_tables)
//! panics), value-level mismatches are not.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::ev::scoped::ScopedTables;
use crate::instance::{GaussianInstance, Instance};

pub mod snapshot;

/// Incremental FNV-1a hasher over 64 bits — tiny, dependency-free, and
/// stable across platforms and runs (unlike `std`'s randomized
/// `DefaultHasher`), which is what a persistent cache key needs.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64`.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs a `usize`.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Absorbs an `f64` by bit pattern (`-0.0 ≠ 0.0`, NaNs by payload —
    /// bitwise identity is exactly the contract engine reuse needs).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Absorbs a slice of `f64`s, length-prefixed.
    pub fn write_f64s(&mut self, vs: &[f64]) -> &mut Self {
        self.write_usize(vs.len());
        for &v in vs {
            self.write_f64(v);
        }
        self
    }

    /// Absorbs a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a fingerprint of a discrete instance's full contents:
/// marginals (values and probabilities), current values, and costs.
pub fn fingerprint_instance(instance: &Instance) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("discrete");
    h.write_usize(instance.len());
    for i in 0..instance.len() {
        let d = instance.dist(i);
        h.write_f64s(d.values());
        h.write_f64s(d.probs());
    }
    h.write_f64s(instance.current());
    h.write_usize(instance.costs().len());
    for &c in instance.costs() {
        h.write_u64(c);
    }
    h.finish()
}

/// FNV-1a fingerprint of a Gaussian instance's full contents: means,
/// covariance, current values, and costs.
pub fn fingerprint_gaussian(instance: &GaussianInstance) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("gaussian");
    let n = instance.len();
    h.write_usize(n);
    h.write_f64s(instance.mvn().mean());
    for i in 0..n {
        for j in i..n {
            h.write_f64(instance.mvn().cov().get(i, j));
        }
    }
    h.write_f64s(instance.current());
    h.write_usize(instance.costs().len());
    for &c in instance.costs() {
        h.write_u64(c);
    }
    h.finish()
}

/// A [`CacheStore`] entry key: (instance fingerprint, query
/// fingerprint). Engines cached under a key are valid for *any* goal
/// and budget — scoped tables and modular benefits depend only on the
/// instance and the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of the instance contents ([`fingerprint_instance`] /
    /// [`fingerprint_gaussian`]).
    pub instance: u64,
    /// Fingerprint of the query identity (measure, θ, claim family —
    /// caller-supplied; see the module docs for the contract).
    pub query: u64,
}

impl CacheKey {
    /// Assembles a key from the two fingerprint halves.
    pub fn new(instance: u64, query: u64) -> Self {
        Self { instance, query }
    }
}

/// One cached entry: lazily built engines for an (instance, query)
/// pair. `OnceLock` per engine kind — concurrent workers block on the
/// first builder instead of duplicating the work.
#[derive(Default)]
struct CacheSlot {
    tables: OnceLock<Arc<ScopedTables>>,
    benefits: OnceLock<Option<Arc<Vec<f64>>>>,
}

/// One lock's worth of the store.
#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Arc<CacheSlot>>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// Counters reported by [`CacheStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Engine lookups served from an already-built entry.
    pub hits: u64,
    /// Engine lookups that had to build (first touch of a key, or
    /// re-touch after eviction).
    pub misses: u64,
    /// Entries evicted by the capacity cap.
    pub evictions: u64,
    /// Scoped-table builds performed through the store.
    pub scoped_builds: u64,
    /// Query-term evaluations spent in those builds — the "rebuild
    /// evals" a warm store keeps at zero.
    pub scoped_build_evals: u64,
    /// Entries dropped by [`CacheStore::invalidate_instance`] (a
    /// cleaning step re-fingerprinting an instance).
    pub invalidations: u64,
    /// Entries moved intact by [`CacheStore::rekey`] (a cleaning step
    /// whose touched objects were provably out of every claim scope).
    pub rekeys: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A persistent, thread-safe store of engine prefix work, keyed by
/// [`CacheKey`]. See the module docs for semantics and caveats.
///
/// Share one `Arc<CacheStore>` across sessions (and across the parallel
/// executor's workers) so repeated requests over the same dataset skip
/// the scoped-EV build entirely.
pub struct CacheStore {
    shards: Vec<Mutex<Shard>>,
    /// Max resident entries per shard.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    scoped_builds: AtomicU64,
    scoped_build_evals: AtomicU64,
    invalidations: AtomicU64,
    rekeys: AtomicU64,
}

impl CacheStore {
    /// Default shard count — enough to keep a worker pool from
    /// serializing on one lock, small enough to stay cheap.
    const DEFAULT_SHARDS: usize = 8;

    /// A store holding at most `capacity` entries (rounded up to a
    /// multiple of the shard count; minimum one entry per shard). The
    /// shard count never exceeds `capacity`, so a small memory bound is
    /// honored — `new(1)` really holds one entry, not one per shard.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, Self::DEFAULT_SHARDS.min(capacity.max(1)))
    }

    /// A store with an explicit shard count (use `1` for strict FIFO
    /// eviction across all entries — with more shards, both the cap and
    /// FIFO order are per shard, so key skew can evict one shard's
    /// entries while others sit empty).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity = capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            scoped_builds: AtomicU64::new(0),
            scoped_build_evals: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            rekeys: AtomicU64::new(0),
        }
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Resident entries right now.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            s.map.clear();
            s.order.clear();
        }
    }

    /// Surgically drops every entry whose key's instance half is
    /// `instance_fingerprint`, returning how many were dropped. This is
    /// the incremental-invalidation hook for long-lived claim streams:
    /// after a cleaning step re-fingerprints an instance, its stale
    /// entries (one per measure/query) are removed while every *other*
    /// instance's entries stay warm — no flush, no cold restart for
    /// unrelated sessions sharing the store.
    pub fn invalidate_instance(&self, instance_fingerprint: u64) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            let before = s.map.len();
            s.map.retain(|key, _| key.instance != instance_fingerprint);
            dropped += before - s.map.len();
            s.order.retain(|key| key.instance != instance_fingerprint);
        }
        self.invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Moves the entry under `old` to `new` without touching its built
    /// engines, returning how many entries moved (0 or 1).
    ///
    /// This is the *delta-resolve* hook: when a cleaning step touches
    /// only objects outside every claim scope, the instance fingerprint
    /// changes but every scoped table and benefit vector stays
    /// value-identical (tables depend only on the dists of their scope
    /// objects; benefits are zero off-scope), so the warm entry can be
    /// carried to the new key instead of rebuilt from scratch.
    ///
    /// The caller owns the safety argument — `rekey` just moves the
    /// slot. If an entry already lives under `new`, the stale slot is
    /// dropped in its favor.
    pub fn rekey(&self, old: CacheKey, new: CacheKey) -> usize {
        if old == new {
            return 0;
        }
        // Never hold both shard locks: remove under the old key's lock,
        // then insert under the new key's.
        let slot = {
            let mut shard = self.shard_of(old).lock().expect("cache shard poisoned");
            match shard.map.remove(&old) {
                Some(slot) => {
                    shard.order.retain(|key| *key != old);
                    slot
                }
                None => return 0,
            }
        };
        let mut shard = self.shard_of(new).lock().expect("cache shard poisoned");
        if shard.map.contains_key(&new) {
            return 0;
        }
        while shard.map.len() >= self.shard_capacity {
            if let Some(evicted) = shard.order.pop_front() {
                shard.map.remove(&evicted);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
        shard.map.insert(new, slot);
        shard.order.push_back(new);
        self.rekeys.fetch_add(1, Ordering::Relaxed);
        1
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            scoped_builds: self.scoped_builds.load(Ordering::Relaxed),
            scoped_build_evals: self.scoped_build_evals.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            rekeys: self.rekeys.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    fn shard_of(&self, key: CacheKey) -> &Mutex<Shard> {
        let h = key.instance ^ key.query.rotate_left(32);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// The slot for `key`, inserting (and possibly evicting) under the
    /// shard lock. Engine builds happen *outside* this lock.
    fn slot(&self, key: CacheKey) -> Arc<CacheSlot> {
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        if let Some(slot) = shard.map.get(&key) {
            return Arc::clone(slot);
        }
        while shard.map.len() >= self.shard_capacity {
            if let Some(old) = shard.order.pop_front() {
                shard.map.remove(&old);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
        let slot = Arc::new(CacheSlot::default());
        shard.map.insert(key, Arc::clone(&slot));
        shard.order.push_back(key);
        slot
    }

    /// The scoped tables for `key`, building them with `build` on the
    /// first touch. Concurrent callers for the same key block on one
    /// build. `build` must construct tables for exactly the
    /// (instance, query) pair the key fingerprints.
    pub fn tables(&self, key: CacheKey, build: impl FnOnce() -> ScopedTables) -> Arc<ScopedTables> {
        self.tables_tracked(key, build).0
    }

    /// [`CacheStore::tables`], additionally reporting whether the
    /// lookup was served warm (`true` — a hit) or had to build
    /// (`false` — a miss). The engine cache feeds this into
    /// [`PlanDiagnostics`](super::PlanDiagnostics) so plans expose
    /// their warm/cold provenance.
    pub fn tables_tracked(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> ScopedTables,
    ) -> (Arc<ScopedTables>, bool) {
        let slot = self.slot(key);
        if let Some(tables) = slot.tables.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(tables), true);
        }
        let mut built = false;
        let tables = slot.tables.get_or_init(|| {
            built = true;
            Arc::new(build())
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.scoped_builds.fetch_add(1, Ordering::Relaxed);
            self.scoped_build_evals
                .fetch_add(tables.build_evals(), Ordering::Relaxed);
        } else {
            // Lost the init race — another worker built while we waited.
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (Arc::clone(tables), !built)
    }

    /// The modular benefits for `key` (`None` when the query is not
    /// affine), computing them with `build` on the first touch.
    pub fn benefits(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Option<Vec<f64>>,
    ) -> Option<Arc<Vec<f64>>> {
        self.benefits_tracked(key, build).0
    }

    /// [`CacheStore::benefits`], additionally reporting whether the
    /// lookup was served warm (like [`CacheStore::tables_tracked`]).
    pub fn benefits_tracked(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Option<Vec<f64>>,
    ) -> (Option<Arc<Vec<f64>>>, bool) {
        let slot = self.slot(key);
        if let Some(benefits) = slot.benefits.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (benefits.clone(), true);
        }
        let mut built = false;
        let benefits = slot.benefits.get_or_init(|| {
            built = true;
            build().map(Arc::new)
        });
        self.record_lookup(built);
        (benefits.clone(), !built)
    }

    fn record_lookup(&self, built: bool) {
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for CacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheStore")
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::{ClaimSet, Direction, DupQuery, LinearClaim};
    use fc_uncertain::DiscreteDist;

    fn instance(shift: f64) -> Instance {
        Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0 + shift, 4.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0, 3.0]).unwrap(),
                DiscreteDist::uniform_over(&[0.0, 6.0]).unwrap(),
            ],
            vec![2.0, 2.0, 3.0],
            vec![1, 1, 2],
        )
        .unwrap()
    }

    fn query() -> DupQuery {
        DupQuery::new(
            ClaimSet::new(
                LinearClaim::window_sum(0, 2).unwrap(),
                vec![
                    LinearClaim::window_sum(0, 2).unwrap(),
                    LinearClaim::window_sum(1, 2).unwrap(),
                ],
                vec![0.5, 0.5],
                Direction::HigherIsStronger,
            )
            .unwrap(),
            5.0,
        )
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let a = fingerprint_instance(&instance(0.0));
        let b = fingerprint_instance(&instance(0.0));
        let c = fingerprint_instance(&instance(0.25));
        assert_eq!(a, b, "identical contents hash identically");
        assert_ne!(a, c, "a single value change must change the hash");
    }

    #[test]
    fn fingerprint_gaussian_is_content_sensitive() {
        let g1 = GaussianInstance::centered_independent(vec![0.0; 3], &[1.0, 2.0, 3.0], vec![1; 3])
            .unwrap();
        let g2 = GaussianInstance::centered_independent(vec![0.0; 3], &[1.0, 2.0, 3.5], vec![1; 3])
            .unwrap();
        assert_eq!(fingerprint_gaussian(&g1), fingerprint_gaussian(&g1.clone()));
        assert_ne!(fingerprint_gaussian(&g1), fingerprint_gaussian(&g2));
    }

    #[test]
    fn store_serves_second_lookup_from_cache() {
        let store = CacheStore::new(8);
        let inst = instance(0.0);
        let q = query();
        let key = CacheKey::new(fingerprint_instance(&inst), 42);
        let t1 = store.tables(key, || ScopedTables::build(&inst, &q));
        let t2 = store.tables(key, || panic!("second lookup must not rebuild"));
        assert!(Arc::ptr_eq(&t1, &t2));
        let stats = store.stats();
        assert_eq!(stats.scoped_builds, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!(stats.scoped_build_evals > 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn store_evicts_fifo_at_capacity() {
        let store = CacheStore::with_shards(2, 1);
        let inst = instance(0.0);
        let q = query();
        for i in 0..3u64 {
            store.tables(CacheKey::new(i, 0), || ScopedTables::build(&inst, &q));
        }
        let stats = store.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // The evicted (oldest) key rebuilds; the resident ones hit.
        store.tables(CacheKey::new(2, 0), || {
            panic!("resident key must not rebuild")
        });
        store.tables(CacheKey::new(0, 0), || ScopedTables::build(&inst, &q));
        assert_eq!(store.stats().scoped_builds, 4);
    }

    #[test]
    fn concurrent_lookups_build_once() {
        let store = Arc::new(CacheStore::new(8));
        let inst = instance(0.0);
        let q = query();
        let key = CacheKey::new(fingerprint_instance(&inst), 7);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| store.tables(key, || ScopedTables::build(&inst, &q)));
            }
        });
        assert_eq!(store.stats().scoped_builds, 1, "OnceLock dedups builders");
    }

    #[test]
    fn invalidate_instance_is_surgical() {
        let store = CacheStore::new(16);
        let inst = instance(0.0);
        let q = query();
        // Two measures of instance A, one of instance B.
        let fp_a = fingerprint_instance(&inst);
        let fp_b = fp_a ^ 1;
        for key in [
            CacheKey::new(fp_a, 1),
            CacheKey::new(fp_a, 2),
            CacheKey::new(fp_b, 1),
        ] {
            store.tables(key, || ScopedTables::build(&inst, &q));
        }
        assert_eq!(store.len(), 3);
        let dropped = store.invalidate_instance(fp_a);
        assert_eq!(dropped, 2, "both of A's measures go");
        assert_eq!(store.stats().invalidations, 2);
        // B's entry is untouched and still warm.
        store.tables(CacheKey::new(fp_b, 1), || {
            panic!("unrelated instance must stay warm")
        });
        // A's keys rebuild (no stale serve, no panic on re-touch).
        store.tables(CacheKey::new(fp_a, 1), || ScopedTables::build(&inst, &q));
        assert_eq!(store.len(), 2);
        // Invalidating an absent fingerprint is a no-op.
        assert_eq!(store.invalidate_instance(0xDEAD), 0);
    }

    #[test]
    fn rekey_carries_built_engines_without_rebuild() {
        let store = CacheStore::new(16);
        let inst = instance(0.0);
        let q = query();
        let fp_old = fingerprint_instance(&inst);
        let fp_new = fp_old ^ 0xBEEF;
        let old = CacheKey::new(fp_old, 1);
        let new = CacheKey::new(fp_new, 1);
        let built = store.tables(old, || ScopedTables::build(&inst, &q));
        assert_eq!(store.rekey(old, new), 1);
        assert_eq!(store.stats().rekeys, 1);
        // The moved entry serves the new key warm, and the old key is gone.
        let carried = store.tables(new, || panic!("rekeyed entry must stay warm"));
        assert!(Arc::ptr_eq(&built, &carried));
        assert_eq!(store.len(), 1);
        store.tables(old, || ScopedTables::build(&inst, &q));
        assert_eq!(store.stats().scoped_builds, 2, "old key went cold");
        // Absent source and identity moves are no-ops.
        assert_eq!(store.rekey(CacheKey::new(0xDEAD, 9), new), 0);
        assert_eq!(store.rekey(new, new), 0);
        // Occupied target: the stale source entry is dropped, not swapped.
        assert_eq!(store.rekey(old, new), 0);
        let kept = store.tables(new, || panic!("occupied target must be kept"));
        assert!(Arc::ptr_eq(&built, &kept));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn tracked_lookups_report_warmth() {
        let store = CacheStore::new(8);
        let inst = instance(0.0);
        let q = query();
        let key = CacheKey::new(fingerprint_instance(&inst), 3);
        let (_, warm) = store.tables_tracked(key, || ScopedTables::build(&inst, &q));
        assert!(!warm, "first touch is a miss");
        let (_, warm) = store.tables_tracked(key, || panic!("must not rebuild"));
        assert!(warm, "second touch is a hit");
        let (_, warm) = store.benefits_tracked(key, || Some(vec![1.0]));
        assert!(!warm);
        let (_, warm) = store.benefits_tracked(key, || panic!("must not recompute"));
        assert!(warm);
    }

    #[test]
    fn benefits_cached_including_non_affine_none() {
        let store = CacheStore::new(8);
        let key = CacheKey::new(1, 2);
        let b1 = store.benefits(key, || Some(vec![1.0, 2.0]));
        let b2 = store.benefits(key, || panic!("must not recompute"));
        assert_eq!(b1.as_deref(), Some(&vec![1.0, 2.0]));
        assert!(Arc::ptr_eq(&b1.unwrap(), &b2.unwrap()));
        // `None` (non-affine) is a cacheable answer too.
        let key2 = CacheKey::new(3, 4);
        assert!(store.benefits(key2, || None).is_none());
        assert!(store
            .benefits(key2, || panic!("must not recompute"))
            .is_none());
    }
}
