//! The sharded parallel batch executor.
//!
//! The paper's workloads are batch-shaped: §6 runs 14 algorithms across
//! budget grids, and an assisted fact-checking pipeline issues many
//! (measure, goal, budget) requests over one dataset concurrently.
//! Lowered [`Problem`]s are independent of each other — engines are
//! per-problem, so a batch parallelizes without locking. This module
//! shards that work across the persistent [`WorkerPool`] (std threads
//! fed by an mpsc job queue; no extra dependencies) and merges the
//! [`Plan`]s back **in input order**:
//!
//! * [`solve_batch`] — heterogeneous jobs (problem × strategy ×
//!   budget). Jobs sharing a problem form one work unit so they share
//!   an [`EngineCache`] exactly as the sequential path does.
//! * [`sweep`] — one problem across a budget sweep. Budget points are
//!   dealt to workers dynamically; the scoped-table prefix work is
//!   shared across workers through a [`CacheStore`] (the caller's
//!   persistent store when a [`CacheKey`] is provided, otherwise an
//!   ephemeral one private to the call).
//!
//! **Determinism:** every solver is a pure function of (problem,
//! budget, engine tables), and the tables are identical whether built
//! fresh, shared, or served from a store. Plans produced under any
//! [`Parallelism`] mode are byte-identical to the sequential ones, and
//! error reporting picks the failing job with the smallest input index
//! — exactly what a sequential fold would surface.
//!
//! **Admission control:** queueing pool jobs for a trivial batch costs
//! more than solving it. Work units whose estimated engine evaluations
//! ([`Problem::estimated_engine_evals`]) fall below
//! [`ExecOptions::inline_threshold`] run on the caller thread; only
//! meaty units go to the pool, and the pool is skipped entirely when
//! nothing clears the bar.
//!
//! **Worker provenance:** both entry points degrade to inline
//! sequential execution when called *from* a pool worker thread
//! ([`WorkerPool::on_worker_thread`]) — a worker parked waiting on its
//! own pool's queue would deadlock it. Plans are identical either way.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use super::cache::{CacheKey, CacheStore};
use super::pool::WorkerPool;
use super::{EngineCache, Plan, Problem, Solver, SolverRegistry};
use crate::budget::Budget;
use crate::{CoreError, Result};

/// A cooperative cancellation flag shared between a request's owner and
/// the runners executing it. Cancellation is a *budget point* — runners
/// check the token between work units (batch units, sweep budget
/// points), never mid-solve — so cancelling a 50-point sweep stops
/// after the point currently being solved, and cancelling queued work
/// stops it before any engine is built.
///
/// Cloning shares the flag. Cancellation is one-way and idempotent.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flips the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// How many workers a batch call may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Parallelism {
    /// One worker per available CPU (capped by the number of work
    /// units) — the right default for throughput-bound sweeps.
    #[default]
    Auto,
    /// Exactly `n` workers (`0` is treated as `1`). Use to pin batch
    /// jobs to a core budget in co-tenant deployments, or `Fixed(k)`
    /// vs [`Parallelism::Sequential`] in determinism tests.
    Fixed(usize),
    /// Solve on the caller thread, in input order — no pool, no
    /// spawn overhead, the exact legacy code path. Pick this for tiny
    /// instances, single-request latency, or debugging.
    Sequential,
}

impl Parallelism {
    /// Worker count for `units` independent work units.
    pub fn worker_count(self, units: usize) -> usize {
        let cap = match self {
            Self::Sequential => 1,
            Self::Fixed(n) => n.max(1),
            Self::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        };
        cap.min(units).max(1)
    }
}

/// How [`sweep`] decomposes a budget grid into solver calls.
///
/// Both modes produce byte-identical plans (`Plan::divergence == None`
/// point-for-point): resume chains replay the greedy trajectory through
/// a [`crate::algo::SweepEngine`] memo, so every benefit number a
/// resumed solve consumes is the exact `f64` a from-scratch solve would
/// have computed, and memoized lookups still tick the engine eval
/// counter so diagnostics match too. The difference is purely
/// wall-clock: a chain re-uses the shared greedy prefix between
/// adjacent budget points instead of rediscovering it per point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SweepMode {
    /// Each budget point is an independent solve (the legacy
    /// decomposition). Keep this for A/B timing or paranoia runs.
    Independent,
    /// Budget points dealt to a runner are solved on one
    /// [`crate::algo::SweepEngine`] that carries the greedy trajectory
    /// and benefit memo from point to point — the default, and the fast
    /// path for budget ladders.
    #[default]
    ResumeChain,
}

/// Knobs for [`solve_batch`] / [`sweep`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ExecOptions {
    /// Worker-pool sizing.
    pub parallelism: Parallelism,
    /// Work units with fewer estimated engine evaluations than this run
    /// inline on the caller thread (see the module docs). The default
    /// is [`ExecOptions::DEFAULT_INLINE_THRESHOLD`].
    pub inline_threshold: u64,
    /// Persistent engine store consulted by work units that carry a
    /// [`CacheKey`]; units without a key never touch it.
    pub store: Option<Arc<CacheStore>>,
    /// The worker pool parallel work is submitted to (`None` — the
    /// default — uses [`WorkerPool::global`]). Supply a dedicated pool
    /// to isolate a tenant's compute from the process-wide one.
    pub pool: Option<Arc<WorkerPool>>,
    /// Cooperative cancellation for this call: runners stop pulling
    /// new work units / budget points once the token is cancelled, and
    /// the call returns [`CoreError::Cancelled`] instead of finishing
    /// the remaining work. `None` (the default) runs to completion.
    pub cancel: Option<CancelToken>,
    /// Budget-sweep decomposition (see [`SweepMode`]); ignored by
    /// [`solve_batch`].
    pub sweep_mode: SweepMode,
}

impl ExecOptions {
    /// Default [`ExecOptions::inline_threshold`]: roughly the engine
    /// work below which thread spawn/join overhead (~tens of µs) wins.
    pub const DEFAULT_INLINE_THRESHOLD: u64 = 4096;

    /// Options with the given parallelism and default admission
    /// control.
    pub fn new(parallelism: Parallelism) -> Self {
        Self {
            parallelism,
            inline_threshold: Self::DEFAULT_INLINE_THRESHOLD,
            store: None,
            pool: None,
            cancel: None,
            sweep_mode: SweepMode::default(),
        }
    }

    /// Sets the inline-admission threshold.
    pub fn with_inline_threshold(mut self, evals: u64) -> Self {
        self.inline_threshold = evals;
        self
    }

    /// Attaches a persistent engine store.
    pub fn with_store(mut self, store: Arc<CacheStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Routes parallel work to a dedicated pool instead of the global
    /// one.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a cancellation token (see [`ExecOptions::cancel`]).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the budget-sweep decomposition (see [`SweepMode`]).
    pub fn with_sweep_mode(mut self, mode: SweepMode) -> Self {
        self.sweep_mode = mode;
        self
    }

    /// The pool this call submits to.
    fn pool(&self) -> Arc<WorkerPool> {
        self.pool.clone().unwrap_or_else(WorkerPool::global)
    }

    /// Whether this call's token has been cancelled.
    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }
}

impl Default for ExecOptions {
    /// Hand-written so `default()` agrees with `new(...)` on the
    /// inline threshold (a derived Default would zero it and disable
    /// admission control).
    fn default() -> Self {
        Self::new(Parallelism::default())
    }
}

/// One batch request: solve `problem` under `budget` with `strategy`.
#[derive(Debug, Clone, Copy)]
pub struct BatchJob<'p> {
    /// Registry strategy name (`"auto"`, `"greedy"`, …).
    pub strategy: &'p str,
    /// The lowered problem. Jobs pointing at the *same* `Problem`
    /// (pointer identity) with the same `key` share one engine cache
    /// per work unit.
    pub problem: &'p Problem,
    /// The cleaning budget.
    pub budget: Budget,
    /// Persistence identity for [`ExecOptions::store`] lookups. Must
    /// fingerprint the problem's instance *and* query (see
    /// [`CacheStore`]'s caveats); `None` opts this
    /// job out of the persistent store.
    pub key: Option<CacheKey>,
}

/// A work unit: all jobs sharing one problem (each job carries the
/// problem reference itself; the unit only needs the shared cache key).
struct Unit {
    key: Option<CacheKey>,
    /// Indices into the jobs slice, in input order.
    jobs: Vec<usize>,
    estimate: u64,
}

fn cache_for<'p>(opts: &ExecOptions, key: Option<CacheKey>) -> EngineCache<'p> {
    match (&opts.store, key) {
        (Some(store), Some(key)) => EngineCache::with_store(Arc::clone(store), key),
        _ => EngineCache::new(),
    }
}

/// Solves a batch of jobs, sharding work units across a scoped worker
/// pool, and returns the plans in input order. The first error (by
/// input index) fails the whole batch, matching the sequential fold.
/// See the module docs for determinism and admission control.
pub fn solve_batch(
    registry: &SolverRegistry,
    jobs: &[BatchJob<'_>],
    opts: &ExecOptions,
) -> Result<Vec<Plan>> {
    // Resolve strategies up front: unknown names fail fast and
    // deterministically, before any thread is spawned.
    let solvers: Vec<Arc<dyn Solver>> = jobs
        .iter()
        .map(|j| registry.get(j.strategy))
        .collect::<Result<_>>()?;

    // Group jobs into work units by (problem pointer identity, cache
    // key): same-key jobs share an engine cache; a `key: None` job
    // never rides a store-backed cache it opted out of. Grouping is
    // O(jobs) via a hash of the pointer — serving batches can carry
    // thousands of mostly-distinct problems.
    let mut units: Vec<Unit> = Vec::new();
    let mut unit_index: HashMap<(*const Problem, Option<CacheKey>), usize> = HashMap::new();
    for (i, job) in jobs.iter().enumerate() {
        match unit_index.entry((job.problem as *const Problem, job.key)) {
            Entry::Occupied(e) => units[*e.get()].jobs.push(i),
            Entry::Vacant(e) => {
                e.insert(units.len());
                units.push(Unit {
                    key: job.key,
                    jobs: vec![i],
                    estimate: job.problem.estimated_engine_evals(),
                });
            }
        }
    }

    let mut slots: Vec<Option<Result<Plan>>> = jobs.iter().map(|_| None).collect();
    let run_unit = |unit: &Unit, out: &mut dyn FnMut(usize, Result<Plan>)| {
        let cache = cache_for(opts, unit.key);
        for &i in &unit.jobs {
            let job = &jobs[i];
            out(
                i,
                solvers[i].solve_with_cache(job.problem, job.budget, &cache),
            );
        }
    };

    // Admission control: tiny units stay on the caller thread.
    let (pooled, inline): (Vec<&Unit>, Vec<&Unit>) = units
        .iter()
        .partition(|u| u.estimate.saturating_mul(u.jobs.len() as u64) >= opts.inline_threshold);
    let workers = opts.parallelism.worker_count(pooled.len());

    if workers <= 1 || WorkerPool::on_worker_thread() {
        for unit in &units {
            // Cancellation is checked between units, never mid-unit.
            if opts.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
            run_unit(unit, &mut |i, r| slots[i] = Some(r));
        }
    } else {
        let shared: Vec<Mutex<Option<Result<Plan>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        // Pooled units are dealt dynamically: each runner (pool job or
        // the caller itself) pulls the next undone unit. The caller
        // always participates, so the batch finishes even when the
        // shared pool is saturated with foreign work.
        let drain_pooled = || loop {
            if opts.is_cancelled() {
                break;
            }
            let u = next.fetch_add(1, Ordering::Relaxed);
            if u >= pooled.len() {
                break;
            }
            run_unit(pooled[u], &mut |i, r| {
                *shared[i].lock().expect("result slot poisoned") = Some(r);
            });
        };
        opts.pool().scope(|scope| {
            for _ in 1..workers {
                scope.spawn(drain_pooled);
            }
            // The caller thread handles the tiny units first, then
            // helps drain the pooled ones.
            for unit in &inline {
                if opts.is_cancelled() {
                    break;
                }
                run_unit(unit, &mut |i, r| {
                    *shared[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
            drain_pooled();
        });
        for (slot, shared) in slots.iter_mut().zip(shared) {
            *slot = shared.into_inner().expect("result slot poisoned");
        }
    }

    slots
        .into_iter()
        .map(|r| {
            // An unfilled slot can only mean the call was cancelled
            // before its unit ran (every index is otherwise dealt to
            // exactly one unit).
            r.ok_or(CoreError::Cancelled)?
        })
        .collect()
}

/// Solves one problem across a budget sweep, dealing budget points to
/// workers dynamically. The engine prefix work is built once and shared
/// through a [`CacheStore`]: the caller's persistent store when `key`
/// is `Some`, otherwise an ephemeral store private to this call (so an
/// unkeyed sweep can never collide with foreign entries).
pub fn sweep(
    registry: &SolverRegistry,
    strategy: &str,
    problem: &Problem,
    budgets: &[Budget],
    opts: &ExecOptions,
    key: Option<CacheKey>,
) -> Result<Vec<Plan>> {
    let solver = registry.get(strategy)?;
    let estimate = problem
        .estimated_engine_evals()
        .saturating_mul(budgets.len() as u64);
    let workers = if estimate < opts.inline_threshold {
        1
    } else {
        opts.parallelism.worker_count(budgets.len())
    };

    let (store, key) = match (&opts.store, key) {
        (Some(store), Some(key)) => (Arc::clone(store), key),
        // No trustworthy identity: use a throwaway store so workers
        // still share the prefix work within this call.
        _ => (Arc::new(CacheStore::new(1)), CacheKey::new(0, 0)),
    };

    if workers <= 1 || WorkerPool::on_worker_thread() {
        let cache = EngineCache::with_store(store, key);
        if opts.sweep_mode == SweepMode::ResumeChain {
            cache.enable_sweep_resume();
        }
        return budgets
            .iter()
            .map(|&b| {
                // Budget points are the sweep's cancellation points.
                if opts.is_cancelled() {
                    return Err(CoreError::Cancelled);
                }
                solver.solve_with_cache(problem, b, &cache)
            })
            .collect();
    }

    let slots: Vec<Mutex<Option<Result<Plan>>>> =
        budgets.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // One cache per runner; the store dedups the build, so the first
    // runner to arrive pays it and the rest wait (OnceLock) instead of
    // duplicating it. The caller participates as a runner, so the
    // sweep finishes even when the shared pool is saturated.
    let drain_budgets = || {
        let cache = EngineCache::with_store(Arc::clone(&store), key);
        if opts.sweep_mode == SweepMode::ResumeChain {
            // Each runner carries its own resume chain across the
            // budget points it is dealt.
            cache.enable_sweep_resume();
        }
        loop {
            if opts.is_cancelled() {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= budgets.len() {
                break;
            }
            let r = solver.solve_with_cache(problem, budgets[i], &cache);
            *slots[i].lock().expect("result slot poisoned") = Some(r);
        }
    };
    opts.pool().scope(|scope| {
        for _ in 1..workers {
            scope.spawn(drain_budgets);
        }
        drain_budgets();
    });
    slots
        .into_iter()
        .map(|m| {
            // `None` can only mean the sweep was cancelled before this
            // budget point was dealt to a runner.
            m.into_inner()
                .expect("result slot poisoned")
                .ok_or(CoreError::Cancelled)?
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{GaussianInstance, Instance};
    use crate::planner::Problem;
    use crate::CoreError;
    use fc_claims::{BiasQuery, ClaimSet, Direction, DupQuery, LinearClaim};
    use fc_uncertain::{rng_from_seed, DiscreteDist};
    use rand::Rng;

    fn claims(n: usize) -> ClaimSet {
        let perturbations: Vec<LinearClaim> = (0..n - 1)
            .map(|i| LinearClaim::window_sum(i, 2).unwrap())
            .collect();
        let weights = vec![1.0; perturbations.len()];
        ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            perturbations,
            weights,
            Direction::HigherIsStronger,
        )
        .unwrap()
    }

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = rng_from_seed(seed);
        let dists = (0..n)
            .map(|_| {
                let k = rng.gen_range(2..=3);
                let vals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..10.0)).collect();
                DiscreteDist::uniform_over(&vals).unwrap()
            })
            .collect::<Vec<_>>();
        let current = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let costs = (0..n).map(|_| rng.gen_range(1..5)).collect();
        Instance::new(dists, current, costs).unwrap()
    }

    fn assert_identical(a: &[Plan], b: &[Plan]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.divergence(y), None, "plan {i}");
        }
    }

    #[test]
    fn parallel_batch_matches_sequential_bytes() {
        for seed in [3u64, 17, 99] {
            let inst = random_instance(12, seed);
            let cs = claims(12);
            let dup = Problem::discrete_min_var(
                inst.clone(),
                std::sync::Arc::new(DupQuery::new(cs.clone(), 6.0)),
            )
            .unwrap();
            let bias = Problem::discrete_min_var(
                inst.clone(),
                std::sync::Arc::new(BiasQuery::new(cs.clone(), 6.0)),
            )
            .unwrap();
            let registry = SolverRegistry::with_defaults();
            let jobs: Vec<BatchJob<'_>> = [
                ("auto", &dup),
                ("greedy", &dup),
                ("auto", &bias),
                ("greedy-naive", &bias),
                ("best", &dup),
            ]
            .into_iter()
            .map(|(strategy, problem)| BatchJob {
                strategy,
                problem,
                budget: Budget::absolute(4),
                key: None,
            })
            .collect();
            let seq =
                solve_batch(&registry, &jobs, &ExecOptions::new(Parallelism::Sequential)).unwrap();
            // Force everything through the pool: threshold 0.
            let par = solve_batch(
                &registry,
                &jobs,
                &ExecOptions::new(Parallelism::Fixed(4)).with_inline_threshold(0),
            )
            .unwrap();
            assert_identical(&seq, &par);
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential_bytes() {
        let inst = random_instance(16, 5);
        let p =
            Problem::discrete_min_var(inst, std::sync::Arc::new(DupQuery::new(claims(16), 8.0)))
                .unwrap();
        let registry = SolverRegistry::with_defaults();
        let budgets: Vec<Budget> = (0..10).map(Budget::absolute).collect();
        let seq = registry.sweep("greedy", &p, &budgets).unwrap();
        let par = sweep(
            &registry,
            "greedy",
            &p,
            &budgets,
            &ExecOptions::new(Parallelism::Fixed(4)).with_inline_threshold(0),
            None,
        )
        .unwrap();
        assert_identical(&seq, &par);
    }

    #[test]
    fn resume_chain_matches_independent_bytes() {
        // Resume chains must be invisible in the output: every plan in
        // a chained sweep is byte-identical to its independent solve,
        // across ladder shapes that exercise rewind (descending) and
        // arbitrary jumps (shuffled).
        let inst = random_instance(18, 21);
        let p =
            Problem::discrete_min_var(inst, std::sync::Arc::new(BiasQuery::new(claims(18), 9.0)))
                .unwrap();
        let registry = SolverRegistry::with_defaults();
        let mut ladders: Vec<Vec<Budget>> = vec![
            (0..12).map(Budget::absolute).collect(),
            (0..12).rev().map(Budget::absolute).collect(),
            [7u64, 0, 11, 3, 9, 1, 10, 4, 2, 8, 5, 6]
                .into_iter()
                .map(Budget::absolute)
                .collect(),
        ];
        let mut rng = rng_from_seed(77);
        for _ in 0..2 {
            ladders.push(
                (0..10)
                    .map(|_| Budget::absolute(rng.gen_range(0..14)))
                    .collect(),
            );
        }
        for budgets in &ladders {
            for parallelism in [Parallelism::Sequential, Parallelism::Fixed(3)] {
                let independent = sweep(
                    &registry,
                    "greedy",
                    &p,
                    budgets,
                    &ExecOptions::new(parallelism)
                        .with_inline_threshold(0)
                        .with_sweep_mode(SweepMode::Independent),
                    None,
                )
                .unwrap();
                let chained = sweep(
                    &registry,
                    "greedy",
                    &p,
                    budgets,
                    &ExecOptions::new(parallelism)
                        .with_inline_threshold(0)
                        .with_sweep_mode(SweepMode::ResumeChain),
                    None,
                )
                .unwrap();
                assert_identical(&independent, &chained);
            }
        }
    }

    #[test]
    fn unknown_strategy_fails_before_spawning() {
        let inst = random_instance(4, 1);
        let p = Problem::discrete_min_var(inst, std::sync::Arc::new(DupQuery::new(claims(4), 1.0)))
            .unwrap();
        let registry = SolverRegistry::with_defaults();
        let jobs = [BatchJob {
            strategy: "nope",
            problem: &p,
            budget: Budget::absolute(1),
            key: None,
        }];
        let err = solve_batch(&registry, &jobs, &ExecOptions::default()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownStrategy { name } if name == "nope"));
    }

    #[test]
    fn first_error_by_input_index_wins() {
        // "best" refuses Gaussian problems; the error surfaced must be
        // the lowest-index failing job, like a sequential fold.
        let g =
            GaussianInstance::centered_independent(vec![0.0; 4], &[1.0; 4], vec![1; 4]).unwrap();
        let p = Problem::gaussian_min_var(g, vec![1.0; 4]).unwrap();
        let registry = SolverRegistry::with_defaults();
        let jobs: Vec<BatchJob<'_>> = ["auto", "best", "bicriteria"]
            .into_iter()
            .map(|strategy| BatchJob {
                strategy,
                problem: &p,
                budget: Budget::absolute(2),
                key: None,
            })
            .collect();
        for opts in [
            ExecOptions::new(Parallelism::Sequential),
            ExecOptions::new(Parallelism::Fixed(3)).with_inline_threshold(0),
        ] {
            let err = solve_batch(&registry, &jobs, &opts).unwrap_err();
            assert!(
                matches!(&err, CoreError::StrategyUnsupported { strategy, .. } if strategy == "best"),
                "expected the job-1 error, got {err}"
            );
        }
    }

    #[test]
    fn worker_count_respects_mode_and_units() {
        assert_eq!(Parallelism::Sequential.worker_count(100), 1);
        assert_eq!(Parallelism::Fixed(4).worker_count(100), 4);
        assert_eq!(Parallelism::Fixed(0).worker_count(100), 1);
        assert_eq!(Parallelism::Fixed(8).worker_count(3), 3);
        assert!(Parallelism::Auto.worker_count(100) >= 1);
        assert_eq!(Parallelism::Auto.worker_count(0), 1);
    }

    #[test]
    fn pre_cancelled_sweep_solves_nothing() {
        let inst = random_instance(16, 11);
        let p =
            Problem::discrete_min_var(inst, std::sync::Arc::new(DupQuery::new(claims(16), 8.0)))
                .unwrap();
        let registry = SolverRegistry::with_defaults();
        let budgets: Vec<Budget> = (0..6).map(Budget::absolute).collect();
        let token = CancelToken::new();
        token.cancel();
        let store = Arc::new(CacheStore::new(4));
        let key = CacheKey::new(p.instance_fingerprint(), 1);
        for parallelism in [Parallelism::Sequential, Parallelism::Fixed(3)] {
            let opts = ExecOptions::new(parallelism)
                .with_inline_threshold(0)
                .with_store(Arc::clone(&store))
                .with_cancel(token.clone());
            let err = sweep(&registry, "greedy", &p, &budgets, &opts, Some(key)).unwrap_err();
            assert!(matches!(err, CoreError::Cancelled), "got {err}");
        }
        assert_eq!(
            store.stats().scoped_builds,
            0,
            "a cancelled sweep never builds the engine"
        );
    }

    #[test]
    fn pre_cancelled_batch_solves_nothing() {
        let inst = random_instance(10, 12);
        let p =
            Problem::discrete_min_var(inst, std::sync::Arc::new(DupQuery::new(claims(10), 5.0)))
                .unwrap();
        let registry = SolverRegistry::with_defaults();
        let jobs: Vec<BatchJob<'_>> = ["greedy", "auto"]
            .into_iter()
            .map(|strategy| BatchJob {
                strategy,
                problem: &p,
                budget: Budget::absolute(2),
                key: None,
            })
            .collect();
        let token = CancelToken::new();
        token.cancel();
        for parallelism in [Parallelism::Sequential, Parallelism::Fixed(2)] {
            let opts = ExecOptions::new(parallelism)
                .with_inline_threshold(0)
                .with_cancel(token.clone());
            let err = solve_batch(&registry, &jobs, &opts).unwrap_err();
            assert!(matches!(err, CoreError::Cancelled), "got {err}");
        }
        // An un-cancelled token leaves the batch untouched.
        let opts = ExecOptions::new(Parallelism::Sequential).with_cancel(CancelToken::new());
        assert_eq!(solve_batch(&registry, &jobs, &opts).unwrap().len(), 2);
    }

    #[test]
    fn sweep_with_store_shares_tables_across_workers() {
        let store = Arc::new(CacheStore::new(8));
        let inst = random_instance(16, 9);
        let key = CacheKey::new(super::super::cache::fingerprint_instance(&inst), 1);
        let p =
            Problem::discrete_min_var(inst, std::sync::Arc::new(DupQuery::new(claims(16), 8.0)))
                .unwrap();
        let registry = SolverRegistry::with_defaults();
        let budgets: Vec<Budget> = (0..8).map(Budget::absolute).collect();
        let opts = ExecOptions::new(Parallelism::Fixed(4))
            .with_inline_threshold(0)
            .with_store(Arc::clone(&store));
        let first = sweep(&registry, "greedy", &p, &budgets, &opts, Some(key)).unwrap();
        assert_eq!(
            store.stats().scoped_builds,
            1,
            "workers share one table build"
        );
        let second = sweep(&registry, "greedy", &p, &budgets, &opts, Some(key)).unwrap();
        assert_eq!(
            store.stats().scoped_builds,
            1,
            "second sweep rebuilds nothing"
        );
        assert_identical(&first, &second);
    }
}
