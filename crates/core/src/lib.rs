//! # fc-core — cleaning-selection optimization (MinVar & MaxPr)
//!
//! The primary contribution of Sintos, Agarwal & Yang (VLDB 2019): given a
//! database of objects with uncertain true values, per-object cleaning
//! costs, a budget, and a query function `f`, choose which objects to
//! clean so as to
//!
//! * **MinVar** — minimize the expected variance of `f(X)` remaining after
//!   cleaning (ascertain claim quality), or
//! * **MaxPr** — maximize the probability that `f` after cleaning lands
//!   more than `τ` below its pre-cleaning value (find a counterargument).
//!
//! ## Layout
//!
//! | module | contents |
//! |---|---|
//! | [`instance`] | [`Instance`] (discrete marginals) and [`GaussianInstance`] (normal / multivariate-normal error models) |
//! | [`selection`] | [`Selection`] — a chosen cleaning set with its cost |
//! | [`budget`]   | [`Budget`] helpers (absolute / fraction-of-total) |
//! | [`ev`]       | `EV(T)` engines: exact joint enumeration, the scoped Theorem 3.8 engine, the modular Lemma 3.1 fast path, Monte Carlo, and Gaussian closed forms |
//! | [`maxpr`]    | surprise-probability engines: Gaussian closed form (Lemma 3.3), exact enumeration, binned convolution, Monte Carlo |
//! | [`algo`]     | Algorithm 1 greedy template and all algorithm variants: `Random`, `GreedyNaive(CostBlind)`, `GreedyMinVar`, `GreedyMaxPr`, knapsack `Optimum` + FPTAS, submodular `Best` (Theorem 3.7), bi-criteria, brute-force `OPT`, dependency-aware `GreedyDep`, and an adaptive MaxPr policy (§6 future work) |

pub mod algo;
pub mod budget;
pub mod ev;
pub mod instance;
pub mod maxpr;
pub mod planner;
pub mod selection;

pub use budget::Budget;
pub use instance::{GaussianInstance, Instance};
pub use planner::{
    BatchJob, CacheKey, CacheStats, CacheStore, CancelToken, EngineCache, ExecOptions, Goal, Lane,
    Parallelism, Plan, PlanDiagnostics, PlannerService, PointOutcome, Problem, QuotaPolicy,
    QuotaUsage, RequestHandle, ServiceOptions, ServiceStats, SnapshotError, SnapshotStats,
    SolveRequest, Solver, SolverRegistry, SweepHandle, SweepMode, SweepRequest, TenantId,
    WaitOutcome, WorkerPool,
};
pub use selection::Selection;

use std::fmt;

/// Errors from optimization-problem construction or solving.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm so future variants are not breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Instance vectors had inconsistent lengths.
    LengthMismatch {
        /// Field with the offending length.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// An instance had zero objects.
    EmptyInstance,
    /// A cleaning cost was zero (benefit/cost ratios would be undefined).
    ZeroCost {
        /// Object with zero cost.
        object: usize,
    },
    /// An object index was out of range.
    BadObject {
        /// The offending index.
        object: usize,
        /// Number of objects.
        len: usize,
    },
    /// Brute-force search was asked to enumerate too many subsets.
    TooLargeForBruteForce {
        /// Number of objects requested.
        n: usize,
        /// Maximum supported.
        max: usize,
    },
    /// The query is not affine, but an affine-only algorithm was invoked.
    NotAffine,
    /// An error bubbled up from the uncertainty substrate.
    Uncertain(fc_uncertain::UncertainError),
    /// A strategy name did not resolve in the [`SolverRegistry`].
    UnknownStrategy {
        /// The unresolved name.
        name: String,
    },
    /// A named strategy cannot solve the given problem shape.
    StrategyUnsupported {
        /// The strategy that refused.
        strategy: String,
        /// Why (problem kind, goal, or query shape).
        reason: String,
    },
    /// A budget fraction was NaN or otherwise non-finite.
    NonFiniteBudgetFraction,
    /// A builder was finalized before a required component was set.
    BuilderIncomplete {
        /// The missing component.
        what: &'static str,
    },
    /// A serving-layer worker panicked while executing a request. The
    /// panic is contained to the request (the pool and the service keep
    /// running); its payload is reported here.
    WorkerPanicked {
        /// The panic payload, rendered to text.
        detail: String,
    },
    /// The request was cancelled (explicitly, or by dropping its
    /// [`RequestHandle`]) before a result was produced.
    Cancelled,
    /// A submit would push the tenant past its [`planner::service::QuotaPolicy`].
    /// The request was rejected before any work was queued; retry after
    /// in-flight requests complete (or are cancelled).
    QuotaExceeded {
        /// The tenant whose quota was exhausted.
        tenant: String,
        /// Which limit tripped, with the observed and allowed values.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected length {expected}, got {got}"),
            Self::EmptyInstance => write!(f, "instance has no objects"),
            Self::ZeroCost { object } => write!(f, "object {object} has zero cleaning cost"),
            Self::BadObject { object, len } => {
                write!(f, "object index {object} out of range (n = {len})")
            }
            Self::TooLargeForBruteForce { n, max } => {
                write!(f, "brute force supports at most {max} objects, got {n}")
            }
            Self::NotAffine => write!(f, "query function is not affine"),
            Self::Uncertain(e) => write!(f, "uncertainty substrate: {e}"),
            Self::UnknownStrategy { name } => {
                write!(f, "unknown solver strategy {name:?}")
            }
            Self::StrategyUnsupported { strategy, reason } => {
                write!(
                    f,
                    "strategy {strategy:?} cannot solve this problem: {reason}"
                )
            }
            Self::NonFiniteBudgetFraction => {
                write!(f, "budget fraction must be finite")
            }
            Self::BuilderIncomplete { what } => {
                write!(f, "builder is missing a required component: {what}")
            }
            Self::WorkerPanicked { detail } => {
                write!(f, "serving worker panicked: {detail}")
            }
            Self::Cancelled => write!(f, "request was cancelled"),
            Self::QuotaExceeded { tenant, reason } => {
                write!(f, "quota exceeded for tenant {tenant:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Uncertain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fc_uncertain::UncertainError> for CoreError {
    fn from(e: fc_uncertain::UncertainError) -> Self {
        Self::Uncertain(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
