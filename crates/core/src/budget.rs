//! Cleaning budgets.

use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// A cleaning budget `C`: the maximum total cost of the selected set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Budget(pub u64);

impl Budget {
    /// An absolute budget.
    pub fn absolute(c: u64) -> Self {
        Self(c)
    }

    /// A budget expressed as a fraction of a total cost (how the paper's
    /// figures parameterize their sweeps). `frac` is clamped to `[0, 1]`;
    /// a **non-finite** `frac` (NaN, ±∞ beyond the clamp) maps to a zero
    /// budget — `NaN.clamp(0.0, 1.0)` stays NaN and the float→int cast
    /// would silently truncate it to 0 anyway, so the zero is made
    /// explicit and documented here. Use [`Budget::try_fraction`] to
    /// reject non-finite fractions with a typed error instead.
    pub fn fraction(total_cost: u64, frac: f64) -> Self {
        if frac.is_nan() {
            return Self(0);
        }
        let frac = frac.clamp(0.0, 1.0);
        Self((total_cost as f64 * frac).floor() as u64)
    }

    /// [`Budget::fraction`] that rejects non-finite fractions with
    /// [`CoreError::NonFiniteBudgetFraction`] — the serving-path
    /// variant, where a NaN from an upstream computation must not be
    /// silently reinterpreted as "no budget".
    pub fn try_fraction(total_cost: u64, frac: f64) -> Result<Self> {
        if !frac.is_finite() {
            return Err(CoreError::NonFiniteBudgetFraction);
        }
        Ok(Self::fraction(total_cost, frac))
    }

    /// The raw budget value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Whether a cost fits within the remaining budget after `spent`.
    #[inline]
    pub fn fits(self, spent: u64, cost: u64) -> bool {
        spent.saturating_add(cost) <= self.0
    }

    /// The complemented budget `C̄ = total − C` used by the Lemma 3.6
    /// mapping (choose what *not* to clean under a cost lower bound).
    pub fn complement(self, total_cost: u64) -> u64 {
        total_cost.saturating_sub(self.0)
    }
}

impl From<u64> for Budget {
    fn from(c: u64) -> Self {
        Self(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_rounds_down_and_clamps() {
        assert_eq!(Budget::fraction(100, 0.25).get(), 25);
        assert_eq!(Budget::fraction(7, 0.5).get(), 3);
        assert_eq!(Budget::fraction(100, -1.0).get(), 0);
        assert_eq!(Budget::fraction(100, 2.0).get(), 100);
    }

    #[test]
    fn fraction_handles_non_finite_explicitly() {
        // NaN maps to an explicit zero budget (documented), infinities
        // clamp like any out-of-range fraction.
        assert_eq!(Budget::fraction(100, f64::NAN).get(), 0);
        assert_eq!(Budget::fraction(100, f64::INFINITY).get(), 100);
        assert_eq!(Budget::fraction(100, f64::NEG_INFINITY).get(), 0);
        // The serving-path variant rejects all of them.
        assert_eq!(Budget::try_fraction(100, 0.5).unwrap().get(), 50);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                Budget::try_fraction(100, bad),
                Err(crate::CoreError::NonFiniteBudgetFraction)
            ));
        }
    }

    #[test]
    fn fits_saturates() {
        let b = Budget::absolute(10);
        assert!(b.fits(4, 6));
        assert!(!b.fits(5, 6));
        assert!(!b.fits(u64::MAX, 1));
    }

    #[test]
    fn complement() {
        assert_eq!(Budget::absolute(30).complement(100), 70);
        assert_eq!(Budget::absolute(200).complement(100), 0);
    }
}
