//! Cleaning budgets.

use serde::{Deserialize, Serialize};

/// A cleaning budget `C`: the maximum total cost of the selected set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Budget(pub u64);

impl Budget {
    /// An absolute budget.
    pub fn absolute(c: u64) -> Self {
        Self(c)
    }

    /// A budget expressed as a fraction of a total cost (how the paper's
    /// figures parameterize their sweeps). `frac` is clamped to `[0, 1]`.
    pub fn fraction(total_cost: u64, frac: f64) -> Self {
        let frac = frac.clamp(0.0, 1.0);
        Self((total_cost as f64 * frac).floor() as u64)
    }

    /// The raw budget value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Whether a cost fits within the remaining budget after `spent`.
    #[inline]
    pub fn fits(self, spent: u64, cost: u64) -> bool {
        spent.saturating_add(cost) <= self.0
    }

    /// The complemented budget `C̄ = total − C` used by the Lemma 3.6
    /// mapping (choose what *not* to clean under a cost lower bound).
    pub fn complement(self, total_cost: u64) -> u64 {
        total_cost.saturating_sub(self.0)
    }
}

impl From<u64> for Budget {
    fn from(c: u64) -> Self {
        Self(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_rounds_down_and_clamps() {
        assert_eq!(Budget::fraction(100, 0.25).get(), 25);
        assert_eq!(Budget::fraction(7, 0.5).get(), 3);
        assert_eq!(Budget::fraction(100, -1.0).get(), 0);
        assert_eq!(Budget::fraction(100, 2.0).get(), 100);
    }

    #[test]
    fn fits_saturates() {
        let b = Budget::absolute(10);
        assert!(b.fits(4, 6));
        assert!(!b.fits(5, 6));
        assert!(!b.fits(u64::MAX, 1));
    }

    #[test]
    fn complement() {
        assert_eq!(Budget::absolute(30).complement(100), 70);
        assert_eq!(Budget::absolute(200).complement(100), 0);
    }
}
