//! Problem instances: uncertain objects + current values + cleaning costs.

use crate::{CoreError, Result};
use fc_uncertain::{DiscreteDist, IndependentJoint, MultivariateNormal, Normal};
use serde::{Deserialize, Serialize};

/// A cleaning-selection instance over *discrete, mutually independent*
/// value distributions — the paper's primary setting (§2.1 with the §3.3
/// independence assumption).
///
/// * `dists[i]` — the distribution of object `i`'s true value `X_i`;
/// * `current[i]` — the current (possibly dirty) value `u_i`;
/// * `costs[i]` — the cleaning cost `c_i` (a positive integer, as required
///   by the pseudo-polynomial knapsack algorithms of Lemmas 3.2/3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    joint: IndependentJoint,
    current: Vec<f64>,
    costs: Vec<u64>,
}

impl Instance {
    /// Validates and assembles an instance.
    pub fn new(dists: Vec<DiscreteDist>, current: Vec<f64>, costs: Vec<u64>) -> Result<Self> {
        let n = dists.len();
        if n == 0 {
            return Err(CoreError::EmptyInstance);
        }
        if current.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "current values",
                expected: n,
                got: current.len(),
            });
        }
        if costs.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "costs",
                expected: n,
                got: costs.len(),
            });
        }
        if let Some(object) = costs.iter().position(|&c| c == 0) {
            return Err(CoreError::ZeroCost { object });
        }
        Ok(Self {
            joint: IndependentJoint::new(dists),
            current,
            costs,
        })
    }

    /// Builds an instance whose current values equal the distribution
    /// means (the "unbiased database" setting).
    pub fn centered(dists: Vec<DiscreteDist>, costs: Vec<u64>) -> Result<Self> {
        let current = dists.iter().map(DiscreteDist::mean).collect();
        Self::new(dists, current, costs)
    }

    /// Number of objects `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.joint.len()
    }

    /// Whether the instance is empty (never true once validated).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.joint.is_empty()
    }

    /// The independent joint distribution of all objects.
    #[inline]
    pub fn joint(&self) -> &IndependentJoint {
        &self.joint
    }

    /// Distribution of object `i`.
    #[inline]
    pub fn dist(&self, i: usize) -> &DiscreteDist {
        self.joint.dist(i)
    }

    /// Current (pre-cleaning) values `u`.
    #[inline]
    pub fn current(&self) -> &[f64] {
        &self.current
    }

    /// Cleaning costs `c`.
    #[inline]
    pub fn costs(&self) -> &[u64] {
        &self.costs
    }

    /// Cost of cleaning object `i`.
    #[inline]
    pub fn cost(&self, i: usize) -> u64 {
        self.costs[i]
    }

    /// Total cost of cleaning everything.
    pub fn total_cost(&self) -> u64 {
        self.costs.iter().sum()
    }

    /// Marginal variance of object `i`.
    #[inline]
    pub fn variance(&self, i: usize) -> f64 {
        self.joint.dist(i).variance()
    }

    /// Per-object variances.
    pub fn variances(&self) -> Vec<f64> {
        self.joint.variances()
    }
}

/// A cleaning-selection instance with *normal* error models — the setting
/// of the modular MaxPr results (Lemma 3.3), Theorem 3.9, and the §4.5
/// dependency experiments.
///
/// The marginal of object `i` is `N(mean_i, sd_i²)`; an optional
/// covariance structure upgrades the joint to a full multivariate normal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianInstance {
    mvn: MultivariateNormal,
    current: Vec<f64>,
    costs: Vec<u64>,
}

impl GaussianInstance {
    /// Independent normals `X_i ~ N(mean_i, sd_i²)` with explicit current
    /// values (which may differ from the means, as in Fig. 12).
    pub fn independent(
        means: Vec<f64>,
        sds: &[f64],
        current: Vec<f64>,
        costs: Vec<u64>,
    ) -> Result<Self> {
        let variances: Vec<f64> = sds.iter().map(|s| s * s).collect();
        let mvn = MultivariateNormal::independent(means, &variances)?;
        Self::with_mvn(mvn, current, costs)
    }

    /// Independent normals centered at the current values
    /// (`X_i ~ N(u_i, sd_i²)` — the Theorem 3.9 assumption).
    pub fn centered_independent(current: Vec<f64>, sds: &[f64], costs: Vec<u64>) -> Result<Self> {
        Self::independent(current.clone(), sds, current, costs)
    }

    /// Full multivariate normal error model.
    pub fn with_mvn(mvn: MultivariateNormal, current: Vec<f64>, costs: Vec<u64>) -> Result<Self> {
        let n = mvn.n();
        if n == 0 {
            return Err(CoreError::EmptyInstance);
        }
        if current.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "current values",
                expected: n,
                got: current.len(),
            });
        }
        if costs.len() != n {
            return Err(CoreError::LengthMismatch {
                what: "costs",
                expected: n,
                got: costs.len(),
            });
        }
        if let Some(object) = costs.iter().position(|&c| c == 0) {
            return Err(CoreError::ZeroCost { object });
        }
        Ok(Self {
            mvn,
            current,
            costs,
        })
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.mvn.n()
    }

    /// Whether the instance is empty (never true once validated).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mvn.n() == 0
    }

    /// The multivariate normal over all objects.
    #[inline]
    pub fn mvn(&self) -> &MultivariateNormal {
        &self.mvn
    }

    /// Mean of object `i`.
    #[inline]
    pub fn mean(&self, i: usize) -> f64 {
        self.mvn.mean()[i]
    }

    /// Marginal standard deviation of object `i`.
    #[inline]
    pub fn sd(&self, i: usize) -> f64 {
        self.mvn.var(i).sqrt()
    }

    /// Marginal variance of object `i`.
    #[inline]
    pub fn variance(&self, i: usize) -> f64 {
        self.mvn.var(i)
    }

    /// Current (pre-cleaning) values `u`.
    #[inline]
    pub fn current(&self) -> &[f64] {
        &self.current
    }

    /// Cleaning costs `c`.
    #[inline]
    pub fn costs(&self) -> &[u64] {
        &self.costs
    }

    /// Cost of cleaning object `i`.
    #[inline]
    pub fn cost(&self, i: usize) -> u64 {
        self.costs[i]
    }

    /// Total cost of cleaning everything.
    pub fn total_cost(&self) -> u64 {
        self.costs.iter().sum()
    }

    /// Whether the error model is independent (diagonal covariance).
    pub fn is_independent(&self) -> bool {
        let n = self.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if self.mvn.cov().get(i, j) != 0.0 {
                    return false;
                }
            }
        }
        true
    }

    /// Discretizes each marginal into a `k`-point distribution, yielding a
    /// discrete [`Instance`] (this is how the CDC datasets enter the
    /// general-query experiments: "we discretize each normal distribution
    /// … using 6 and 4 discrete values", §4.2). Correlations, if any, are
    /// dropped — exactly what the paper's independence-assuming algorithms
    /// do when "not made aware of any dependency".
    pub fn discretize(&self, k: usize) -> Result<Instance> {
        let dists = (0..self.len())
            .map(|i| {
                Normal::new(self.mean(i), self.sd(i))
                    .and_then(|n| n.discretize(k))
                    .map_err(CoreError::from)
            })
            .collect::<Result<Vec<_>>>()?;
        Instance::new(dists, self.current.clone(), self.costs.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dists2() -> Vec<DiscreteDist> {
        vec![
            DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap(),
            DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap(),
        ]
    }

    #[test]
    fn validates_lengths() {
        let err = Instance::new(dists2(), vec![1.0], vec![1, 1]).unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { .. }));
        let err = Instance::new(dists2(), vec![1.0, 1.0], vec![1]).unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { .. }));
    }

    #[test]
    fn rejects_zero_cost() {
        let err = Instance::new(dists2(), vec![1.0, 1.0], vec![1, 0]).unwrap_err();
        assert_eq!(err, CoreError::ZeroCost { object: 1 });
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Instance::new(vec![], vec![], vec![]).unwrap_err(),
            CoreError::EmptyInstance
        );
    }

    #[test]
    fn centered_uses_means() {
        let inst = Instance::centered(dists2(), vec![1, 1]).unwrap();
        assert!((inst.current()[0] - 1.0).abs() < 1e-12);
        assert!((inst.current()[1] - 1.0).abs() < 1e-12);
        assert_eq!(inst.total_cost(), 2);
    }

    #[test]
    fn gaussian_instance_roundtrip() {
        let g =
            GaussianInstance::centered_independent(vec![100.0, 200.0], &[5.0, 10.0], vec![3, 7])
                .unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.is_independent());
        assert!((g.variance(1) - 100.0).abs() < 1e-12);
        assert_eq!(g.total_cost(), 10);
        let disc = g.discretize(6).unwrap();
        assert_eq!(disc.len(), 2);
        assert_eq!(disc.dist(0).support_size(), 6);
        // Discretization preserves means.
        assert!((disc.dist(0).mean() - 100.0).abs() < 1e-9);
        // And most of the variance at k = 6.
        assert!(disc.dist(1).variance() / 100.0 > 0.8);
    }

    #[test]
    fn gaussian_dependency_flag() {
        let mvn = MultivariateNormal::with_geometric_dependency(vec![0.0, 0.0], &[1.0, 1.0], 0.5)
            .unwrap();
        let g = GaussianInstance::with_mvn(mvn, vec![0.0, 0.0], vec![1, 1]).unwrap();
        assert!(!g.is_independent());
    }
}
