//! The unified `Planner` API: one problem abstraction over discrete and
//! Gaussian instances, a [`Solver`] trait, and a string-keyed
//! [`SolverRegistry`] wrapping every algorithm in [`crate::algo`] as a
//! named strategy.
//!
//! The paper defines a single problem family — select a cleaning set
//! under a budget to **MinVar** a claim-quality measure or **MaxPr** a
//! surprise — but solves it with a zoo of algorithms whose applicability
//! depends on the error model (discrete vs. Gaussian) and the query
//! shape (affine vs. merely decomposable). This module makes that
//! routing a first-class, pluggable object:
//!
//! * [`Problem`] — an instance (discrete [`Instance`] or
//!   [`GaussianInstance`]), its query (a shared [`DecomposableQuery`]
//!   or a linear-weight vector), and a [`Goal`];
//! * [`Solver`] — `solve(&self, problem, budget) -> Result<Plan>`;
//! * [`SolverRegistry`] — resolves strategy names (`"greedy"`,
//!   `"optimum-knapsack"`, `"best"`, …) to solvers; unknown names are a
//!   typed [`CoreError::UnknownStrategy`], unsupported combinations a
//!   typed [`CoreError::StrategyUnsupported`];
//! * [`EngineCache`] — memoizes the expensive prefix work (the scoped
//!   Theorem 3.8 engine build, affine extraction, modular benefits) so
//!   budget sweeps and multi-objective batches reuse it — this is the
//!   hot path of every figure binary;
//! * [`Plan`] — the outcome: selection, objective before/after,
//!   resolved strategy name, and evaluation-count diagnostics;
//! * [`exec`] — the sharded parallel batch executor
//!   ([`solve_batch`](exec::solve_batch) / [`sweep`](exec::sweep) with
//!   a [`Parallelism`] knob and admission control);
//! * [`cache`] — the fingerprint-keyed [`CacheStore`] persisting engine
//!   prefix work across call chains and sessions.
//!
//! The original free functions in [`crate::algo`] remain available and
//! are what the solvers delegate to.

pub mod cache;
pub mod exec;
pub mod pool;
pub mod service;

pub use cache::snapshot::{SnapshotError, SnapshotStats};
pub use cache::{CacheKey, CacheStats, CacheStore, Fnv1a};
pub use exec::{BatchJob, CancelToken, ExecOptions, Parallelism, SweepMode};
pub use pool::WorkerPool;
pub use service::{
    Lane, PlannerService, PointOutcome, QuotaPolicy, QuotaUsage, RequestHandle, ServiceOptions,
    ServiceStats, SolveRequest, SweepHandle, SweepRequest, TenantId, WaitOutcome,
};

use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::algo;
use crate::algo::greedy::{greedy_static, GreedyConfig};
use crate::budget::Budget;
use crate::ev::gaussian::MvnSemantics;
use crate::ev::modular::{ev_modular, modular_benefits_gaussian};
use crate::ev::scoped::{ScopedEv, ScopedTables};
use crate::instance::{GaussianInstance, Instance};
use crate::maxpr::{surprise_prob_convolution, surprise_prob_gaussian};
use crate::selection::Selection;
use crate::{CoreError, Result};
use fc_claims::DecomposableQuery;

/// A query shared across solvers and engine caches.
pub type SharedQuery = Arc<dyn DecomposableQuery + Send + Sync>;

/// What the cleaning should optimize.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Goal {
    /// Minimize the expected post-cleaning variance `EV(T)` of the
    /// query (ascertain claim quality).
    MinVar,
    /// Maximize `Pr[f < f(u) − τ]` after cleaning (surface a
    /// counterargument).
    MaxPr {
        /// Surprise threshold `τ ≥ 0`.
        tau: f64,
    },
}

impl Goal {
    /// Whether larger objective values are better under this goal.
    pub fn maximizing(self) -> bool {
        matches!(self, Goal::MaxPr { .. })
    }
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Goal::MinVar => write!(f, "MinVar"),
            Goal::MaxPr { tau } => write!(f, "MaxPr(τ={tau})"),
        }
    }
}

/// The error model + query side of a [`Problem`].
pub(crate) enum Model {
    /// Discrete marginals with a decomposable query.
    Discrete {
        /// The instance.
        instance: Instance,
        /// The query (quality measure) under optimization.
        query: SharedQuery,
    },
    /// (Multivariate) normal errors with a linear query `wᵀX`.
    Gaussian {
        /// The instance.
        instance: GaussianInstance,
        /// Dense query weights (length `n`).
        weights: Vec<f64>,
        /// Covariance semantics used when evaluating objectives.
        semantics: MvnSemantics,
    },
}

/// A fully specified cleaning-selection problem: error model, query,
/// and goal. Solvers never see anything else, which is what lets one
/// registry serve every workload shape.
pub struct Problem {
    pub(crate) model: Model,
    goal: Goal,
}

impl fmt::Debug for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Problem")
            .field("kind", &self.kind_name())
            .field("n", &self.len())
            .field("goal", &self.goal)
            .finish()
    }
}

/// Validates that a query's object ids fit the instance.
fn check_query_scope(instance: &Instance, query: &SharedQuery) -> Result<()> {
    let n = instance.len();
    if let Some(&object) = query.objects().iter().find(|&&o| o >= n) {
        return Err(CoreError::BadObject { object, len: n });
    }
    Ok(())
}

/// Validates that a weight vector lines up with the instance.
fn check_weights(instance: &GaussianInstance, weights: &[f64]) -> Result<()> {
    if weights.len() != instance.len() {
        return Err(CoreError::LengthMismatch {
            what: "query weights",
            expected: instance.len(),
            got: weights.len(),
        });
    }
    Ok(())
}

impl Problem {
    /// A MinVar problem over a discrete instance. Errors with
    /// [`CoreError::BadObject`] when the query references objects the
    /// instance does not have — a serving system must not panic on
    /// caller input.
    pub fn discrete_min_var(instance: Instance, query: SharedQuery) -> Result<Self> {
        check_query_scope(&instance, &query)?;
        Ok(Self {
            model: Model::Discrete { instance, query },
            goal: Goal::MinVar,
        })
    }

    /// A MaxPr problem over a discrete instance (requires an affine
    /// query at solve time; the convolution engine rejects others).
    /// Validates the query scope like [`Problem::discrete_min_var`].
    pub fn discrete_max_pr(instance: Instance, query: SharedQuery, tau: f64) -> Result<Self> {
        check_query_scope(&instance, &query)?;
        Ok(Self {
            model: Model::Discrete { instance, query },
            goal: Goal::MaxPr { tau },
        })
    }

    /// A MinVar problem over a Gaussian instance with linear query
    /// weights (conditional-posterior evaluation semantics). Errors
    /// with [`CoreError::LengthMismatch`] when the weight vector does
    /// not line up with the instance.
    pub fn gaussian_min_var(instance: GaussianInstance, weights: Vec<f64>) -> Result<Self> {
        check_weights(&instance, &weights)?;
        Ok(Self {
            model: Model::Gaussian {
                instance,
                weights,
                semantics: MvnSemantics::Conditional,
            },
            goal: Goal::MinVar,
        })
    }

    /// A MaxPr problem over a Gaussian instance (Lemma 3.3 territory).
    /// Validates the weight vector like [`Problem::gaussian_min_var`].
    pub fn gaussian_max_pr(
        instance: GaussianInstance,
        weights: Vec<f64>,
        tau: f64,
    ) -> Result<Self> {
        check_weights(&instance, &weights)?;
        Ok(Self {
            model: Model::Gaussian {
                instance,
                weights,
                semantics: MvnSemantics::Conditional,
            },
            goal: Goal::MaxPr { tau },
        })
    }

    /// Overrides the covariance semantics used for Gaussian objective
    /// evaluation (no-op for discrete problems).
    pub fn with_semantics(mut self, s: MvnSemantics) -> Self {
        if let Model::Gaussian { semantics, .. } = &mut self.model {
            *semantics = s;
        }
        self
    }

    /// The optimization goal.
    pub fn goal(&self) -> Goal {
        self.goal
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        match &self.model {
            Model::Discrete { instance, .. } => instance.len(),
            Model::Gaussian { instance, .. } => instance.len(),
        }
    }

    /// Whether the problem has no objects (never true once validated).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cleaning costs.
    pub fn costs(&self) -> &[u64] {
        match &self.model {
            Model::Discrete { instance, .. } => instance.costs(),
            Model::Gaussian { instance, .. } => instance.costs(),
        }
    }

    /// Total cost of cleaning everything.
    pub fn total_cost(&self) -> u64 {
        self.costs().iter().sum()
    }

    /// The discrete instance, when this is a discrete problem.
    pub fn discrete_instance(&self) -> Option<&Instance> {
        match &self.model {
            Model::Discrete { instance, .. } => Some(instance),
            Model::Gaussian { .. } => None,
        }
    }

    /// The Gaussian instance, when this is a Gaussian problem.
    pub fn gaussian_instance(&self) -> Option<&GaussianInstance> {
        match &self.model {
            Model::Gaussian { instance, .. } => Some(instance),
            Model::Discrete { .. } => None,
        }
    }

    /// `"discrete"` / `"gaussian"` — used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match &self.model {
            Model::Discrete { .. } => "discrete",
            Model::Gaussian { .. } => "gaussian",
        }
    }

    /// Dense affine weights of the query, when it has an affine form.
    pub fn affine_weights(&self) -> Option<Vec<f64>> {
        match &self.model {
            Model::Discrete { instance, query } => query.as_affine(instance.len()).map(|(w, _)| w),
            Model::Gaussian { weights, .. } => Some(weights.clone()),
        }
    }

    /// Order-of-magnitude estimate of the engine evaluations a solve of
    /// this problem costs — the admission-control signal of the
    /// parallel executor (problems under
    /// [`ExecOptions::inline_threshold`](exec::ExecOptions) stay on the
    /// caller thread). Affine/modular problems are `O(n)`; non-affine
    /// discrete problems pay per-term outcome enumeration; correlated
    /// Gaussian problems pay dense covariance work.
    pub fn estimated_engine_evals(&self) -> u64 {
        match &self.model {
            Model::Discrete { instance, query } => {
                let n = instance.len() as u64;
                if matches!(self.goal, Goal::MaxPr { .. }) {
                    // MaxPr solves probe `surprise_prob_convolution`,
                    // and every probe pays a bins-wide DP per active
                    // object — orders of magnitude above the O(n)
                    // affine-MinVar path, so charge one full-width
                    // probe. (The greedy solver then probes per step ×
                    // candidate; one probe already dwarfs any sensible
                    // inline threshold.)
                    return n.saturating_mul(crate::maxpr::convolution::DEFAULT_BINS as u64);
                }
                if query.as_affine(instance.len()).is_some() {
                    n
                } else {
                    // The scoped build enumerates Π_{i∈S_k} |support(i)|
                    // outcomes per term k (ScopedTables::build is
                    // O(Σ_k V^{|S_k|})), so charge each term its actual
                    // scope product rather than a flat V².
                    let mut evals = n;
                    for k in 0..query.num_terms() {
                        let term: u64 = query
                            .term_objects(k)
                            .iter()
                            .map(|&i| instance.dist(i).support_size() as u64)
                            .fold(1, u64::saturating_mul);
                        evals = evals.saturating_add(term);
                    }
                    evals
                }
            }
            Model::Gaussian { instance, .. } => {
                let n = instance.len() as u64;
                if instance.is_independent() {
                    n
                } else {
                    n.saturating_mul(n)
                }
            }
        }
    }

    /// FNV-1a fingerprint of the underlying instance contents — the
    /// instance half of a [`CacheKey`]. The query half is the caller's
    /// responsibility (see [`cache`]'s module docs).
    pub fn instance_fingerprint(&self) -> u64 {
        match &self.model {
            Model::Discrete { instance, .. } => cache::fingerprint_instance(instance),
            Model::Gaussian { instance, .. } => cache::fingerprint_gaussian(instance),
        }
    }

    /// Whether a Gaussian instance is centered at its current values
    /// with independent errors — the Lemma 3.3 exact-DP setting.
    fn gaussian_centered_independent(&self) -> bool {
        match &self.model {
            Model::Gaussian { instance, .. } => {
                instance.is_independent()
                    && instance
                        .current()
                        .iter()
                        .enumerate()
                        .all(|(i, &u)| (instance.mean(i) - u).abs() < 1e-12)
            }
            Model::Discrete { .. } => false,
        }
    }

    /// The objective value of cleaning `cleaned`, using the cheapest
    /// exact engine available through `cache`.
    pub fn objective_value<'p>(
        &'p self,
        cache: &EngineCache<'p>,
        cleaned: &[usize],
    ) -> Result<f64> {
        match (&self.model, self.goal) {
            (Model::Discrete { .. }, Goal::MinVar) => {
                if let Some(benefits) = cache.modular_benefits(self) {
                    Ok(ev_modular(benefits, cleaned))
                } else {
                    Ok(cache.scoped(self)?.ev_of(cleaned))
                }
            }
            (Model::Discrete { instance, query }, Goal::MaxPr { tau }) => {
                surprise_prob_convolution(instance, query.as_ref(), cleaned, tau, None)
            }
            (
                Model::Gaussian {
                    instance,
                    weights,
                    semantics,
                },
                Goal::MinVar,
            ) => crate::ev::gaussian::ev_gaussian_linear(instance, weights, cleaned, *semantics),
            (
                Model::Gaussian {
                    instance,
                    weights,
                    semantics,
                },
                Goal::MaxPr { tau },
            ) => surprise_prob_gaussian(instance, weights, cleaned, tau, *semantics),
        }
    }
}

/// Memoized engine state shared across solver calls on the *same*
/// [`Problem`] — build once per problem, pass to every
/// [`Solver::solve_with_cache`] in a budget sweep or objective batch.
/// The scoped Theorem 3.8 engine's precomputation (conditional
/// expectation tables over claim scopes) dominates single-solve latency
/// on uniqueness/robustness workloads; amortizing it is the planner's
/// main serving-path win.
///
/// A cache binds to the first [`Problem`] it is used with; passing a
/// *different* problem to the same cache afterwards panics (it would
/// otherwise silently serve the first problem's engines — a correctness
/// bug, so it is treated like `RefCell` misuse rather than a runtime
/// error).
///
/// A cache built with [`EngineCache::with_store`] additionally checks a
/// persistent [`CacheStore`] before building: the scoped tables and
/// modular benefits are fetched (or built once and published) under the
/// given [`CacheKey`], so repeated sessions over the same dataset skip
/// the scoped-EV prefix work entirely. The key must fingerprint the
/// problem's instance *and* query — see [`cache`]'s module docs.
#[derive(Default)]
pub struct EngineCache<'p> {
    scoped: OnceCell<ScopedEv<'p, dyn DecomposableQuery + Send + Sync>>,
    benefits: OnceCell<Option<Arc<Vec<f64>>>>,
    /// Identity of the problem this cache is bound to.
    bound: std::cell::Cell<Option<*const Problem>>,
    /// Persistent backing, when this cache participates in one.
    store: Option<(Arc<CacheStore>, CacheKey)>,
    /// Store lookups served warm / cold through this cache (feeds
    /// [`PlanDiagnostics::store_hits`] / `store_misses`).
    store_hits: std::cell::Cell<u64>,
    store_misses: std::cell::Cell<u64>,
    /// Sweep-resumption state (`Some` once enabled): carries the
    /// greedy's commit trajectory and benefit memo between budget
    /// points solved through this cache, so a budget sweep replays heap
    /// maintenance instead of re-scoring candidates. Plans stay
    /// byte-identical to independent solves — see
    /// [`algo::greedy::SweepEngine`].
    sweep: std::cell::RefCell<Option<algo::SweepEngine>>,
}

impl<'p> EngineCache<'p> {
    /// An empty cache; engines are built lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache backed by a persistent [`CacheStore`]: engine prefix
    /// work is looked up under `key` and published there after a build.
    pub fn with_store(store: Arc<CacheStore>, key: CacheKey) -> Self {
        Self {
            store: Some((store, key)),
            ..Self::default()
        }
    }

    /// Binds the cache to `problem` on first use; panics on a second,
    /// different problem (see the type docs).
    fn bind(&self, problem: &'p Problem) {
        let ptr = problem as *const Problem;
        match self.bound.get() {
            None => self.bound.set(Some(ptr)),
            Some(bound) => assert!(
                std::ptr::eq(bound, ptr),
                "EngineCache reused with a different Problem; \
                 create one cache per problem"
            ),
        }
    }

    /// The scoped Theorem 3.8 engine for a discrete problem (errors on
    /// Gaussian problems, which have closed forms instead).
    pub fn scoped(
        &self,
        problem: &'p Problem,
    ) -> Result<&ScopedEv<'p, dyn DecomposableQuery + Send + Sync>> {
        self.bind(problem);
        match &problem.model {
            Model::Discrete { instance, query } => {
                Ok(self.scoped.get_or_init(|| match &self.store {
                    Some((store, key)) => {
                        let (tables, warm) = store
                            .tables_tracked(*key, || ScopedTables::build(instance, query.as_ref()));
                        self.record_store_lookup(warm);
                        ScopedEv::with_tables(instance, query.as_ref(), tables)
                    }
                    None => ScopedEv::new(instance, query.as_ref()),
                }))
            }
            Model::Gaussian { .. } => Err(CoreError::StrategyUnsupported {
                strategy: "scoped-engine".into(),
                reason: "Gaussian problems use closed forms, not the scoped EV engine".into(),
            }),
        }
    }

    /// Modular (Lemma 3.1) benefits when the problem admits them:
    /// affine discrete queries and all Gaussian linear queries.
    pub fn modular_benefits(&self, problem: &'p Problem) -> Option<&[f64]> {
        self.bind(problem);
        let compute = || match &problem.model {
            Model::Discrete { instance, query } => {
                crate::ev::modular::modular_benefits(instance, query.as_ref()).ok()
            }
            Model::Gaussian {
                instance, weights, ..
            } => Some(modular_benefits_gaussian(instance, weights)),
        };
        self.benefits
            .get_or_init(|| match &self.store {
                Some((store, key)) => {
                    let (benefits, warm) = store.benefits_tracked(*key, compute);
                    self.record_store_lookup(warm);
                    benefits
                }
                None => compute().map(Arc::new),
            })
            .as_ref()
            .map(|v| v.as_slice())
    }

    fn record_store_lookup(&self, warm: bool) {
        let cell = if warm {
            &self.store_hits
        } else {
            &self.store_misses
        };
        cell.set(cell.get() + 1);
    }

    /// Persistent-store lookups this cache served warm (see
    /// [`PlanDiagnostics::store_hits`]).
    pub fn store_hits(&self) -> u64 {
        self.store_hits.get()
    }

    /// Persistent-store lookups this cache had to build for (see
    /// [`PlanDiagnostics::store_misses`]).
    pub fn store_misses(&self) -> u64 {
        self.store_misses.get()
    }

    /// Engine evaluations recorded by the scoped engine so far (zero
    /// when the scoped engine was never built).
    pub fn scoped_evals(&self) -> u64 {
        self.scoped.get().map_or(0, |e| e.eval_count())
    }

    /// Enables sweep-to-sweep greedy resumption for solves through this
    /// cache: budget points share a [`algo::SweepEngine`], so each
    /// point after the first replays the previous trajectory instead of
    /// re-scoring every candidate. Plans are byte-identical to
    /// independent solves (the executor's and service's divergence
    /// gates run over this path), so the only observable difference is
    /// speed. Idempotent.
    pub fn enable_sweep_resume(&self) {
        let mut slot = self.sweep.borrow_mut();
        if slot.is_none() {
            *slot = Some(algo::SweepEngine::new());
        }
    }

    /// The sweep-resumption engine, when enabled.
    fn sweep_engine(&self) -> Option<std::cell::RefMut<'_, algo::SweepEngine>> {
        std::cell::RefMut::filter_map(self.sweep.borrow_mut(), Option::as_mut).ok()
    }
}

/// Evaluation-count diagnostics attached to every [`Plan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct PlanDiagnostics {
    /// Objective/engine evaluations attributable to this solve (scoped
    /// engine deltas, probability evaluations, or benefit computations,
    /// depending on the strategy). Best-effort: strategies delegating
    /// to closed-form DPs report the benefit-vector length.
    pub engine_evals: u64,
    /// Candidate objects the strategy considered.
    pub candidates: usize,
    /// Persistent-store lookups the solve's engine cache served warm —
    /// service clients observe warm-vs-cold behavior from the plan
    /// itself instead of reaching into [`CacheStore::stats`]. Zero when
    /// no store was attached. Cumulative over the cache the solve ran
    /// with, so call chains sharing a cache (budget sweeps) report the
    /// chain's counts; a single serving request reports exactly its
    /// own. **Observability, not plan content**: which runner performs
    /// a lookup is scheduling-dependent, so [`Plan::divergence`]
    /// deliberately ignores these two fields.
    pub store_hits: u64,
    /// Persistent-store lookups that had to build (cold). See
    /// [`PlanDiagnostics::store_hits`] for semantics and the
    /// determinism caveat.
    pub store_misses: u64,
}

/// A cleaning recommendation with its predicted effect.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Plan {
    /// The objects to clean.
    pub selection: Selection,
    /// The goal this plan optimizes.
    pub goal: Goal,
    /// Objective value with no cleaning.
    pub before: f64,
    /// Predicted objective value after cleaning the selection.
    pub after: f64,
    /// The resolved strategy that produced the selection (e.g.
    /// `"auto:optimum-knapsack"`).
    pub strategy: String,
    /// Evaluation-count diagnostics.
    pub diagnostics: PlanDiagnostics,
}

impl Plan {
    /// The objective improvement (positive is better for both goals).
    pub fn improvement(&self) -> f64 {
        if self.goal.maximizing() {
            self.after - self.before
        } else {
            self.before - self.after
        }
    }

    /// The first field in which `other` differs from this plan at the
    /// byte level (`f64`s compared by bit pattern), or `None` when the
    /// plans are identical. This is the parallel executor's and the
    /// serving layer's determinism contract — plans produced under any
    /// [`Parallelism`] mode or through the
    /// [`PlannerService`] must compare
    /// identical to the sequential ones — and the one comparison their
    /// tests and CI gates share. The exhaustive destructuring makes
    /// the compiler flag this method when `Plan` (or
    /// [`PlanDiagnostics`]) grows a field, so the gate can never
    /// silently stop covering one.
    ///
    /// The store-observability counters
    /// ([`PlanDiagnostics::store_hits`] / `store_misses`) are the one
    /// deliberate exception: which runner warms the store first is
    /// scheduling-dependent, so they are not plan *content* and are
    /// ignored here.
    pub fn divergence(&self, other: &Plan) -> Option<String> {
        let Plan {
            selection,
            goal,
            before,
            after,
            strategy,
            diagnostics,
        } = self;
        if selection.objects() != other.selection.objects() {
            return Some("selections differ".into());
        }
        if selection.cost() != other.selection.cost() {
            return Some(format!(
                "selection costs differ ({} vs {})",
                selection.cost(),
                other.selection.cost()
            ));
        }
        if *goal != other.goal {
            return Some(format!("goals differ ({} vs {})", goal, other.goal));
        }
        if before.to_bits() != other.before.to_bits() {
            return Some(format!(
                "before-objectives differ ({} vs {})",
                before, other.before
            ));
        }
        if after.to_bits() != other.after.to_bits() {
            return Some(format!(
                "after-objectives differ ({} vs {})",
                after, other.after
            ));
        }
        if strategy != &other.strategy {
            return Some(format!(
                "strategies differ ({} vs {})",
                strategy, other.strategy
            ));
        }
        let PlanDiagnostics {
            engine_evals,
            candidates,
            store_hits: _,   // observability, scheduling-dependent
            store_misses: _, // (see the method docs)
        } = diagnostics;
        if *engine_evals != other.diagnostics.engine_evals
            || *candidates != other.diagnostics.candidates
        {
            return Some(format!(
                "diagnostics differ ({:?} vs {:?})",
                diagnostics, other.diagnostics
            ));
        }
        None
    }
}

fn finish_plan<'p>(
    problem: &'p Problem,
    cache: &EngineCache<'p>,
    selection: Selection,
    strategy: String,
    engine_evals: u64,
    candidates: usize,
) -> Result<Plan> {
    let before = problem.objective_value(cache, &[])?;
    let after = problem.objective_value(cache, selection.objects())?;
    Ok(Plan {
        selection,
        goal: problem.goal(),
        before,
        after,
        strategy,
        diagnostics: PlanDiagnostics {
            engine_evals,
            candidates,
            store_hits: cache.store_hits(),
            store_misses: cache.store_misses(),
        },
    })
}

fn unsupported(strategy: &str, problem: &Problem, detail: &str) -> CoreError {
    CoreError::StrategyUnsupported {
        strategy: strategy.to_string(),
        reason: format!(
            "{} {} problems: {detail}",
            problem.goal(),
            problem.kind_name()
        ),
    }
}

/// A named cleaning-selection algorithm, pluggable into the
/// [`SolverRegistry`].
pub trait Solver: Send + Sync {
    /// The canonical registry name.
    fn name(&self) -> &'static str;

    /// Solves `problem` under `budget` with a fresh engine cache.
    fn solve(&self, problem: &Problem, budget: Budget) -> Result<Plan> {
        let cache = EngineCache::new();
        self.solve_with_cache(problem, budget, &cache)
    }

    /// Solves `problem` under `budget`, reusing `cache` for the
    /// engine prefix work (pass the same cache across a budget sweep).
    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan>;
}

// ---------------------------------------------------------------------
// Named solvers.
// ---------------------------------------------------------------------

/// `auto`: the paper's routing policy. Modular fast paths (exact
/// knapsack DP) whenever the query is affine, the scoped Theorem 3.8
/// greedy for general decomposable MinVar, binned convolution greedy
/// for discrete MaxPr, and the Lemma 3.3 closed form for Gaussian MaxPr
/// (exact DP in the centered-independent setting, exhaustive greedy
/// otherwise).
#[derive(Debug, Default, Clone, Copy)]
pub struct AutoSolver;

impl Solver for AutoSolver {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        let inner: &dyn Solver = match (&problem.model, problem.goal()) {
            (Model::Discrete { .. }, Goal::MinVar) => {
                if cache.modular_benefits(problem).is_some() {
                    &OptimumSolver
                } else {
                    &GreedySolver
                }
            }
            (Model::Discrete { .. }, Goal::MaxPr { .. }) => &GreedySolver,
            (Model::Gaussian { instance, .. }, Goal::MinVar) => {
                if instance.is_independent() {
                    &OptimumSolver
                } else {
                    // With correlations the diagonal knapsack benefits
                    // are wrong; use the covariance-aware greedy (§4.5).
                    &GreedyDepSolver
                }
            }
            (Model::Gaussian { .. }, Goal::MaxPr { .. }) => {
                if problem.gaussian_centered_independent() {
                    &OptimumSolver
                } else {
                    &GreedySolver
                }
            }
        };
        let mut plan = inner.solve_with_cache(problem, budget, cache)?;
        plan.strategy = format!("auto:{}", plan.strategy);
        Ok(plan)
    }
}

/// `greedy`: the Algorithm 1 template with exact marginal benefits —
/// `GreedyMinVar` (modular or scoped-incremental) for MinVar,
/// `GreedyMaxPr` (convolution / Gaussian closed form) for MaxPr.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedySolver;

impl Solver for GreedySolver {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        match (&problem.model, problem.goal()) {
            (Model::Discrete { instance, .. }, Goal::MinVar) => {
                if let Some(benefits) = cache.modular_benefits(problem) {
                    let sel =
                        greedy_static(benefits, instance.costs(), budget, GreedyConfig::default());
                    let n = benefits.len() as u64;
                    finish_plan(
                        problem,
                        cache,
                        sel,
                        "greedy(modular)".into(),
                        n,
                        instance.len(),
                    )
                } else {
                    let eng = cache.scoped(problem)?;
                    let evals0 = eng.eval_count();
                    let sel = match cache.sweep_engine() {
                        Some(mut sweep) => {
                            algo::greedy_min_var_resumed(instance, eng, budget, &mut sweep)
                        }
                        None => algo::greedy_min_var_with_engine(instance, eng, budget),
                    };
                    let evals = eng.eval_count() - evals0;
                    let candidates = eng.relevant_objects().len();
                    finish_plan(
                        problem,
                        cache,
                        sel,
                        "greedy(scoped)".into(),
                        evals,
                        candidates,
                    )
                }
            }
            (Model::Discrete { instance, query }, Goal::MaxPr { tau }) => {
                let sel =
                    algo::greedy_max_pr_discrete(instance, query.as_ref(), budget, tau, None)?;
                let candidates = problem
                    .affine_weights()
                    .map_or(0, |w| w.iter().filter(|&&x| x != 0.0).count());
                finish_plan(
                    problem,
                    cache,
                    sel,
                    "greedy(convolution)".into(),
                    0,
                    candidates,
                )
            }
            (
                Model::Gaussian {
                    instance, weights, ..
                },
                Goal::MinVar,
            ) => {
                let sel = algo::greedy_min_var_gaussian(instance, weights, budget);
                finish_plan(
                    problem,
                    cache,
                    sel,
                    "greedy(gaussian-modular)".into(),
                    instance.len() as u64,
                    instance.len(),
                )
            }
            (
                Model::Gaussian {
                    instance,
                    weights,
                    semantics,
                },
                Goal::MaxPr { tau },
            ) => {
                let sel = algo::greedy_max_pr(instance, weights, budget, tau, *semantics);
                let candidates = weights.iter().filter(|&&x| x != 0.0).count();
                finish_plan(
                    problem,
                    cache,
                    sel,
                    "greedy(gaussian-closed-form)".into(),
                    0,
                    candidates,
                )
            }
        }
    }
}

/// `greedy-from-scratch`: the ablation `GreedyMinVar` that recomputes
/// every candidate benefit per iteration (no incremental state).
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyFromScratchSolver;

impl Solver for GreedyFromScratchSolver {
    fn name(&self) -> &'static str {
        "greedy-from-scratch"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        match (&problem.model, problem.goal()) {
            (Model::Discrete { instance, query }, Goal::MinVar) => {
                let sel = algo::greedy_min_var_from_scratch(instance, query.as_ref(), budget);
                finish_plan(
                    problem,
                    cache,
                    sel,
                    "greedy-from-scratch".into(),
                    0,
                    instance.len(),
                )
            }
            _ => Err(unsupported(
                self.name(),
                problem,
                "only discrete MinVar has the from-scratch ablation",
            )),
        }
    }
}

/// `greedy-naive`: benefit = marginal variance per unit cost, blind to
/// the query's structure (§4.1 baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyNaiveSolver;

impl Solver for GreedyNaiveSolver {
    fn name(&self) -> &'static str {
        "greedy-naive"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        let sel = match &problem.model {
            Model::Discrete { instance, query } => {
                algo::greedy_naive(instance, query.as_ref(), budget)
            }
            Model::Gaussian {
                instance, weights, ..
            } => {
                let benefits: Vec<f64> = (0..instance.len())
                    .map(|i| {
                        if weights[i] != 0.0 {
                            instance.variance(i)
                        } else {
                            0.0
                        }
                    })
                    .collect();
                greedy_static(&benefits, instance.costs(), budget, GreedyConfig::default())
            }
        };
        let n = problem.len();
        finish_plan(problem, cache, sel, "greedy-naive".into(), n as u64, n)
    }
}

/// `greedy-naive-cost-blind`: descending marginal variance, ignoring
/// costs entirely (§4.1 baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyNaiveCostBlindSolver;

impl Solver for GreedyNaiveCostBlindSolver {
    fn name(&self) -> &'static str {
        "greedy-naive-cost-blind"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        let sel = match &problem.model {
            Model::Discrete { instance, query } => {
                algo::greedy_naive_cost_blind(instance, query.as_ref(), budget)
            }
            Model::Gaussian {
                instance, weights, ..
            } => {
                let mut order: Vec<usize> =
                    (0..instance.len()).filter(|&i| weights[i] != 0.0).collect();
                order.sort_by(|&a, &b| instance.variance(b).total_cmp(&instance.variance(a)));
                let mut sel = Selection::empty();
                for i in order {
                    if budget.fits(sel.cost(), instance.cost(i)) {
                        sel.insert(i, instance.cost(i));
                    }
                }
                sel
            }
        };
        let n = problem.len();
        finish_plan(
            problem,
            cache,
            sel,
            "greedy-naive-cost-blind".into(),
            n as u64,
            n,
        )
    }
}

/// `random`: shuffle and take what fits — the §4.1 floor baseline.
/// Deterministic per configured seed.
#[derive(Debug, Clone, Copy)]
pub struct RandomSolver {
    /// RNG seed (the default registry uses a fixed seed so batch runs
    /// are reproducible).
    pub seed: u64,
}

impl Default for RandomSolver {
    fn default() -> Self {
        Self { seed: 0x5EED }
    }
}

impl Solver for RandomSolver {
    fn name(&self) -> &'static str {
        "random"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        use rand::seq::SliceRandom;
        let mut rng = fc_uncertain::rng_from_seed(self.seed);
        let costs = problem.costs();
        let mut order: Vec<usize> = (0..problem.len()).collect();
        order.shuffle(&mut rng);
        let mut sel = Selection::empty();
        for i in order {
            if budget.fits(sel.cost(), costs[i]) {
                sel.insert(i, costs[i]);
            }
        }
        let n = problem.len();
        finish_plan(problem, cache, sel, "random".into(), 0, n)
    }
}

/// `optimum-knapsack`: the exact pseudo-polynomial DP of Lemma 3.2 /
/// Lemma 3.3 — requires a modularizable objective (affine query, or
/// Gaussian MaxPr centered at the current values with independent
/// errors).
#[derive(Debug, Default, Clone, Copy)]
pub struct OptimumSolver;

impl Solver for OptimumSolver {
    fn name(&self) -> &'static str {
        "optimum-knapsack"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        if matches!(problem.goal(), Goal::MaxPr { .. })
            && matches!(&problem.model, Model::Gaussian { .. })
            && !problem.gaussian_centered_independent()
        {
            return Err(unsupported(
                self.name(),
                problem,
                "the Lemma 3.3 DP is exact only for independent normals centered at the \
                 current values",
            ));
        }
        if matches!(problem.goal(), Goal::MaxPr { .. })
            && matches!(&problem.model, Model::Discrete { .. })
        {
            return Err(unsupported(
                self.name(),
                problem,
                "discrete MaxPr has no knapsack reduction; use \"greedy\" or \"brute\"",
            ));
        }
        if let Model::Gaussian { instance, .. } = &problem.model {
            if !instance.is_independent() {
                return Err(unsupported(
                    self.name(),
                    problem,
                    "the knapsack benefits assume a diagonal covariance; use \"greedy-dep\" \
                     or \"brute\" for correlated errors",
                ));
            }
        }
        let benefits = cache
            .modular_benefits(problem)
            .ok_or(CoreError::NotAffine)?;
        let (chosen, _) = algo::max_knapsack_dp(benefits, problem.costs(), budget.get());
        let sel = Selection::from_objects(chosen, problem.costs());
        let n = problem.len();
        finish_plan(problem, cache, sel, "optimum-knapsack".into(), n as u64, n)
    }
}

/// `fptas`: the (1−ε)-approximate knapsack of Lemma 3.2, for
/// modularizable objectives.
#[derive(Debug, Clone, Copy)]
pub struct FptasSolver {
    /// Approximation parameter ε ∈ (0, 1).
    pub epsilon: f64,
}

impl Default for FptasSolver {
    fn default() -> Self {
        Self { epsilon: 0.1 }
    }
}

impl Solver for FptasSolver {
    fn name(&self) -> &'static str {
        "fptas"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        if matches!(problem.goal(), Goal::MaxPr { .. }) && !problem.gaussian_centered_independent()
        {
            return Err(unsupported(
                self.name(),
                problem,
                "the knapsack reduction for MaxPr needs centered independent normals",
            ));
        }
        let benefits = cache
            .modular_benefits(problem)
            .ok_or(CoreError::NotAffine)?;
        let (chosen, _) =
            algo::fptas_max_knapsack(benefits, problem.costs(), budget.get(), self.epsilon);
        let sel = Selection::from_objects(chosen, problem.costs());
        let n = problem.len();
        finish_plan(
            problem,
            cache,
            sel,
            format!("fptas(ε={})", self.epsilon),
            n as u64,
            n,
        )
    }
}

/// `best`: Theorem 3.7's submodular-optimization yardstick
/// (majorization–minimization over min-knapsack covers).
#[derive(Debug, Default, Clone, Copy)]
pub struct BestSolver {
    /// Iteration budget per bound family.
    pub config: algo::BestConfig,
}

impl Solver for BestSolver {
    fn name(&self) -> &'static str {
        "best"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        match (&problem.model, problem.goal()) {
            (Model::Discrete { instance, .. }, Goal::MinVar) => {
                let eng = cache.scoped(problem)?;
                let evals0 = eng.eval_count();
                let sel = algo::best_min_var_with_engine(instance, eng, budget, self.config);
                let evals = eng.eval_count() - evals0;
                finish_plan(problem, cache, sel, "best".into(), evals, instance.len())
            }
            _ => Err(unsupported(
                self.name(),
                problem,
                "Best targets discrete MinVar (Theorem 3.7)",
            )),
        }
    }
}

/// `bicriteria`: budget-relaxed MinVar (§3.3) — may exceed the budget
/// by the slack factor `1/(1−α)` in exchange for objective quality.
#[derive(Debug, Clone, Copy)]
pub struct BicriteriaSolver {
    /// Quality/slack trade-off `α ∈ (0, 1)`.
    pub alpha: f64,
}

impl Default for BicriteriaSolver {
    fn default() -> Self {
        Self { alpha: 0.5 }
    }
}

impl Solver for BicriteriaSolver {
    fn name(&self) -> &'static str {
        "bicriteria"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        match (&problem.model, problem.goal()) {
            (Model::Discrete { instance, .. }, Goal::MinVar) => {
                let eng = cache.scoped(problem)?;
                let evals0 = eng.eval_count();
                let alpha = self.alpha.clamp(1e-6, 0.95);
                let inflated = (budget.get() as f64 / (1.0 - alpha)).floor() as u64;
                let sel =
                    algo::greedy_min_var_with_engine(instance, eng, Budget::absolute(inflated));
                let evals = eng.eval_count() - evals0;
                finish_plan(
                    problem,
                    cache,
                    sel,
                    format!("bicriteria(α={alpha})"),
                    evals,
                    instance.len(),
                )
            }
            _ => Err(unsupported(
                self.name(),
                problem,
                "the bi-criteria relaxation targets discrete MinVar",
            )),
        }
    }
}

/// `brute`: exhaustive subset search — the exact yardstick for small
/// instances, any model and goal.
#[derive(Debug, Clone, Copy)]
pub struct BruteSolver {
    /// Maximum instance size (capped at
    /// [`algo::brute::BRUTE_FORCE_MAX_N`]).
    pub max_n: usize,
}

impl Default for BruteSolver {
    fn default() -> Self {
        Self {
            max_n: crate::algo::brute::BRUTE_FORCE_MAX_N,
        }
    }
}

impl Solver for BruteSolver {
    fn name(&self) -> &'static str {
        "brute"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        let mut evals = 0u64;
        let maximizing = problem.goal().maximizing();
        let sel = algo::brute_force_best(
            problem.costs(),
            budget,
            |s| {
                evals += 1;
                problem
                    .objective_value(cache, s.objects())
                    .unwrap_or(if maximizing {
                        f64::NEG_INFINITY
                    } else {
                        f64::INFINITY
                    })
            },
            !maximizing,
            self.max_n,
        )?;
        let n = problem.len();
        finish_plan(problem, cache, sel, "brute".into(), evals, n)
    }
}

/// `greedy-dep`: the §4.5 covariance-aware greedy over the Gaussian
/// conditional posterior.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyDepSolver;

impl Solver for GreedyDepSolver {
    fn name(&self) -> &'static str {
        "greedy-dep"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        match (&problem.model, problem.goal()) {
            (
                Model::Gaussian {
                    instance, weights, ..
                },
                Goal::MinVar,
            ) => {
                let sel = algo::greedy_dep(instance, weights, budget);
                finish_plan(problem, cache, sel, "greedy-dep".into(), 0, instance.len())
            }
            _ => Err(unsupported(
                self.name(),
                problem,
                "GreedyDep targets Gaussian MinVar with dependency knowledge",
            )),
        }
    }
}

/// `adaptive`: the §6 sequential MaxPr policy, planned against the
/// expectation — the simulation reveals each cleaned object at its
/// distribution mean, standing in for the unknown truth. Use
/// [`algo::adaptive_max_pr_simulate`] directly to replay real outcomes.
#[derive(Debug, Default, Clone, Copy)]
pub struct AdaptiveSolver;

impl Solver for AdaptiveSolver {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        match (&problem.model, problem.goal()) {
            (Model::Discrete { instance, query }, Goal::MaxPr { tau }) => {
                let means: Vec<f64> = (0..instance.len())
                    .map(|i| instance.dist(i).mean())
                    .collect();
                let outcome =
                    algo::adaptive_max_pr_simulate(instance, query.as_ref(), budget, tau, &means)?;
                finish_plan(
                    problem,
                    cache,
                    outcome.selection,
                    "adaptive(mean-truth)".into(),
                    0,
                    instance.len(),
                )
            }
            _ => Err(unsupported(
                self.name(),
                problem,
                "adaptive cleaning targets discrete MaxPr",
            )),
        }
    }
}

/// `partial-greedy`: MinVar under the §6 partial-cleaning model —
/// cleaning shrinks uncertainty by a uniform residual factor `ρ`
/// instead of eliminating it. Affine queries only.
#[derive(Debug, Clone, Copy)]
pub struct PartialGreedySolver {
    /// Uniform residual factor `ρ ∈ [0, 1]` (0 = full cleaning).
    pub rho: f64,
}

impl Default for PartialGreedySolver {
    fn default() -> Self {
        Self { rho: 0.5 }
    }
}

impl Solver for PartialGreedySolver {
    fn name(&self) -> &'static str {
        "partial-greedy"
    }

    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        match (&problem.model, problem.goal()) {
            (Model::Discrete { instance, query }, Goal::MinVar) => {
                let residual = algo::ResidualModel::uniform(instance.len(), self.rho)?;
                let sel =
                    algo::greedy_min_var_partial(instance, query.as_ref(), &residual, budget)?;
                // Under partial cleaning the post-cleaning EV keeps the
                // ρ² residue of each cleaned object's contribution.
                let full = cache
                    .modular_benefits(problem)
                    .ok_or(CoreError::NotAffine)?;
                let before: f64 = full.iter().sum();
                let removed: f64 = sel
                    .objects()
                    .iter()
                    .map(|&i| full[i] * (1.0 - self.rho * self.rho))
                    .sum();
                let n = instance.len();
                Ok(Plan {
                    after: (before - removed).max(0.0),
                    before,
                    selection: sel,
                    goal: problem.goal(),
                    strategy: format!("partial-greedy(ρ={})", self.rho),
                    diagnostics: PlanDiagnostics {
                        engine_evals: n as u64,
                        candidates: n,
                        store_hits: cache.store_hits(),
                        store_misses: cache.store_misses(),
                    },
                })
            }
            _ => Err(unsupported(
                self.name(),
                problem,
                "partial cleaning targets discrete MinVar with affine queries",
            )),
        }
    }
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

/// String-keyed solver registry. [`SolverRegistry::with_defaults`]
/// registers every algorithm in the reproduction as a named strategy;
/// [`SolverRegistry::register`] adds or overrides entries (custom
/// engines plug in without touching call sites).
pub struct SolverRegistry {
    solvers: BTreeMap<String, Arc<dyn Solver>>,
}

impl SolverRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self {
            solvers: BTreeMap::new(),
        }
    }

    /// The full default lineup.
    pub fn with_defaults() -> Self {
        let mut r = Self::empty();
        r.register_solver(Arc::new(AutoSolver));
        r.register_solver(Arc::new(GreedySolver));
        r.register_solver(Arc::new(GreedyFromScratchSolver));
        r.register_solver(Arc::new(GreedyNaiveSolver));
        r.register_solver(Arc::new(GreedyNaiveCostBlindSolver));
        r.register_solver(Arc::new(RandomSolver::default()));
        r.register_solver(Arc::new(OptimumSolver));
        r.register_solver(Arc::new(FptasSolver::default()));
        r.register_solver(Arc::new(BestSolver::default()));
        r.register_solver(Arc::new(BicriteriaSolver::default()));
        r.register_solver(Arc::new(BruteSolver::default()));
        r.register_solver(Arc::new(GreedyDepSolver));
        r.register_solver(Arc::new(AdaptiveSolver));
        r.register_solver(Arc::new(PartialGreedySolver::default()));
        r
    }

    /// Registers `solver` under its canonical name.
    pub fn register_solver(&mut self, solver: Arc<dyn Solver>) {
        self.solvers.insert(solver.name().to_string(), solver);
    }

    /// Registers `solver` under an explicit `name` (overrides).
    pub fn register(&mut self, name: impl Into<String>, solver: Arc<dyn Solver>) {
        self.solvers.insert(name.into(), solver);
    }

    /// Resolves a strategy name.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Solver>> {
        self.solvers
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::UnknownStrategy {
                name: name.to_string(),
            })
    }

    /// Registered strategy names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.solvers.keys().map(String::as_str).collect()
    }

    /// Resolves `strategy` and solves with a fresh cache.
    pub fn solve(&self, strategy: &str, problem: &Problem, budget: Budget) -> Result<Plan> {
        self.get(strategy)?.solve(problem, budget)
    }

    /// Resolves `strategy` and solves with a shared cache.
    pub fn solve_with_cache<'p>(
        &self,
        strategy: &str,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> Result<Plan> {
        self.get(strategy)?.solve_with_cache(problem, budget, cache)
    }

    /// Solves the same problem across a budget sweep, sharing one
    /// engine cache — the hot path of the figure binaries.
    pub fn sweep(
        &self,
        strategy: &str,
        problem: &Problem,
        budgets: &[Budget],
    ) -> Result<Vec<Plan>> {
        let solver = self.get(strategy)?;
        let cache = EngineCache::new();
        budgets
            .iter()
            .map(|&b| solver.solve_with_cache(problem, b, &cache))
            .collect()
    }

    /// [`SolverRegistry::sweep`] through the parallel executor: budget
    /// points are sharded across workers per `opts`, sharing the engine
    /// prefix work, and the plans come back in budget order,
    /// byte-identical to the sequential ones (see [`exec`]).
    ///
    /// `key` is the problem's persistence identity for
    /// [`ExecOptions::store`] lookups (see [`cache`]'s module docs for
    /// the fingerprint contract); pass `None` to skip the persistent
    /// store — the prefix work is then shared only within this call.
    pub fn sweep_with(
        &self,
        strategy: &str,
        problem: &Problem,
        budgets: &[Budget],
        opts: &ExecOptions,
        key: Option<CacheKey>,
    ) -> Result<Vec<Plan>> {
        exec::sweep(self, strategy, problem, budgets, opts, key)
    }

    /// Solves a heterogeneous batch of jobs through the parallel
    /// executor (see [`exec::solve_batch`]).
    pub fn solve_batch(&self, jobs: &[BatchJob<'_>], opts: &ExecOptions) -> Result<Vec<Plan>> {
        exec::solve_batch(self, jobs, opts)
    }
}

impl Default for SolverRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl fmt::Debug for SolverRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverRegistry")
            .field("strategies", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::{BiasQuery, ClaimSet, Direction, DupQuery, LinearClaim};
    use fc_uncertain::DiscreteDist;

    fn claims() -> ClaimSet {
        ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![
                LinearClaim::window_sum(0, 2).unwrap(),
                LinearClaim::window_sum(2, 2).unwrap(),
            ],
            vec![0.5, 0.5],
            Direction::HigherIsStronger,
        )
        .unwrap()
    }

    fn discrete_instance() -> Instance {
        Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 4.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0, 3.0]).unwrap(),
                DiscreteDist::uniform_over(&[0.0, 6.0]).unwrap(),
                DiscreteDist::uniform_over(&[2.0, 4.0]).unwrap(),
            ],
            vec![2.0, 2.0, 3.0, 3.0],
            vec![1, 1, 2, 1],
        )
        .unwrap()
    }

    fn bias_min_var_problem() -> Problem {
        Problem::discrete_min_var(discrete_instance(), Arc::new(BiasQuery::new(claims(), 5.0)))
            .unwrap()
    }

    #[test]
    fn auto_routes_affine_to_optimum() {
        let p = bias_min_var_problem();
        let plan = SolverRegistry::with_defaults()
            .solve("auto", &p, Budget::absolute(2))
            .unwrap();
        assert_eq!(plan.strategy, "auto:optimum-knapsack");
        assert!(plan.selection.cost() <= 2);
        assert!(plan.after <= plan.before + 1e-12);
    }

    #[test]
    fn auto_routes_decomposable_to_scoped_greedy() {
        let p =
            Problem::discrete_min_var(discrete_instance(), Arc::new(DupQuery::new(claims(), 5.0)))
                .unwrap();
        let plan = SolverRegistry::with_defaults()
            .solve("auto", &p, Budget::absolute(2))
            .unwrap();
        assert_eq!(plan.strategy, "auto:greedy(scoped)");
        assert!(plan.diagnostics.engine_evals > 0, "scoped evals tracked");
    }

    #[test]
    fn unknown_strategy_is_typed() {
        let p = bias_min_var_problem();
        let err = SolverRegistry::with_defaults()
            .solve("no-such-solver", &p, Budget::absolute(1))
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownStrategy { name } if name == "no-such-solver"));
    }

    #[test]
    fn unsupported_combination_is_typed() {
        // Best on a Gaussian problem is a typed refusal, not a panic.
        let g = GaussianInstance::centered_independent(vec![0.0; 3], &[1.0, 2.0, 3.0], vec![1; 3])
            .unwrap();
        let p = Problem::gaussian_min_var(g, vec![1.0, 1.0, 1.0]).unwrap();
        let err = SolverRegistry::with_defaults()
            .solve("best", &p, Budget::absolute(1))
            .unwrap_err();
        assert!(matches!(err, CoreError::StrategyUnsupported { .. }));
    }

    #[test]
    fn malformed_problem_inputs_are_typed_errors() {
        // Wrong-length weight vectors must not panic inside solvers.
        let g =
            GaussianInstance::centered_independent(vec![0.0; 4], &[1.0; 4], vec![1; 4]).unwrap();
        let err = Problem::gaussian_min_var(g.clone(), vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::LengthMismatch {
                expected: 4,
                got: 2,
                ..
            }
        ));
        let err = Problem::gaussian_max_pr(g, vec![1.0; 7], 0.5).unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { got: 7, .. }));
        // A query referencing objects beyond the instance is rejected
        // at construction, not at first engine access.
        let err = Problem::discrete_min_var(
            discrete_instance(), // 4 objects; claims() references 0..4 only
            Arc::new(BiasQuery::new(
                ClaimSet::new(
                    LinearClaim::window_sum(0, 2).unwrap(),
                    vec![LinearClaim::window_sum(6, 2).unwrap()],
                    vec![1.0],
                    Direction::HigherIsStronger,
                )
                .unwrap(),
                0.0,
            )),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadObject { object: 6, len: 4 }));
    }

    #[test]
    fn correlated_gaussian_min_var_routes_to_greedy_dep() {
        // Near-duplicate objects 0/1 (γ = 0.95) with an expensive
        // decoy: the diagonal knapsack would mislabel its answer as
        // "optimum"; auto must route to the covariance-aware greedy
        // and the optimum-knapsack strategy must refuse outright.
        let mvn = fc_uncertain::MultivariateNormal::with_geometric_dependency(
            vec![0.0; 4],
            &[1.0, 1.0, 1.0, 10.0],
            0.95,
        )
        .unwrap();
        let g = GaussianInstance::with_mvn(mvn, vec![0.0; 4], vec![1, 1, 1, 100]).unwrap();
        let p = Problem::gaussian_min_var(g, vec![1.0; 4]).unwrap();
        let reg = SolverRegistry::with_defaults();
        let plan = reg.solve("auto", &p, Budget::absolute(2)).unwrap();
        assert_eq!(plan.strategy, "auto:greedy-dep");
        let err = reg
            .solve("optimum-knapsack", &p, Budget::absolute(2))
            .unwrap_err();
        assert!(matches!(err, CoreError::StrategyUnsupported { .. }));
        // And the dep-aware plan beats the blind diagonal greedy.
        let blind = reg.solve("greedy", &p, Budget::absolute(2)).unwrap();
        assert!(plan.after <= blind.after + 1e-9);
    }

    #[test]
    #[should_panic(expected = "EngineCache reused with a different Problem")]
    fn engine_cache_rejects_problem_swap() {
        let p1 = bias_min_var_problem();
        let p2 = bias_min_var_problem();
        let cache = EngineCache::new();
        let _ = cache.modular_benefits(&p1);
        let _ = cache.modular_benefits(&p2);
    }

    #[test]
    fn sweep_shares_engine_and_is_monotone() {
        let p =
            Problem::discrete_min_var(discrete_instance(), Arc::new(DupQuery::new(claims(), 5.0)))
                .unwrap();
        let budgets: Vec<Budget> = (0..=5).map(Budget::absolute).collect();
        let plans = SolverRegistry::with_defaults()
            .sweep("greedy", &p, &budgets)
            .unwrap();
        assert_eq!(plans.len(), budgets.len());
        for w in plans.windows(2) {
            assert!(
                w[1].after <= w[0].after + 1e-9,
                "EV after cleaning must not grow with budget"
            );
        }
        // All plans share one `before`.
        for plan in &plans {
            assert!((plan.before - plans[0].before).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_min_var_and_max_pr_through_registry() {
        let g = GaussianInstance::centered_independent(
            vec![10.0, 20.0, 30.0],
            &[3.0, 1.0, 2.0],
            vec![1, 1, 1],
        )
        .unwrap();
        let reg = SolverRegistry::with_defaults();

        let p = Problem::gaussian_min_var(g.clone(), vec![1.0, 1.0, 1.0]).unwrap();
        let plan = reg.solve("auto", &p, Budget::absolute(2)).unwrap();
        assert_eq!(plan.strategy, "auto:optimum-knapsack");
        // Cleans the two highest-variance objects.
        assert_eq!(plan.selection.objects(), &[0, 2]);
        assert!(plan.after < plan.before);

        let p = Problem::gaussian_max_pr(g, vec![1.0, 1.0, 1.0], 0.5).unwrap();
        let plan = reg.solve("auto", &p, Budget::absolute(2)).unwrap();
        assert_eq!(plan.strategy, "auto:optimum-knapsack");
        assert_eq!(plan.selection.objects(), &[0, 2]);
        assert!(plan.after > plan.before, "surprise probability grows");
        assert!(plan.after <= 1.0);
    }

    #[test]
    fn brute_matches_optimum_on_modular_problem() {
        let p = bias_min_var_problem();
        let reg = SolverRegistry::with_defaults();
        for b in 1..=4u64 {
            let brute = reg.solve("brute", &p, Budget::absolute(b)).unwrap();
            let opt = reg
                .solve("optimum-knapsack", &p, Budget::absolute(b))
                .unwrap();
            assert!(
                (brute.after - opt.after).abs() < 1e-9,
                "budget {b}: {} vs {}",
                brute.after,
                opt.after
            );
        }
    }

    #[test]
    fn every_default_strategy_solves_something_and_respects_budget() {
        let reg = SolverRegistry::with_defaults();
        // Problems covering all (model, goal) quadrants.
        let problems = [
            bias_min_var_problem(),
            Problem::discrete_min_var(discrete_instance(), Arc::new(DupQuery::new(claims(), 5.0)))
                .unwrap(),
            Problem::discrete_max_pr(
                discrete_instance(),
                Arc::new(BiasQuery::new(claims(), 5.0)),
                0.5,
            )
            .unwrap(),
            Problem::gaussian_min_var(
                GaussianInstance::centered_independent(
                    vec![0.0; 4],
                    &[1.0, 2.0, 3.0, 4.0],
                    vec![1, 2, 1, 2],
                )
                .unwrap(),
                vec![1.0, -1.0, 1.0, 1.0],
            )
            .unwrap(),
            Problem::gaussian_max_pr(
                GaussianInstance::centered_independent(
                    vec![0.0; 4],
                    &[1.0, 2.0, 3.0, 4.0],
                    vec![1, 2, 1, 2],
                )
                .unwrap(),
                vec![1.0, -1.0, 1.0, 1.0],
                0.25,
            )
            .unwrap(),
        ];
        let budget = Budget::absolute(3);
        for name in reg.names() {
            let mut solved = 0;
            for p in &problems {
                match reg.solve(name, p, budget) {
                    Ok(plan) => {
                        solved += 1;
                        assert!(!plan.strategy.is_empty());
                        let cap = if name == "bicriteria" {
                            // Documented slack: c(T) ≤ C/(1−α), α = 0.5.
                            budget.get() * 2
                        } else {
                            budget.get()
                        };
                        assert!(
                            plan.selection.cost() <= cap,
                            "{name} on {p:?}: cost {} > {cap}",
                            plan.selection.cost()
                        );
                    }
                    Err(CoreError::StrategyUnsupported { .. }) | Err(CoreError::NotAffine) => {}
                    Err(e) => panic!("{name} on {p:?}: unexpected error {e}"),
                }
            }
            assert!(solved > 0, "{name} solved none of the canonical problems");
        }
    }
}
