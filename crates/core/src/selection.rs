//! Cleaning selections — the algorithms' output type.

use serde::{Deserialize, Serialize};

/// A set of objects chosen for cleaning, with its total cost.
///
/// Indices are kept sorted and deduplicated; the cost is maintained by the
/// constructors so downstream code never re-sums it inconsistently.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selection {
    objects: Vec<usize>,
    cost: u64,
}

impl Selection {
    /// The empty selection (clean nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds from object indices, looking costs up in `costs`.
    pub fn from_objects(objects: impl IntoIterator<Item = usize>, costs: &[u64]) -> Self {
        let mut objects: Vec<usize> = objects.into_iter().collect();
        objects.sort_unstable();
        objects.dedup();
        let cost = objects.iter().map(|&i| costs[i]).sum();
        Self { objects, cost }
    }

    /// Builds from a boolean membership mask.
    pub fn from_mask(mask: &[bool], costs: &[u64]) -> Self {
        Self::from_objects(
            mask.iter().enumerate().filter_map(|(i, &m)| m.then_some(i)),
            costs,
        )
    }

    /// The chosen object indices, sorted ascending.
    #[inline]
    pub fn objects(&self) -> &[usize] {
        &self.objects
    }

    /// Total cleaning cost of the selection.
    #[inline]
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Number of chosen objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether nothing was chosen.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Whether object `i` is selected.
    pub fn contains(&self, i: usize) -> bool {
        self.objects.binary_search(&i).is_ok()
    }

    /// Adds object `i` (no-op if present).
    pub fn insert(&mut self, i: usize, cost: u64) {
        if let Err(pos) = self.objects.binary_search(&i) {
            self.objects.insert(pos, i);
            self.cost += cost;
        }
    }

    /// Membership mask over `n` objects.
    pub fn mask(&self, n: usize) -> Vec<bool> {
        let mut m = vec![false; n];
        for &i in &self.objects {
            m[i] = true;
        }
        m
    }

    /// The complement selection over `n` objects (the `MinVar ↦ M̄inVar`
    /// mapping of Lemma 3.6 cleans the complement).
    pub fn complement(&self, n: usize, costs: &[u64]) -> Selection {
        Selection::from_objects((0..n).filter(|i| !self.contains(*i)), costs)
    }
}

impl FromIterator<(usize, u64)> for Selection {
    fn from_iter<T: IntoIterator<Item = (usize, u64)>>(iter: T) -> Self {
        let mut s = Selection::empty();
        for (i, c) in iter {
            s.insert(i, c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let costs = [5, 7, 11, 13];
        let s = Selection::from_objects([2, 0, 2], &costs);
        assert_eq!(s.objects(), &[0, 2]);
        assert_eq!(s.cost(), 16);
        assert!(s.contains(2));
        assert!(!s.contains(1));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = Selection::empty();
        s.insert(3, 10);
        s.insert(3, 10);
        s.insert(1, 4);
        assert_eq!(s.objects(), &[1, 3]);
        assert_eq!(s.cost(), 14);
    }

    #[test]
    fn mask_and_complement() {
        let costs = [1, 2, 4, 8];
        let s = Selection::from_objects([1, 3], &costs);
        assert_eq!(s.mask(4), vec![false, true, false, true]);
        let c = s.complement(4, &costs);
        assert_eq!(c.objects(), &[0, 2]);
        assert_eq!(c.cost(), 5);
        assert_eq!(s.cost() + c.cost(), 15);
    }

    #[test]
    fn from_mask_round_trips() {
        let costs = [1, 2, 4];
        let s = Selection::from_mask(&[true, false, true], &costs);
        assert_eq!(s.objects(), &[0, 2]);
        assert_eq!(Selection::from_mask(&s.mask(3), &costs), s);
    }
}
