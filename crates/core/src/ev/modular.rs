//! The Lemma 3.1 modular fast path.
//!
//! For affine `f(X) = b + Σ aᵢ Xᵢ` with pairwise-uncorrelated components,
//! `Var[f | X_T = v] = Σ_{i ∉ T} aᵢ² Var[Xᵢ]` for *every* outcome `v`, so
//! `EV(T) = Σ_{i ∉ T} aᵢ² Var[Xᵢ]` — the objective is modular and MinVar
//! becomes a knapsack problem. The per-object *benefit* of cleaning `i` is
//! exactly `wᵢ = aᵢ² Var[Xᵢ]`.

use crate::instance::{GaussianInstance, Instance};
use crate::{CoreError, Result};
use fc_claims::QueryFunction;

/// Lemma 3.1 benefits `wᵢ = aᵢ² Var[Xᵢ]` for an affine query over a
/// discrete instance. Errors with [`CoreError::NotAffine`] when the query
/// exposes no affine form.
pub fn modular_benefits<Q: QueryFunction + ?Sized>(
    instance: &Instance,
    query: &Q,
) -> Result<Vec<f64>> {
    let (weights, _b) = query
        .as_affine(instance.len())
        .ok_or(CoreError::NotAffine)?;
    Ok(weights
        .iter()
        .enumerate()
        .map(|(i, a)| a * a * instance.variance(i))
        .collect())
}

/// Benefits `wᵢ = aᵢ² σᵢ²` for an affine query over Gaussian marginals
/// (valid for MinVar when the covariance is diagonal; also the MaxPr
/// knapsack weights of Lemma 3.3 when additionally centered at `u`).
pub fn modular_benefits_gaussian(instance: &GaussianInstance, weights: &[f64]) -> Vec<f64> {
    weights
        .iter()
        .enumerate()
        .map(|(i, a)| a * a * instance.variance(i))
        .collect()
}

/// `EV(T)` under a modular objective: total benefit minus the benefit of
/// the cleaned set.
pub fn ev_modular(benefits: &[f64], cleaned: &[usize]) -> f64 {
    let total: f64 = benefits.iter().sum();
    let removed: f64 = cleaned.iter().map(|&i| benefits[i]).sum();
    (total - removed).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ev::exact::ev_exact;
    use fc_claims::{ClaimSet, Direction, LinearClaim};
    use fc_uncertain::DiscreteDist;

    fn example5_instance() -> Instance {
        Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap(),
            ],
            vec![1.0, 1.0],
            vec![1, 1],
        )
        .unwrap()
    }

    fn example5_bias() -> fc_claims::BiasQuery {
        // Q = {q°} with q° = X1 + X2; bias = X1 + X2 − 2.
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![LinearClaim::window_sum(0, 2).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        fc_claims::BiasQuery::new(cs, 2.0)
    }

    #[test]
    fn example5_weights() {
        let inst = example5_instance();
        let q = example5_bias();
        let w = modular_benefits(&inst, &q).unwrap();
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 8.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn example5_ev_choices() {
        // Cleaning X1 leaves 8/27; cleaning X2 leaves 1/2 ⇒ clean X1.
        let inst = example5_instance();
        let w = modular_benefits(&inst, &example5_bias()).unwrap();
        assert!((ev_modular(&w, &[]) - (0.5 + 8.0 / 27.0)).abs() < 1e-12);
        assert!((ev_modular(&w, &[0]) - 8.0 / 27.0).abs() < 1e-12);
        assert!((ev_modular(&w, &[1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn modular_matches_exact_for_affine() {
        let inst = example5_instance();
        let q = example5_bias();
        let w = modular_benefits(&inst, &q).unwrap();
        for cleaned in [vec![], vec![0], vec![1], vec![0, 1]] {
            let a = ev_modular(&w, &cleaned);
            let b = ev_exact(&inst, &q, &cleaned);
            assert!((a - b).abs() < 1e-10, "cleaned {cleaned:?}: {a} vs {b}");
        }
    }

    #[test]
    fn non_affine_rejected() {
        let inst = example5_instance();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![LinearClaim::window_sum(0, 2).unwrap()],
            vec![1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = fc_claims::DupQuery::new(cs, 2.0);
        assert_eq!(
            modular_benefits(&inst, &q).unwrap_err(),
            CoreError::NotAffine
        );
    }

    #[test]
    fn gaussian_benefits() {
        let g = crate::instance::GaussianInstance::centered_independent(
            vec![0.0, 0.0],
            &[2.0, 3.0],
            vec![1, 1],
        )
        .unwrap();
        let w = modular_benefits_gaussian(&g, &[1.0, -2.0]);
        assert!((w[0] - 4.0).abs() < 1e-12);
        assert!((w[1] - 36.0).abs() < 1e-12);
    }
}
