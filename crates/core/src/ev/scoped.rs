//! The Theorem 3.8 scoped `EV` engine.
//!
//! For a decomposable query `f(X) = Σ_k g_k(X)` (one term per claim, each
//! over a small scope `S_k`) with mutually independent `X_i`, `EV(T)`
//! splits into per-term and per-pair parts:
//!
//! ```text
//! EV(T) = Σ_k ( E[g_k²] − E_T[ E[g_k | X_{S_k ∩ T}]² ] )
//!       + 2 Σ_{k<k'} ( E[g_k·g_k'] − E_T[ E[g_k | X_{A∩}]·E[g_k' | X_{A∩}] ] )
//! ```
//!
//! where `A∩ = S_k ∩ S_k' ∩ T`. Under independence
//! `E[g_k·g_k'] = Σ_s Pr[s]·E[g_k | s]·E[g_k' | s]` over the *shared*
//! scope `S∩ = S_k ∩ S_k'`, so pairs with disjoint scopes contribute
//! nothing and everything is computed over scopes of size ≤ `2W` — never
//! the full joint. The `T`-independent pieces (`E[g_k²]`, the pair first
//! terms, and the shared-scope conditional-expectation tables) are
//! precomputed once in [`ScopedEv::new`].
//!
//! The engine additionally exposes **incremental** evaluation
//! ([`ScopedEv::delta`] / [`ScopedEv::apply`] over an [`EvState`]): adding
//! one object to `T` only touches the terms whose scope contains it and
//! the pairs whose *shared* scope contains it, which is what makes
//! `GreedyMinVar` scale to the Fig. 10 workloads.
//!
//! The `T`-independent precomputation is factored into [`ScopedTables`],
//! an owned, `Send + Sync` value with no borrows: build it once for an
//! (instance, query) pair, then stamp out per-thread [`ScopedEv`]
//! engines with [`ScopedEv::with_tables`]. This is what lets the
//! planner's parallel executor shard budget sweeps across workers and
//! its [`CacheStore`](crate::planner::CacheStore) persist the prefix
//! work across sessions.

use crate::instance::Instance;
use fc_claims::DecomposableQuery;
use fc_uncertain::DiscreteDist;
use std::sync::Arc;

/// Iterates the outcome space of `dists` (last axis fastest), passing
/// per-axis positions, values, and the product probability. Odometer
/// buffers are the caller's so hot paths can reuse them across calls.
fn for_each_pos_outcome_with(
    dists: &[&DiscreteDist],
    pos: &mut Vec<usize>,
    values: &mut Vec<f64>,
    prefix: &mut Vec<f64>,
    mut f: impl FnMut(&[usize], &[f64], f64),
) {
    let k = dists.len();
    if k == 0 {
        f(&[], &[], 1.0);
        return;
    }
    pos.clear();
    pos.resize(k, 0);
    values.clear();
    values.resize(k, 0.0);
    prefix.clear();
    prefix.resize(k + 1, 0.0);
    prefix[0] = 1.0;
    for j in 0..k {
        values[j] = dists[j].values()[0];
        prefix[j + 1] = prefix[j] * dists[j].probs()[0];
    }
    loop {
        f(pos, values, prefix[k]);
        let mut j = k;
        loop {
            if j == 0 {
                return;
            }
            j -= 1;
            pos[j] += 1;
            if pos[j] < dists[j].support_size() {
                break;
            }
            pos[j] = 0;
        }
        for t in j..k {
            values[t] = dists[t].values()[pos[t]];
            prefix[t + 1] = prefix[t] * dists[t].probs()[pos[t]];
        }
    }
}

/// Arena-style scratch for the scoped engine's per-call allocations.
///
/// [`ScopedEv::delta`] / [`ScopedEv::apply`] call `term_second` and
/// `pair_second` thousands of times per greedy solve, and each call
/// needs half a dozen small buffers; [`ScopedTables::build`] needs the
/// same odometer and accumulator buffers per term and pair. A
/// `ScopedScratch` owns all of them, is recycled through a thread-local
/// pool ([`ScopedScratch::take`] / [`ScopedScratch::recycle`]), and is
/// held by every engine for its lifetime — so a warm worker's repeated
/// builds and solves allocate approximately nothing.
///
/// Reuse is invisible in the output: every user zeroes exactly the
/// range it reads (`clear` + `resize`) and iterates in the same order
/// as a fresh allocation would.
#[derive(Debug, Default)]
pub struct ScopedScratch {
    keep: Vec<bool>,
    kept_axes: Vec<usize>,
    num: Vec<f64>,
    den: Vec<f64>,
    ared: Vec<f64>,
    bred: Vec<f64>,
    pkept: Vec<f64>,
    pos: Vec<usize>,
    values: Vec<f64>,
    prefix: Vec<f64>,
}

thread_local! {
    static SCRATCH_POOL: std::cell::RefCell<Vec<ScopedScratch>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl ScopedScratch {
    /// Takes a scratch from this thread's pool (fresh if empty).
    pub fn take() -> Self {
        SCRATCH_POOL
            .with(|p| p.borrow_mut().pop())
            .unwrap_or_default()
    }

    /// Returns a scratch to this thread's pool for the next taker.
    pub fn recycle(self) {
        SCRATCH_POOL.with(|p| p.borrow_mut().push(self));
    }
}

/// Per-term metadata.
struct TermInfo {
    /// Sorted object ids in the term's scope.
    scope: Vec<usize>,
    /// `E[g_k²]` (T-independent).
    e_g2: f64,
}

/// Per-pair metadata for claim pairs with intersecting scopes.
struct PairInfo {
    /// Shared scope `S∩` (sorted object ids).
    shared: Vec<usize>,
    /// Support size per shared axis.
    shared_sizes: Vec<usize>,
    /// Pmf per shared axis.
    shared_probs: Vec<Vec<f64>>,
    /// `E[g_k | shared = s]`, flat over the shared axes.
    a: Vec<f64>,
    /// `E[g_k' | shared = s]`, flat over the shared axes.
    b: Vec<f64>,
    /// `E[g_k · g_k'] = Σ_s Pr[s] a[s] b[s]` (T-independent).
    first: f64,
}

/// Incremental evaluation state for a growing cleaned set.
#[derive(Debug, Clone)]
pub struct EvState {
    cleaned: Vec<bool>,
    term_sec: Vec<f64>,
    pair_sec: Vec<f64>,
    ev: f64,
}

impl EvState {
    /// Current `EV(T)`.
    #[inline]
    pub fn ev(&self) -> f64 {
        self.ev
    }

    /// Whether object `i` is in the cleaned set.
    #[inline]
    pub fn is_cleaned(&self, i: usize) -> bool {
        self.cleaned[i]
    }
}

/// The owned, `T`-independent precomputation of the scoped engine: per-
/// term `E[g²]` values, shared-scope conditional-expectation tables, and
/// the object → term/pair adjacency lists.
///
/// `ScopedTables` holds **no borrows** and is `Send + Sync`, so one
/// build can back many [`ScopedEv`] engines — per-worker engines in a
/// sharded sweep, or engines in later sessions served from a
/// [`CacheStore`](crate::planner::CacheStore). The tables are only
/// meaningful for the exact (instance, query) pair they were built
/// from; [`ScopedEv::with_tables`] checks the dimensions it can
/// (object and term counts) but the caller vouches for the rest.
pub struct ScopedTables {
    /// Number of objects in the instance the tables were built from.
    n: usize,
    terms: Vec<TermInfo>,
    pairs: Vec<(usize, usize, PairInfo)>,
    /// Terms whose scope contains each object.
    term_of_obj: Vec<Vec<u32>>,
    /// Pairs whose *shared* scope contains each object.
    pair_of_obj: Vec<Vec<u32>>,
    /// Query-term evaluations spent building the tables.
    build_evals: u64,
}

impl ScopedTables {
    /// Precomputes the T-independent quantities. Cost is
    /// `O(Σ_k V^{|S_k|} + Σ_{sharing pairs} V^{|S_k|})`. Temp buffers
    /// come from the thread-local [`ScopedScratch`] pool, so repeated
    /// builds on a warm worker allocate only the escaping tables.
    pub fn build<Q: DecomposableQuery + ?Sized>(instance: &Instance, query: &Q) -> Self {
        let mut scratch = ScopedScratch::take();
        let tables = Self::build_with_scratch(instance, query, &mut scratch);
        scratch.recycle();
        tables
    }

    /// [`ScopedTables::build`] with caller-supplied scratch buffers.
    pub fn build_with_scratch<Q: DecomposableQuery + ?Sized>(
        instance: &Instance,
        query: &Q,
        scratch: &mut ScopedScratch,
    ) -> Self {
        let n = instance.len();
        let m = query.num_terms();
        let joint = instance.joint();
        let mut build_evals = 0u64;
        let mut dists: Vec<&DiscreteDist> = Vec::new();

        // --- per-term: E[g²] ---
        let mut terms = Vec::with_capacity(m);
        let mut term_of_obj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for k in 0..m {
            let scope = query.term_objects(k).to_vec();
            for &o in &scope {
                term_of_obj[o].push(k as u32);
            }
            dists.clear();
            dists.extend(scope.iter().map(|&i| joint.dist(i)));
            let mut e_g2 = 0.0;
            for_each_pos_outcome_with(
                &dists,
                &mut scratch.pos,
                &mut scratch.values,
                &mut scratch.prefix,
                |_, vals, p| {
                    let g = query.eval_term(k, vals);
                    build_evals += 1;
                    e_g2 += p * g * g;
                },
            );
            terms.push(TermInfo { scope, e_g2 });
        }

        // --- discover sharing pairs via the per-object term lists ---
        let mut pair_set: Vec<(usize, usize)> = Vec::new();
        for list in &term_of_obj {
            for i in 0..list.len() {
                for j in (i + 1)..list.len() {
                    let (a, b) = (list[i] as usize, list[j] as usize);
                    pair_set.push((a.min(b), a.max(b)));
                }
            }
        }
        pair_set.sort_unstable();
        pair_set.dedup();

        // --- per-pair: shared tables and first terms ---
        let mut pairs = Vec::with_capacity(pair_set.len());
        let mut pair_of_obj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (pidx, &(k1, k2)) in pair_set.iter().enumerate() {
            let shared: Vec<usize> = terms[k1]
                .scope
                .iter()
                .copied()
                .filter(|o| terms[k2].scope.binary_search(o).is_ok())
                .collect();
            debug_assert!(!shared.is_empty());
            for &o in &shared {
                pair_of_obj[o].push(pidx as u32);
            }
            let shared_sizes: Vec<usize> = shared
                .iter()
                .map(|&o| joint.dist(o).support_size())
                .collect();
            let shared_probs: Vec<Vec<f64>> = shared
                .iter()
                .map(|&o| joint.dist(o).probs().to_vec())
                .collect();
            let a = conditional_expectation_table(
                instance,
                query,
                k1,
                &terms[k1].scope,
                &shared,
                &mut build_evals,
                scratch,
            );
            let b = conditional_expectation_table(
                instance,
                query,
                k2,
                &terms[k2].scope,
                &shared,
                &mut build_evals,
                scratch,
            );
            let mut first = 0.0;
            let flat = flat_probs(&shared_sizes, &shared_probs);
            for ((pa, pb), pf) in a.iter().zip(&b).zip(&flat) {
                first += pf * pa * pb;
            }
            pairs.push((
                k1,
                k2,
                PairInfo {
                    shared,
                    shared_sizes,
                    shared_probs,
                    a,
                    b,
                    first,
                },
            ));
        }

        Self {
            n,
            terms,
            pairs,
            term_of_obj,
            pair_of_obj,
            build_evals,
        }
    }

    /// Number of objects in the instance the tables were built from.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tables cover zero objects (never true once built
    /// from a validated instance).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of decomposed terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of scope-sharing claim pairs.
    pub fn num_sharing_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Query-term evaluations spent building the tables — the work a
    /// cache hit saves.
    pub fn build_evals(&self) -> u64 {
        self.build_evals
    }

    /// Appends a byte-exact encoding of the tables to `out` (floats by
    /// bit pattern, so a decode → re-encode round trip is the identity
    /// and rehydrated engines produce byte-identical plans). The
    /// format is the payload of the
    /// [`CacheStore` snapshot](crate::planner::cache::snapshot); the
    /// adjacency lists are derivable and not encoded.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let put_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        let put_f64 = |out: &mut Vec<u8>, v: f64| out.extend_from_slice(&v.to_bits().to_le_bytes());
        let put_ids = |out: &mut Vec<u8>, ids: &[usize]| {
            put_u64(out, ids.len() as u64);
            for &id in ids {
                put_u64(out, id as u64);
            }
        };
        let put_f64s = |out: &mut Vec<u8>, vs: &[f64]| {
            put_u64(out, vs.len() as u64);
            for &v in vs {
                put_f64(out, v);
            }
        };
        put_u64(out, self.n as u64);
        put_u64(out, self.build_evals);
        put_u64(out, self.terms.len() as u64);
        for term in &self.terms {
            put_ids(out, &term.scope);
            put_f64(out, term.e_g2);
        }
        put_u64(out, self.pairs.len() as u64);
        for (k1, k2, pair) in &self.pairs {
            put_u64(out, *k1 as u64);
            put_u64(out, *k2 as u64);
            put_ids(out, &pair.shared);
            put_ids(out, &pair.shared_sizes);
            for probs in &pair.shared_probs {
                put_f64s(out, probs);
            }
            put_f64s(out, &pair.a);
            put_f64s(out, &pair.b);
            put_f64(out, pair.first);
        }
    }

    /// Decodes tables previously written by [`ScopedTables::encode_into`]
    /// from the front of `bytes`; returns the tables and the number of
    /// bytes consumed. Structural invariants (sorted scopes, index
    /// bounds, table dimensions) are re-validated, so corrupt input is
    /// a typed error — never a panic and never tables that would pass
    /// [`ScopedEv::with_tables`]'s checks while holding garbage. The
    /// adjacency lists are rebuilt from the decoded scopes.
    pub fn decode_from(bytes: &[u8]) -> Result<(Self, usize), &'static str> {
        let mut r = TableReader { bytes, pos: 0 };
        // Generous object-count ceiling: bounds the adjacency-list
        // allocation a corrupt prefix could otherwise demand.
        let n = r.usize_bounded(1 << 22)?;
        let build_evals = r.u64()?;

        let m = r.len(24)?;
        let mut terms = Vec::with_capacity(m);
        let mut term_of_obj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for k in 0..m {
            let scope = r.sorted_ids(n)?;
            for &o in &scope {
                term_of_obj[o].push(k as u32);
            }
            let e_g2 = r.f64()?;
            terms.push(TermInfo { scope, e_g2 });
        }

        let p = r.len(64)?;
        let mut pairs = Vec::with_capacity(p);
        let mut pair_of_obj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for pidx in 0..p {
            let k1 = r.usize_bounded(m as u64)?;
            let k2 = r.usize_bounded(m as u64)?;
            if k1 >= k2 {
                return Err("pair term indices out of order");
            }
            let shared = r.sorted_ids(n)?;
            if shared.is_empty() {
                return Err("pair with empty shared scope");
            }
            for &o in &shared {
                pair_of_obj[o].push(pidx as u32);
            }
            let shared_sizes = r.sizes(shared.len())?;
            let mut cells = 1usize;
            for &size in &shared_sizes {
                cells = cells
                    .checked_mul(size)
                    .filter(|&c| c <= 1 << 28)
                    .ok_or("pair table too large")?;
            }
            let mut shared_probs = Vec::with_capacity(shared_sizes.len());
            for &size in &shared_sizes {
                shared_probs.push(r.f64s(size)?);
            }
            let a = r.f64s(cells)?;
            let b = r.f64s(cells)?;
            let first = r.f64()?;
            pairs.push((
                k1,
                k2,
                PairInfo {
                    shared,
                    shared_sizes,
                    shared_probs,
                    a,
                    b,
                    first,
                },
            ));
        }

        Ok((
            Self {
                n,
                terms,
                pairs,
                term_of_obj,
                pair_of_obj,
                build_evals,
            },
            r.pos,
        ))
    }
}

/// Bounded little-endian reader for [`ScopedTables::decode_from`]:
/// every read is checked against the remaining input, so truncation
/// and wild length prefixes surface as errors, not panics or huge
/// allocations.
struct TableReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl TableReader<'_> {
    fn u64(&mut self) -> Result<u64, &'static str> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err("input truncated");
        };
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(raw))
    }

    fn f64(&mut self) -> Result<f64, &'static str> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A count whose encoded elements occupy at least `min_bytes`
    /// each — bounding it by the remaining input rejects absurd
    /// prefixes before any allocation.
    fn len(&mut self, min_bytes: usize) -> Result<usize, &'static str> {
        let v = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) / min_bytes.max(1);
        if v as usize > remaining {
            return Err("length prefix exceeds input");
        }
        Ok(v as usize)
    }

    fn usize_bounded(&mut self, bound: u64) -> Result<usize, &'static str> {
        let v = self.u64()?;
        if v >= bound {
            return Err("index out of bounds");
        }
        Ok(v as usize)
    }

    /// A strictly increasing id list with ids `< n`.
    fn sorted_ids(&mut self, n: usize) -> Result<Vec<usize>, &'static str> {
        let len = self.len(8)?;
        let mut ids = Vec::with_capacity(len);
        for _ in 0..len {
            let id = self.u64()?;
            if id >= n as u64 {
                return Err("object id out of bounds");
            }
            if ids.last().is_some_and(|&last| last >= id as usize) {
                return Err("object ids not strictly increasing");
            }
            ids.push(id as usize);
        }
        Ok(ids)
    }

    /// Exactly `expect` nonzero axis sizes.
    fn sizes(&mut self, expect: usize) -> Result<Vec<usize>, &'static str> {
        let len = self.len(8)?;
        if len != expect {
            return Err("axis count mismatch");
        }
        let mut sizes = Vec::with_capacity(len);
        for _ in 0..len {
            let size = self.u64()?;
            if size == 0 || size > 1 << 28 {
                return Err("axis size out of range");
            }
            sizes.push(size as usize);
        }
        Ok(sizes)
    }

    /// Exactly `expect` floats (length prefix re-validated).
    fn f64s(&mut self, expect: usize) -> Result<Vec<f64>, &'static str> {
        let len = self.len(8)?;
        if len != expect {
            return Err("table length mismatch");
        }
        let mut vs = Vec::with_capacity(len);
        for _ in 0..len {
            vs.push(self.f64()?);
        }
        Ok(vs)
    }
}

/// The scoped `EV` engine (see module docs).
pub struct ScopedEv<'a, Q: DecomposableQuery + ?Sized> {
    instance: &'a Instance,
    query: &'a Q,
    tables: Arc<ScopedTables>,
    /// Objective-evaluation counter (full `EV` computations and
    /// incremental deltas), surfaced as planner diagnostics.
    evals: std::cell::Cell<u64>,
    /// Pooled scratch for [`term_second`](Self::term_second) /
    /// [`pair_second`](Self::pair_second); recycled on drop.
    scratch: std::cell::RefCell<ScopedScratch>,
    /// Scope-dist buffer (lifetime-bound, so per-engine not pooled).
    dist_buf: std::cell::RefCell<Vec<&'a DiscreteDist>>,
}

impl<Q: DecomposableQuery + ?Sized> Drop for ScopedEv<'_, Q> {
    fn drop(&mut self) {
        std::mem::take(&mut *self.scratch.get_mut()).recycle();
    }
}

impl<'a, Q: DecomposableQuery + ?Sized> ScopedEv<'a, Q> {
    /// Builds the engine, precomputing its [`ScopedTables`] from
    /// scratch.
    pub fn new(instance: &'a Instance, query: &'a Q) -> Self {
        Self::with_tables(
            instance,
            query,
            Arc::new(ScopedTables::build(instance, query)),
        )
    }

    /// Builds the engine around previously computed tables, skipping
    /// the expensive precomputation. The tables **must** have been
    /// built from an identical (instance, query) pair — the dimensions
    /// are checked, the contents are the caller's contract (this is the
    /// fingerprint-collision caveat of the planner's
    /// [`CacheStore`](crate::planner::CacheStore)).
    ///
    /// # Panics
    /// When the table dimensions do not match `instance`/`query`.
    pub fn with_tables(instance: &'a Instance, query: &'a Q, tables: Arc<ScopedTables>) -> Self {
        assert_eq!(
            tables.n,
            instance.len(),
            "ScopedTables built for a different instance size"
        );
        assert_eq!(
            tables.terms.len(),
            query.num_terms(),
            "ScopedTables built for a different query shape"
        );
        Self {
            instance,
            query,
            tables,
            evals: std::cell::Cell::new(0),
            scratch: std::cell::RefCell::new(ScopedScratch::take()),
            dist_buf: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// The shared precomputed tables (clone the `Arc` to seed further
    /// engines over the same instance and query).
    pub fn tables(&self) -> &Arc<ScopedTables> {
        &self.tables
    }

    /// Objective evaluations (full `EV` computations plus incremental
    /// deltas) performed since construction or the last
    /// [`Self::reset_eval_count`].
    pub fn eval_count(&self) -> u64 {
        self.evals.get()
    }

    /// Resets the evaluation counter (e.g. between sweep points).
    pub fn reset_eval_count(&self) {
        self.evals.set(0);
    }

    #[inline]
    fn count_eval(&self) {
        self.evals.set(self.evals.get() + 1);
    }

    /// Counts an evaluation that was served from a memo (sweep
    /// resumption) instead of computed here. Keeping the counter in
    /// lockstep with from-scratch runs is part of the plan
    /// byte-identity contract — diagnostics compare equal either way.
    #[inline]
    pub fn count_cached_eval(&self) {
        self.count_eval();
    }

    /// Number of decomposed terms.
    pub fn num_terms(&self) -> usize {
        self.tables.terms.len()
    }

    /// Number of scope-sharing claim pairs.
    pub fn num_sharing_pairs(&self) -> usize {
        self.tables.pairs.len()
    }

    /// `E_T[E[g_k | X_{S_k∩T}]²]` for the cleaned mask, with `flip`
    /// optionally overriding one object's cleaned status.
    fn term_second(&self, k: usize, cleaned: &[bool], flip: Option<(usize, bool)>) -> f64 {
        let scope = &self.tables.terms[k].scope;
        let joint = self.instance.joint();
        let mut dist_buf = self.dist_buf.borrow_mut();
        dist_buf.clear();
        dist_buf.extend(scope.iter().map(|&i| joint.dist(i)));
        let dists: &[&DiscreteDist] = &dist_buf;
        let mut scratch = self.scratch.borrow_mut();
        let ScopedScratch {
            keep,
            kept_axes,
            num,
            den,
            pos,
            values,
            prefix,
            ..
        } = &mut *scratch;
        keep.clear();
        keep.extend(scope.iter().map(|&o| match flip {
            Some((fo, fv)) if fo == o => fv,
            _ => cleaned[o],
        }));
        kept_axes.clear();
        kept_axes.extend((0..scope.len()).filter(|&a| keep[a]));
        let out_len: usize = kept_axes.iter().map(|&a| dists[a].support_size()).product();
        num.clear();
        num.resize(out_len, 0.0); // Σ p_total · g   per bucket
        den.clear();
        den.resize(out_len, 0.0); // Σ p_total       per bucket (= P_kept)
        let q = self.query;
        for_each_pos_outcome_with(dists, pos, values, prefix, |pos, vals, p| {
            let mut oi = 0usize;
            for &a in kept_axes.iter() {
                oi = oi * dists[a].support_size() + pos[a];
            }
            num[oi] += p * q.eval_term(k, vals);
            den[oi] += p;
        });
        let mut acc = 0.0;
        for (nv, dv) in num.iter().zip(den.iter()) {
            if *dv > 0.0 {
                acc += nv * nv / dv; // P_kept · E[g|kept]²
            }
        }
        acc
    }

    /// `E_T[E[g_k | A∩]·E[g_k' | A∩]]` for pair `p` under the cleaned
    /// mask (with optional one-object override).
    #[allow(clippy::needless_range_loop)] // axis arithmetic mirrors the math
    fn pair_second(&self, p: usize, cleaned: &[bool], flip: Option<(usize, bool)>) -> f64 {
        let info = &self.tables.pairs[p].2;
        let axes = info.shared.len();
        let mut scratch = self.scratch.borrow_mut();
        let ScopedScratch {
            keep,
            kept_axes,
            ared,
            bred,
            pkept,
            pos,
            ..
        } = &mut *scratch;
        keep.clear();
        keep.extend(info.shared.iter().map(|&o| match flip {
            Some((fo, fv)) if fo == o => fv,
            _ => cleaned[o],
        }));
        kept_axes.clear();
        for a in 0..axes {
            if keep[a] {
                kept_axes.push(a);
            }
        }
        let out_len: usize = kept_axes.iter().map(|&a| info.shared_sizes[a]).product();
        ared.clear();
        ared.resize(out_len, 0.0);
        bred.clear();
        bred.resize(out_len, 0.0);
        pkept.clear();
        pkept.resize(out_len, 0.0);
        // Odometer over the shared axes.
        pos.clear();
        pos.resize(axes, 0);
        let mut idx = 0usize;
        loop {
            let mut oi = 0usize;
            let mut p_all = 1.0;
            for a in 0..axes {
                p_all *= info.shared_probs[a][pos[a]];
            }
            for &a in kept_axes.iter() {
                oi = oi * info.shared_sizes[a] + pos[a];
            }
            ared[oi] += p_all * info.a[idx];
            bred[oi] += p_all * info.b[idx];
            pkept[oi] += p_all;
            // increment
            idx += 1;
            let mut j = axes;
            loop {
                if j == 0 {
                    let mut acc = 0.0;
                    for i in 0..out_len {
                        if pkept[i] > 0.0 {
                            acc += ared[i] * bred[i] / pkept[i];
                        }
                    }
                    return acc;
                }
                j -= 1;
                pos[j] += 1;
                if pos[j] < info.shared_sizes[j] {
                    break;
                }
                pos[j] = 0;
            }
        }
    }

    /// Stateless `EV(T)` for a cleaned mask.
    pub fn ev_of_mask(&self, cleaned: &[bool]) -> f64 {
        self.count_eval();
        let mut ev = 0.0;
        for k in 0..self.tables.terms.len() {
            ev += self.tables.terms[k].e_g2 - self.term_second(k, cleaned, None);
        }
        for p in 0..self.tables.pairs.len() {
            ev += 2.0 * (self.tables.pairs[p].2.first - self.pair_second(p, cleaned, None));
        }
        ev.max(0.0)
    }

    /// Stateless `EV(T)` for a cleaned index list.
    pub fn ev_of(&self, cleaned: &[usize]) -> f64 {
        let mut mask = vec![false; self.instance.len()];
        for &i in cleaned {
            mask[i] = true;
        }
        self.ev_of_mask(&mask)
    }

    /// Builds the incremental state for a cleaned set.
    pub fn state_for(&self, cleaned: &[usize]) -> EvState {
        let mut mask = vec![false; self.instance.len()];
        for &i in cleaned {
            mask[i] = true;
        }
        let term_sec: Vec<f64> = (0..self.tables.terms.len())
            .map(|k| self.term_second(k, &mask, None))
            .collect();
        let pair_sec: Vec<f64> = (0..self.tables.pairs.len())
            .map(|p| self.pair_second(p, &mask, None))
            .collect();
        let mut ev = 0.0;
        for (k, t) in self.tables.terms.iter().enumerate() {
            ev += t.e_g2 - term_sec[k];
        }
        for (p, (_, _, info)) in self.tables.pairs.iter().enumerate() {
            ev += 2.0 * (info.first - pair_sec[p]);
        }
        EvState {
            cleaned: mask,
            term_sec,
            pair_sec,
            ev: ev.max(0.0),
        }
    }

    /// The empty-set state (`T = ∅`).
    pub fn initial_state(&self) -> EvState {
        self.state_for(&[])
    }

    /// `EV(T) − EV(T ∪ {i})` — the MinVar benefit of additionally
    /// cleaning `i`. Touches only terms/pairs involving `i`; `O(local)`.
    pub fn delta(&self, st: &EvState, i: usize) -> f64 {
        if st.cleaned[i] {
            return 0.0;
        }
        self.count_eval();
        let mut d = 0.0;
        for &k in &self.tables.term_of_obj[i] {
            let k = k as usize;
            d += self.term_second(k, &st.cleaned, Some((i, true))) - st.term_sec[k];
        }
        for &p in &self.tables.pair_of_obj[i] {
            let p = p as usize;
            d += 2.0 * (self.pair_second(p, &st.cleaned, Some((i, true))) - st.pair_sec[p]);
        }
        d.max(0.0)
    }

    /// `EV(T \ {i}) − EV(T)` — the EV increase from *removing* `i` from
    /// the cleaned set (used by the submodular `Best` marginals).
    pub fn removal_delta(&self, st: &EvState, i: usize) -> f64 {
        if !st.cleaned[i] {
            return 0.0;
        }
        self.count_eval();
        let mut d = 0.0;
        for &k in &self.tables.term_of_obj[i] {
            let k = k as usize;
            d += st.term_sec[k] - self.term_second(k, &st.cleaned, Some((i, false)));
        }
        for &p in &self.tables.pair_of_obj[i] {
            let p = p as usize;
            d += 2.0 * (st.pair_sec[p] - self.pair_second(p, &st.cleaned, Some((i, false))));
        }
        d.max(0.0)
    }

    /// State with *every* object cleaned (`EV = 0`).
    pub fn full_state(&self) -> EvState {
        let all: Vec<usize> = (0..self.instance.len()).collect();
        self.state_for(&all)
    }

    /// Commits object `i` into the state, updating the affected terms.
    pub fn apply(&self, st: &mut EvState, i: usize) {
        if st.cleaned[i] {
            return;
        }
        st.cleaned[i] = true;
        for &k in &self.tables.term_of_obj[i] {
            let k = k as usize;
            let new_sec = self.term_second(k, &st.cleaned, None);
            st.ev -= new_sec - st.term_sec[k];
            st.term_sec[k] = new_sec;
        }
        for &p in &self.tables.pair_of_obj[i] {
            let p = p as usize;
            let new_sec = self.pair_second(p, &st.cleaned, None);
            st.ev -= 2.0 * (new_sec - st.pair_sec[p]);
            st.pair_sec[p] = new_sec;
        }
        st.ev = st.ev.max(0.0);
    }

    /// Objects that can possibly reduce `EV` (those referenced by any
    /// term scope).
    pub fn relevant_objects(&self) -> Vec<usize> {
        (0..self.instance.len())
            .filter(|&i| !self.tables.term_of_obj[i].is_empty())
            .collect()
    }

    /// Objects whose benefit may have changed after cleaning `i`
    /// (scope-mates through shared terms or pairs), excluding `i` itself.
    pub fn affected_by(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for &k in &self.tables.term_of_obj[i] {
            out.extend(self.tables.terms[k as usize].scope.iter().copied());
        }
        for &p in &self.tables.pair_of_obj[i] {
            let (k1, k2, _) = &self.tables.pairs[p as usize];
            out.extend(self.tables.terms[*k1].scope.iter().copied());
            out.extend(self.tables.terms[*k2].scope.iter().copied());
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&o| o != i);
        out
    }
}

/// `E[g_k | shared = s]` flat over the shared axes (in shared order).
/// Only the returned table is allocated; all temporaries live in
/// `scratch`.
#[allow(clippy::too_many_arguments)] // internal builder helper
fn conditional_expectation_table<Q: DecomposableQuery + ?Sized>(
    instance: &Instance,
    query: &Q,
    k: usize,
    scope: &[usize],
    shared: &[usize],
    evals: &mut u64,
    scratch: &mut ScopedScratch,
) -> Vec<f64> {
    let joint = instance.joint();
    let ScopedScratch {
        kept_axes: shared_axes,
        den,
        pos,
        values,
        prefix,
        ..
    } = scratch;
    let dists: Vec<&DiscreteDist> = scope.iter().map(|&i| joint.dist(i)).collect();
    // Axis index within the scope for each shared object.
    shared_axes.clear();
    shared_axes.extend(
        shared
            .iter()
            .map(|o| scope.binary_search(o).expect("shared ⊆ scope")),
    );
    let out_len: usize = shared_axes
        .iter()
        .map(|&a| dists[a].support_size())
        .product();
    let mut num = vec![0.0f64; out_len];
    den.clear();
    den.resize(out_len, 0.0);
    for_each_pos_outcome_with(&dists, pos, values, prefix, |pos, vals, p| {
        let mut oi = 0usize;
        for &a in shared_axes.iter() {
            oi = oi * dists[a].support_size() + pos[a];
        }
        num[oi] += p * query.eval_term(k, vals);
        *evals += 1;
        den[oi] += p;
    });
    for (nv, dv) in num.iter_mut().zip(den.iter()) {
        if *dv > 0.0 {
            *nv /= dv;
        }
    }
    num
}

/// Flat joint pmf over the given axes (row-major, last axis fastest).
fn flat_probs(sizes: &[usize], probs: &[Vec<f64>]) -> Vec<f64> {
    let total: usize = sizes.iter().product();
    let mut out = vec![1.0f64; total];
    if total == 0 {
        return out;
    }
    let mut stride = total;
    for (a, &sz) in sizes.iter().enumerate() {
        stride /= sz;
        for (idx, o) in out.iter_mut().enumerate() {
            let pos = (idx / stride) % sz;
            *o *= probs[a][pos];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ev::exact::ev_exact;
    use fc_claims::query::IndicatorSense;
    use fc_claims::{
        BiasQuery, ClaimSet, Direction, DupQuery, FragQuery, LinearClaim, ThresholdIndicatorQuery,
    };
    use fc_uncertain::{rng_from_seed, DiscreteDist};
    use rand::Rng;

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = rng_from_seed(seed);
        let dists = (0..n)
            .map(|_| {
                let k = rng.gen_range(1..=4);
                let vals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..10.0)).collect();
                let weights: Vec<f64> = (0..k).map(|_| rng.gen_range(0.1..1.0)).collect();
                DiscreteDist::from_weights(vals.into_iter().zip(weights)).unwrap()
            })
            .collect::<Vec<_>>();
        let current = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let costs = (0..n).map(|_| rng.gen_range(1..10)).collect();
        Instance::new(dists, current, costs).unwrap()
    }

    /// Overlapping claims so the pair machinery is exercised.
    fn overlapping_claimset() -> ClaimSet {
        ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![
                LinearClaim::window_sum(0, 2).unwrap(),
                LinearClaim::window_sum(1, 2).unwrap(),
                LinearClaim::window_sum(2, 2).unwrap(),
            ],
            vec![1.0, 1.0, 1.0],
            Direction::HigherIsStronger,
        )
        .unwrap()
    }

    #[test]
    fn scoped_matches_exact_for_dup() {
        let inst = random_instance(4, 7);
        let q = DupQuery::new(overlapping_claimset(), 8.0);
        let eng = ScopedEv::new(&inst, &q);
        assert!(eng.num_sharing_pairs() >= 2);
        for cleaned in [
            vec![],
            vec![0],
            vec![1],
            vec![3],
            vec![0, 2],
            vec![1, 2],
            vec![0, 1, 2, 3],
        ] {
            let a = eng.ev_of(&cleaned);
            let b = ev_exact(&inst, &q, &cleaned);
            assert!(
                (a - b).abs() < 1e-10,
                "cleaned {cleaned:?}: scoped {a} vs exact {b}"
            );
        }
    }

    #[test]
    fn scoped_matches_exact_for_frag() {
        let inst = random_instance(4, 13);
        let q = FragQuery::new(overlapping_claimset(), 9.0);
        let eng = ScopedEv::new(&inst, &q);
        for cleaned in [vec![], vec![2], vec![0, 3], vec![1, 2, 3]] {
            let a = eng.ev_of(&cleaned);
            let b = ev_exact(&inst, &q, &cleaned);
            assert!(
                (a - b).abs() < 1e-9,
                "cleaned {cleaned:?}: scoped {a} vs exact {b}"
            );
        }
    }

    #[test]
    fn scoped_matches_exact_for_bias() {
        let inst = random_instance(4, 21);
        let q = BiasQuery::new(overlapping_claimset(), 5.0);
        let eng = ScopedEv::new(&inst, &q);
        for cleaned in [vec![], vec![1], vec![0, 2], vec![0, 1, 2, 3]] {
            let a = eng.ev_of(&cleaned);
            let b = ev_exact(&inst, &q, &cleaned);
            assert!(
                (a - b).abs() < 1e-9,
                "cleaned {cleaned:?}: scoped {a} vs exact {b}"
            );
        }
    }

    #[test]
    fn scoped_matches_exact_with_uncertain_original() {
        // Reference::UncertainOriginal makes every scope include q°'s
        // objects — all pairs share.
        let inst = random_instance(4, 33);
        let q = DupQuery::relative_to_original(overlapping_claimset());
        let eng = ScopedEv::new(&inst, &q);
        assert_eq!(eng.num_sharing_pairs(), 3);
        for cleaned in [vec![], vec![0], vec![2, 3]] {
            let a = eng.ev_of(&cleaned);
            let b = ev_exact(&inst, &q, &cleaned);
            assert!(
                (a - b).abs() < 1e-9,
                "cleaned {cleaned:?}: scoped {a} vs exact {b}"
            );
        }
    }

    #[test]
    fn example6_via_scoped() {
        let inst = Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap(),
            ],
            vec![1.0, 1.0],
            vec![1, 1],
        )
        .unwrap();
        let q = ThresholdIndicatorQuery::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            11.0 / 12.0,
            IndicatorSense::Below,
        );
        let eng = ScopedEv::new(&inst, &q);
        assert!((eng.ev_of(&[]) - 26.0 / 225.0).abs() < 1e-12);
        assert!((eng.ev_of(&[0]) - 4.0 / 45.0).abs() < 1e-12);
        assert!((eng.ev_of(&[1]) - 2.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_state_matches_stateless() {
        let inst = random_instance(6, 5);
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 3).unwrap(),
            vec![
                LinearClaim::window_sum(0, 3).unwrap(),
                LinearClaim::window_sum(2, 3).unwrap(),
                LinearClaim::window_sum(3, 3).unwrap(),
            ],
            vec![1.0, 2.0, 1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = DupQuery::new(cs, 12.0);
        let eng = ScopedEv::new(&inst, &q);
        let mut st = eng.initial_state();
        assert!((st.ev() - eng.ev_of(&[])).abs() < 1e-12);
        let order = [4usize, 1, 5, 0];
        let mut cleaned: Vec<usize> = Vec::new();
        for &i in &order {
            let d = eng.delta(&st, i);
            let before = st.ev();
            eng.apply(&mut st, i);
            cleaned.push(i);
            let direct = eng.ev_of(&cleaned);
            assert!(
                (st.ev() - direct).abs() < 1e-9,
                "after {cleaned:?}: state {} vs direct {direct}",
                st.ev()
            );
            assert!(
                (before - st.ev() - d).abs() < 1e-9,
                "delta mismatch at {i}: predicted {d}, actual {}",
                before - st.ev()
            );
        }
    }

    #[test]
    fn monotone_and_submodular_on_random_instances() {
        // Lemma 3.4 (monotone) + Lemma 3.5 (formal-sense submodularity:
        // since EV is non-increasing, marginal *reductions* grow with T)
        // spot checks.
        for seed in [1u64, 2, 3] {
            let inst = random_instance(5, seed);
            let cs = ClaimSet::new(
                LinearClaim::window_sum(0, 2).unwrap(),
                vec![
                    LinearClaim::window_sum(0, 2).unwrap(),
                    LinearClaim::window_sum(1, 2).unwrap(),
                    LinearClaim::window_sum(3, 2).unwrap(),
                ],
                vec![1.0, 1.0, 1.0],
                Direction::HigherIsStronger,
            )
            .unwrap();
            let q = DupQuery::new(cs, 7.0);
            let eng = ScopedEv::new(&inst, &q);
            // Monotone: EV(T) ≥ EV(T ∪ {o}).
            let t = vec![1usize];
            let t2 = vec![1usize, 3];
            assert!(eng.ev_of(&t) >= eng.ev_of(&t2) - 1e-12);
            // Lemma 3.5: EV(T∪x) − EV(T) ≥ EV(T'∪x) − EV(T'), i.e. the
            // reduction from cleaning x grows as the set grows.
            let gain_small = eng.ev_of(&[1]) - eng.ev_of(&[1, 4]);
            let gain_large = eng.ev_of(&[1, 3]) - eng.ev_of(&[1, 3, 4]);
            assert!(gain_small <= gain_large + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn affected_by_lists_scope_mates() {
        let inst = random_instance(6, 9);
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![
                LinearClaim::window_sum(0, 2).unwrap(),
                LinearClaim::window_sum(2, 2).unwrap(),
            ],
            vec![1.0, 1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = DupQuery::new(cs, 5.0);
        let eng = ScopedEv::new(&inst, &q);
        assert_eq!(eng.affected_by(0), vec![1]);
        assert_eq!(eng.affected_by(2), vec![3]);
        assert!(eng.relevant_objects() == vec![0, 1, 2, 3]);
    }

    #[test]
    fn tables_encode_decode_round_trips_byte_exactly() {
        let inst = random_instance(6, 11);
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 3).unwrap(),
            vec![
                LinearClaim::window_sum(0, 3).unwrap(),
                LinearClaim::window_sum(2, 3).unwrap(),
                LinearClaim::window_sum(3, 3).unwrap(),
            ],
            vec![1.0, 0.5, 0.25],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = DupQuery::new(cs, 5.0);
        let tables = ScopedTables::build(&inst, &q);
        let mut bytes = Vec::new();
        tables.encode_into(&mut bytes);
        let (decoded, consumed) = ScopedTables::decode_from(&bytes).expect("round trip");
        assert_eq!(consumed, bytes.len(), "decode consumes the whole encoding");
        let mut re_encoded = Vec::new();
        decoded.encode_into(&mut re_encoded);
        assert_eq!(bytes, re_encoded, "encode∘decode is the identity");
        assert_eq!(decoded.len(), tables.len());
        assert_eq!(decoded.num_terms(), tables.num_terms());
        assert_eq!(decoded.num_sharing_pairs(), tables.num_sharing_pairs());
        assert_eq!(decoded.build_evals(), tables.build_evals());
        // A rehydrated engine evaluates bit-identically to the builder's.
        let from_build = ScopedEv::with_tables(&inst, &q, Arc::new(tables));
        let from_bytes = ScopedEv::with_tables(&inst, &q, Arc::new(decoded));
        for t in [vec![], vec![1], vec![0, 2, 4], vec![1, 3, 5]] {
            assert_eq!(
                from_build.ev_of(&t).to_bits(),
                from_bytes.ev_of(&t).to_bits()
            );
        }
    }

    #[test]
    fn tables_decode_rejects_corruption_without_panicking() {
        let inst = random_instance(5, 3);
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![
                LinearClaim::window_sum(0, 2).unwrap(),
                LinearClaim::window_sum(1, 2).unwrap(),
            ],
            vec![1.0, 1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = DupQuery::new(cs, 5.0);
        let mut bytes = Vec::new();
        ScopedTables::build(&inst, &q).encode_into(&mut bytes);
        // Truncation at every prefix length is an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(ScopedTables::decode_from(&bytes[..cut]).is_err(), "{cut}");
        }
        // A wild length prefix is rejected before allocating.
        let mut huge = bytes.clone();
        huge[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ScopedTables::decode_from(&huge).is_err());
    }
}
