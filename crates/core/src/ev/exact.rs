//! Exact `EV(T)` by full joint enumeration.
//!
//! Enumerates every outcome of the cleaned objects within the query's
//! scope and, for each, every outcome of the remaining scope objects to
//! obtain the conditional variance — a direct transliteration of
//! Equation (1). Cost is `O(V^{|objs(f)|})`, so this engine is the ground
//! truth for tests and tiny instances, not a production path.

use crate::instance::Instance;
use fc_claims::QueryFunction;

/// Computes `EV(T)` exactly for an arbitrary query function.
///
/// `cleaned` lists the objects of `T` (any order, duplicates ignored).
/// Objects outside `query.objects()` do not influence the result and are
/// skipped. Conditional variances use a numerically stable two-pass
/// (centered) accumulation.
pub fn ev_exact(instance: &Instance, query: &dyn QueryFunction, cleaned: &[usize]) -> f64 {
    let scope = query.objects();
    let cleaned_scope: Vec<usize> = scope
        .iter()
        .copied()
        .filter(|i| cleaned.contains(i))
        .collect();
    let open_scope: Vec<usize> = scope
        .iter()
        .copied()
        .filter(|i| !cleaned.contains(i))
        .collect();
    let joint = instance.joint();
    let mut values = instance.current().to_vec();
    let mut ev = 0.0;
    // Two nested passes need disjoint mutable access to `values`; the
    // borrow is threaded through a RefCell-free split by re-borrowing in
    // each closure scope.
    let mut outcomes: Vec<(Vec<f64>, f64)> = Vec::new();
    joint.for_each_outcome(&cleaned_scope, |cv, cp| {
        outcomes.push((cv.to_vec(), cp));
    });
    for (cv, cp) in outcomes {
        for (pos, &obj) in cleaned_scope.iter().enumerate() {
            values[obj] = cv[pos];
        }
        // Pass 1: conditional mean.
        let mut mean = 0.0;
        {
            let values_ref = &mut values;
            joint.for_each_outcome(&open_scope, |uv, up| {
                for (pos, &obj) in open_scope.iter().enumerate() {
                    values_ref[obj] = uv[pos];
                }
                mean += up * query.eval(values_ref);
            });
        }
        // Pass 2: centered second moment.
        let mut var = 0.0;
        {
            let values_ref = &mut values;
            joint.for_each_outcome(&open_scope, |uv, up| {
                for (pos, &obj) in open_scope.iter().enumerate() {
                    values_ref[obj] = uv[pos];
                }
                let d = query.eval(values_ref) - mean;
                var += up * d * d;
            });
        }
        ev += cp * var;
    }
    ev
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::query::IndicatorSense;
    use fc_claims::{ClosureQuery, LinearClaim, ThresholdIndicatorQuery};
    use fc_uncertain::DiscreteDist;

    fn example3_instance() -> Instance {
        // Example 3: independent Bernoulli with p = 1/2, 1/3, 1/4.
        Instance::new(
            vec![
                DiscreteDist::bernoulli(0.5).unwrap(),
                DiscreteDist::bernoulli(1.0 / 3.0).unwrap(),
                DiscreteDist::bernoulli(0.25).unwrap(),
            ],
            vec![0.0, 0.0, 0.0],
            vec![1, 1, 1],
        )
        .unwrap()
    }

    fn example3_query() -> ThresholdIndicatorQuery {
        ThresholdIndicatorQuery::new(
            LinearClaim::window_sum(0, 3).unwrap(),
            3.0,
            IndicatorSense::Below,
        )
    }

    #[test]
    fn example3_no_cleaning() {
        // f = 1[X1+X2+X3 < 3]; Pr[f = 0] = 1/24 ⇒ Var = (1/24)(23/24).
        let inst = example3_instance();
        let q = example3_query();
        let want = (1.0 / 24.0) * (23.0 / 24.0);
        assert!((ev_exact(&inst, &q, &[]) - want).abs() < 1e-12);
    }

    #[test]
    fn example3_cleaning_x1() {
        // Cleaning X1: X1=0 (p=1/2) ⇒ f certain (var 0);
        // X1=1 (p=1/2) ⇒ Pr[f=0] = 1/12 ⇒ var = (1/12)(11/12).
        let inst = example3_instance();
        let q = example3_query();
        let want = 0.5 * (1.0 / 12.0) * (11.0 / 12.0);
        assert!((ev_exact(&inst, &q, &[0]) - want).abs() < 1e-12);
    }

    #[test]
    fn example3_uncertainty_can_increase_conditionally() {
        // The paper's point: conditioned on X1 = 1 the variance of f
        // exceeds the unconditioned variance — but the *expected* variance
        // after cleaning still shrinks (Lemma 3.4).
        let inst = example3_instance();
        let q = example3_query();
        let var_unconditioned = (1.0f64 / 24.0) * (23.0 / 24.0);
        let var_given_x1_is_1 = (1.0f64 / 12.0) * (11.0 / 12.0);
        assert!(var_given_x1_is_1 > var_unconditioned);
        assert!(ev_exact(&inst, &q, &[0]) < var_unconditioned);
    }

    #[test]
    fn example6_numbers() {
        // Example 6: X1 ~ U{0,.5,1,1.5,2}, X2 ~ U{1/3,1,5/3},
        // f = 1[X1+X2 < 11/12].
        let inst = Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap(),
            ],
            vec![1.0, 1.0],
            vec![1, 1],
        )
        .unwrap();
        let q = ThresholdIndicatorQuery::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            11.0 / 12.0,
            IndicatorSense::Below,
        );
        // EV(∅) = 26/225.
        assert!((ev_exact(&inst, &q, &[]) - 26.0 / 225.0).abs() < 1e-12);
        // EV({X1}) = 4/45; EV({X2}) = 2/25 — GreedyMinVar prefers X2.
        assert!((ev_exact(&inst, &q, &[0]) - 4.0 / 45.0).abs() < 1e-12);
        assert!((ev_exact(&inst, &q, &[1]) - 2.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn cleaning_everything_zeroes_ev() {
        let inst = example3_instance();
        let q = example3_query();
        assert!(ev_exact(&inst, &q, &[0, 1, 2]).abs() < 1e-15);
    }

    #[test]
    fn closure_query_product() {
        // f = X0·X1 with X0 ~ U{0,1}, X1 ~ U{1,2}; exact EV(∅) = Var[X0 X1].
        let inst = Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 1.0]).unwrap(),
                DiscreteDist::uniform_over(&[1.0, 2.0]).unwrap(),
            ],
            vec![0.0, 1.0],
            vec![1, 1],
        )
        .unwrap();
        let q = ClosureQuery::new(vec![0, 1], |v| v[0] * v[1]);
        // Products: {0,0,1,2} each w.p. 1/4 ⇒ mean 3/4,
        // E[X²] = (0+0+1+4)/4 = 5/4 ⇒ var = 5/4 − 9/16 = 11/16.
        assert!((ev_exact(&inst, &q, &[]) - 11.0 / 16.0).abs() < 1e-12);
        // Clean X1: X1=1 ⇒ Var[X0] = 1/4; X1=2 ⇒ Var[2X0] = 1 ⇒ EV = 5/8.
        assert!((ev_exact(&inst, &q, &[1]) - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn objects_outside_scope_are_ignored() {
        let inst = example3_instance();
        let q = ThresholdIndicatorQuery::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            2.0,
            IndicatorSense::Below,
        );
        let base = ev_exact(&inst, &q, &[]);
        let with_irrelevant = ev_exact(&inst, &q, &[2]);
        assert!((base - with_irrelevant).abs() < 1e-15);
    }
}
