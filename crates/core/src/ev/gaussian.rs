//! Gaussian closed forms for `EV(T)` with linear queries.
//!
//! For `X ~ N(μ, Σ)` and affine `f = b + wᵀX`, the residual uncertainty
//! after cleaning `T` has a closed form under either covariance
//! semantics (see `fc_uncertain::mvn::MvnSemantics` and DESIGN.md §1):
//!
//! * **Marginal** (the paper's Lemma 3.1 / Theorem 3.9 algebra):
//!   `EV(T) = Σ_{i,j ∉ T} wᵢ wⱼ Cov[Xᵢ, Xⱼ]`;
//! * **Conditional** (exact Gaussian posterior, used by `OPT` /
//!   `GreedyDep` in the §4.5 reproduction):
//!   `EV(T) = w_{T̄}ᵀ (Σ_{T̄T̄} − Σ_{T̄T} Σ_{TT}⁻¹ Σ_{TT̄}) w_{T̄}`.

use crate::instance::GaussianInstance;
use crate::Result;
pub use fc_uncertain::mvn::MvnSemantics;

/// `EV(T)` for a linear query `wᵀX` over a Gaussian instance.
pub fn ev_gaussian_linear(
    instance: &GaussianInstance,
    weights: &[f64],
    cleaned: &[usize],
    semantics: MvnSemantics,
) -> Result<f64> {
    let mut sorted = cleaned.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    Ok(instance
        .mvn()
        .residual_variance(weights, &sorted, semantics)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::GaussianInstance;
    use fc_uncertain::MultivariateNormal;

    #[test]
    fn independent_matches_modular() {
        let g = GaussianInstance::centered_independent(
            vec![10.0, 20.0, 30.0],
            &[1.0, 2.0, 3.0],
            vec![1, 1, 1],
        )
        .unwrap();
        let w = [1.0, -1.0, 2.0];
        // EV({1}) = 1·1 + 4·9 = 37 under both semantics.
        for sem in [MvnSemantics::Marginal, MvnSemantics::Conditional] {
            let ev = ev_gaussian_linear(&g, &w, &[1], sem).unwrap();
            assert!((ev - 37.0).abs() < 1e-10, "{sem:?}");
        }
    }

    #[test]
    fn conditional_never_exceeds_marginal() {
        let mvn =
            MultivariateNormal::with_geometric_dependency(vec![0.0; 4], &[1.0, 2.0, 1.5, 0.5], 0.7)
                .unwrap();
        let g = GaussianInstance::with_mvn(mvn, vec![0.0; 4], vec![1; 4]).unwrap();
        let w = [1.0, 1.0, -1.0, 1.0];
        for cleaned in [vec![], vec![0], vec![1, 3], vec![0, 1, 2]] {
            let m = ev_gaussian_linear(&g, &w, &cleaned, MvnSemantics::Marginal).unwrap();
            let c = ev_gaussian_linear(&g, &w, &cleaned, MvnSemantics::Conditional).unwrap();
            assert!(c <= m + 1e-10, "cleaned {cleaned:?}: cond {c} > marg {m}");
        }
    }

    #[test]
    fn duplicate_indices_tolerated() {
        let g =
            GaussianInstance::centered_independent(vec![0.0; 2], &[1.0, 1.0], vec![1, 1]).unwrap();
        let a = ev_gaussian_linear(&g, &[1.0, 1.0], &[0, 0], MvnSemantics::Marginal).unwrap();
        let b = ev_gaussian_linear(&g, &[1.0, 1.0], &[0], MvnSemantics::Marginal).unwrap();
        assert_eq!(a, b);
    }
}
