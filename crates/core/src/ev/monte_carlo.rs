//! Monte Carlo estimation of `EV(T)` for arbitrary query functions.
//!
//! §3.1: "one possibility is to estimate δᵢ using Monte Carlo methods."
//! The estimator nests two loops: outer samples of the cleaning outcome
//! `X_T = v`, inner samples of the remaining objects to estimate
//! `Var[f(X) | X_T = v]` (with Bessel's correction so the inner estimate
//! is unbiased).

use crate::instance::Instance;
use fc_claims::QueryFunction;
use rand::Rng;

/// Estimates `EV(T)` with `outer × inner` samples.
pub fn ev_monte_carlo<R: Rng + ?Sized>(
    instance: &Instance,
    query: &dyn QueryFunction,
    cleaned: &[usize],
    outer: usize,
    inner: usize,
    rng: &mut R,
) -> f64 {
    assert!(outer >= 1 && inner >= 2, "need outer ≥ 1 and inner ≥ 2");
    let scope = query.objects();
    let cleaned_scope: Vec<usize> = scope
        .iter()
        .copied()
        .filter(|i| cleaned.contains(i))
        .collect();
    let open_scope: Vec<usize> = scope
        .iter()
        .copied()
        .filter(|i| !cleaned.contains(i))
        .collect();
    if open_scope.is_empty() {
        return 0.0;
    }
    let joint = instance.joint();
    let mut values = instance.current().to_vec();
    let mut total = 0.0;
    for _ in 0..outer {
        for &obj in &cleaned_scope {
            values[obj] = joint.dist(obj).sample(rng);
        }
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..inner {
            for &obj in &open_scope {
                values[obj] = joint.dist(obj).sample(rng);
            }
            let f = query.eval(&values);
            sum += f;
            sum_sq += f * f;
        }
        let mean = sum / inner as f64;
        // Unbiased (Bessel-corrected) conditional variance estimate.
        let var = (sum_sq - inner as f64 * mean * mean) / (inner as f64 - 1.0);
        total += var.max(0.0);
    }
    total / outer as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ev::exact::ev_exact;
    use fc_claims::query::IndicatorSense;
    use fc_claims::{LinearClaim, ThresholdIndicatorQuery};
    use fc_uncertain::{rng_from_seed, DiscreteDist};

    #[test]
    fn approximates_exact_on_example3() {
        let inst = Instance::new(
            vec![
                DiscreteDist::bernoulli(0.5).unwrap(),
                DiscreteDist::bernoulli(1.0 / 3.0).unwrap(),
                DiscreteDist::bernoulli(0.25).unwrap(),
            ],
            vec![0.0; 3],
            vec![1; 3],
        )
        .unwrap();
        let q = ThresholdIndicatorQuery::new(
            LinearClaim::window_sum(0, 3).unwrap(),
            3.0,
            IndicatorSense::Below,
        );
        let mut rng = rng_from_seed(17);
        for cleaned in [vec![], vec![0], vec![0, 1]] {
            let exact = ev_exact(&inst, &q, &cleaned);
            let mc = ev_monte_carlo(&inst, &q, &cleaned, 300, 200, &mut rng);
            assert!(
                (mc - exact).abs() < 0.02,
                "cleaned {cleaned:?}: mc {mc} vs exact {exact}"
            );
        }
    }

    #[test]
    fn fully_cleaned_is_zero() {
        let inst = Instance::new(
            vec![DiscreteDist::bernoulli(0.5).unwrap()],
            vec![0.0],
            vec![1],
        )
        .unwrap();
        let q = ThresholdIndicatorQuery::new(
            LinearClaim::window_sum(0, 1).unwrap(),
            1.0,
            IndicatorSense::Below,
        );
        let mut rng = rng_from_seed(3);
        assert_eq!(ev_monte_carlo(&inst, &q, &[0], 10, 10, &mut rng), 0.0);
    }

    #[test]
    #[should_panic(expected = "inner")]
    fn rejects_degenerate_inner() {
        let inst = Instance::new(
            vec![DiscreteDist::bernoulli(0.5).unwrap()],
            vec![0.0],
            vec![1],
        )
        .unwrap();
        let q = ThresholdIndicatorQuery::new(
            LinearClaim::window_sum(0, 1).unwrap(),
            1.0,
            IndicatorSense::Below,
        );
        let mut rng = rng_from_seed(3);
        ev_monte_carlo(&inst, &q, &[], 10, 1, &mut rng);
    }
}
