//! `EV(T)` — the MinVar objective:
//! `EV(T) = Σ_{v ∈ V_T} Pr[X_T = v] · Var[f(X) | X_T = v]`.
//!
//! Four engines, trading generality for speed:
//!
//! | engine | requirements | complexity |
//! |---|---|---|
//! | [`exact::ev_exact`] | any [`QueryFunction`] | `O(V^{\|objs(f)\|})` — tests / tiny scopes |
//! | [`scoped::ScopedEv`] | [`DecomposableQuery`] + independence (Theorem 3.8) | `O(m² V^{3W} W + n)` worst case, far less for sparse claim families; supports `O(local)` incremental deltas |
//! | [`modular::modular_benefits`] | affine `f` + pairwise-uncorrelated `X` (Lemma 3.1) | `O(n)` |
//! | [`monte_carlo::ev_monte_carlo`] | any [`QueryFunction`] | sampling estimate |
//!
//! plus [`gaussian::ev_gaussian_linear`] — closed forms for linear `f`
//! over (multivariate) normal errors under both covariance semantics.
//!
//! [`QueryFunction`]: fc_claims::QueryFunction
//! [`DecomposableQuery`]: fc_claims::DecomposableQuery

pub mod exact;
pub mod gaussian;
pub mod modular;
pub mod monte_carlo;
pub mod scoped;

pub use exact::ev_exact;
pub use gaussian::ev_gaussian_linear;
pub use modular::{ev_modular, modular_benefits, modular_benefits_gaussian};
pub use monte_carlo::ev_monte_carlo;
pub use scoped::{EvState, ScopedEv, ScopedTables};
