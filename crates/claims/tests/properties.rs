//! Property-based tests for the claim model.

use fc_claims::{window_comparison_family, window_sum_family, Direction, LinearClaim, Sensibility};
use proptest::prelude::*;

proptest! {
    /// Linear claims evaluate linearly: q(αx + βy) relates affinely.
    #[test]
    fn linear_claim_is_linear(
        terms in prop::collection::vec((0usize..8, -5.0f64..5.0), 1..6),
        x in prop::collection::vec(-10.0f64..10.0, 8),
        y in prop::collection::vec(-10.0f64..10.0, 8),
        alpha in -3.0f64..3.0,
    ) {
        // Ensure at least one nonzero weight survives merging.
        let mut terms = terms;
        terms.push((0, 1.0));
        let c = LinearClaim::new(terms, 2.5).unwrap();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + (1.0 - alpha) * b).collect();
        let lhs = c.eval(&combo);
        let rhs = alpha * c.eval(&x) + (1.0 - alpha) * c.eval(&y);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    /// Dense weights agree with sparse evaluation.
    #[test]
    fn dense_weights_roundtrip(
        terms in prop::collection::vec((0usize..10, -5.0f64..5.0), 1..8),
        x in prop::collection::vec(-10.0f64..10.0, 10),
    ) {
        let mut terms = terms;
        terms.push((3, 2.0));
        let c = LinearClaim::new(terms, -1.0).unwrap();
        let w = c.dense_weights(10);
        let dense: f64 = c.bias_term()
            + w.iter().zip(&x).map(|(a, b)| a * b).sum::<f64>();
        prop_assert!((dense - c.eval(&x)).abs() < 1e-9);
    }

    /// Sensibility vectors are always normalized, order-respecting for
    /// exponential decay (smaller distance ⇒ larger weight).
    #[test]
    fn sensibility_normalized_and_monotone(
        distances in prop::collection::vec(0.0f64..20.0, 2..10),
        lambda in 1.05f64..3.0,
    ) {
        let s = Sensibility::exponential_decay(lambda, &distances).unwrap();
        let total: f64 = s.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for (i, &di) in distances.iter().enumerate() {
            for (j, &dj) in distances.iter().enumerate() {
                if di < dj {
                    prop_assert!(
                        s.weights()[i] >= s.weights()[j] - 1e-12,
                        "closer perturbation must not get less weight"
                    );
                }
            }
        }
    }

    /// dup is integral in [0, m]; frag is non-negative; bias flips sign
    /// with the claim direction.
    #[test]
    fn quality_measure_ranges(
        series in prop::collection::vec(0.0f64..100.0, 12),
        theta in 0.0f64..300.0,
    ) {
        let cs = window_sum_family(12, 3, 9, Direction::HigherIsStronger, 1.5).unwrap();
        let m = cs.len() as f64;
        let dup = cs.dup(&series, theta);
        prop_assert!(dup >= 0.0 && dup <= m && dup.fract() == 0.0);
        prop_assert!(cs.frag(&series, theta) >= 0.0);
        let flipped = cs.with_direction(Direction::LowerIsStronger);
        prop_assert!(
            (cs.bias(&series, theta) + flipped.bias(&series, theta)).abs() < 1e-9
        );
    }

    /// Window-comparison families always produce the advertised number
    /// of perturbations and reference only in-range objects.
    #[test]
    fn window_family_counts(
        len in 8usize..40,
        width in 1usize..4,
    ) {
        let later = width; // earliest valid comparison
        if later + width > len { return Ok(()); }
        let cs = window_comparison_family(len, width, later, 1.5, false).unwrap();
        // Number of valid later-starts minus the original.
        let expect = (len - 2 * width + 1) - 1;
        prop_assert_eq!(cs.len(), expect);
        for q in cs.perturbations() {
            for &(obj, _) in q.terms() {
                prop_assert!(obj < len);
            }
        }
    }
}
