//! Claim-quality measures as query functions over uncertain data.
//!
//! The three measures of §2.2 become the `f` of MinVar:
//!
//! * [`BiasQuery`] — fairness; affine for linear claims, so the modular
//!   fast path (Lemma 3.1) applies;
//! * [`DupQuery`] — uniqueness; a sum of indicators (non-linear);
//! * [`FragQuery`] — robustness; a sensibility-weighted sum of squared
//!   negative parts (non-linear).
//!
//! Each decomposes per perturbation ([`DecomposableQuery`]), enabling the
//! Theorem 3.8 scoped `EV` computation. The reference value the
//! perturbations are compared against can be either a constant `θ`
//! (typically `q°(u)`, the original claim on current data — the paper's
//! §2.2 definition) or the *uncertain* original `q°(X)` (the convention
//! behind §3.4's weight formula `wᵢ = Σ_k s_k (a_{k,i} − a°ᵢ)`); both are
//! supported via [`Reference`].

use crate::claim::ClaimSet;
use crate::query::{DecomposableQuery, QueryFunction, ScopedLinear};
use serde::{Deserialize, Serialize};

/// What perturbations are compared against in `Δ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Reference {
    /// A constant reference (usually `q°(u)` or the claim's stated `Γ`).
    Constant(f64),
    /// The uncertain original claim `q°(X)`.
    UncertainOriginal,
}

/// Shared machinery: per-term scopes and scoped evaluators for
/// `Δ_k(X) = dir · (q_k(X) − reference)`.
#[derive(Debug, Clone)]
struct DeltaTerms {
    claims: ClaimSet,
    reference: Reference,
    /// Scope (sorted object ids) of each term.
    scopes: Vec<Vec<usize>>,
    /// `q_k` re-indexed against its scope.
    qk: Vec<ScopedLinear>,
    /// `q°` re-indexed against each scope (only for `UncertainOriginal`).
    q0: Option<Vec<ScopedLinear>>,
    /// Union of all scopes.
    all_objects: Vec<usize>,
}

impl DeltaTerms {
    fn new(claims: ClaimSet, reference: Reference) -> Self {
        let m = claims.len();
        let mut scopes = Vec::with_capacity(m);
        let mut qk = Vec::with_capacity(m);
        let mut q0 = match reference {
            Reference::UncertainOriginal => Some(Vec::with_capacity(m)),
            Reference::Constant(_) => None,
        };
        for k in 0..m {
            let mut scope = claims.perturbations()[k].objects();
            if matches!(reference, Reference::UncertainOriginal) {
                scope.extend(claims.original().objects());
                scope.sort_unstable();
                scope.dedup();
            }
            qk.push(ScopedLinear::new(&claims.perturbations()[k], &scope));
            if let Some(q0v) = q0.as_mut() {
                q0v.push(ScopedLinear::new(claims.original(), &scope));
            }
            scopes.push(scope);
        }
        let mut all_objects: Vec<usize> = scopes.iter().flatten().copied().collect();
        all_objects.sort_unstable();
        all_objects.dedup();
        Self {
            claims,
            reference,
            scopes,
            qk,
            q0,
            all_objects,
        }
    }

    /// `Δ_k` on a scope-aligned buffer.
    #[inline]
    fn delta_scoped(&self, k: usize, scoped: &[f64]) -> f64 {
        let reference = match (self.reference, &self.q0) {
            (Reference::Constant(t), _) => t,
            (Reference::UncertainOriginal, Some(q0)) => q0[k].eval(scoped),
            (Reference::UncertainOriginal, None) => unreachable!("q0 built for uncertain mode"),
        };
        self.claims.direction().sign() * (self.qk[k].eval(scoped) - reference)
    }

    /// `Δ_k` on a full value vector.
    #[inline]
    fn delta_full(&self, k: usize, values: &[f64]) -> f64 {
        let reference = match self.reference {
            Reference::Constant(t) => t,
            Reference::UncertainOriginal => self.claims.original().eval(values),
        };
        self.claims.direction().sign() * (self.claims.perturbations()[k].eval(values) - reference)
    }
}

macro_rules! impl_common_accessors {
    ($ty:ty) => {
        impl $ty {
            /// The underlying claim set.
            pub fn claims(&self) -> &ClaimSet {
                &self.terms.claims
            }

            /// The reference the perturbations are compared against.
            pub fn reference(&self) -> Reference {
                self.terms.reference
            }
        }
    };
}

/// Fairness: `bias(θ, X) = Σ_k s_k · Δ_k(X)`.
#[derive(Debug, Clone)]
pub struct BiasQuery {
    terms: DeltaTerms,
}

impl BiasQuery {
    /// Bias against a constant reference `θ` (the §2.2 definition with
    /// `θ = q°(u)`).
    pub fn new(claims: ClaimSet, theta: f64) -> Self {
        Self {
            terms: DeltaTerms::new(claims, Reference::Constant(theta)),
        }
    }

    /// Bias against the uncertain original `q°(X)` (§3.4's weight form).
    pub fn relative_to_original(claims: ClaimSet) -> Self {
        Self {
            terms: DeltaTerms::new(claims, Reference::UncertainOriginal),
        }
    }
}

impl_common_accessors!(BiasQuery);

impl QueryFunction for BiasQuery {
    fn objects(&self) -> Vec<usize> {
        self.terms.all_objects.clone()
    }

    fn eval(&self, values: &[f64]) -> f64 {
        let cs = &self.terms.claims;
        cs.sensibilities()
            .iter()
            .enumerate()
            .map(|(k, s)| s * self.terms.delta_full(k, values))
            .sum()
    }

    fn as_affine(&self, n: usize) -> Option<(Vec<f64>, f64)> {
        // bias = Σ_k s_k · dir · (q_k(X) − ref). Affine in X for both
        // reference modes; constants fold into b.
        let cs = &self.terms.claims;
        let dir = cs.direction().sign();
        let mut w = vec![0.0; n];
        let mut b = 0.0;
        for (k, &s) in cs.sensibilities().iter().enumerate() {
            let q = &cs.perturbations()[k];
            for &(i, a) in q.terms() {
                w[i] += s * dir * a;
            }
            b += s * dir * q.bias_term();
            match self.terms.reference {
                Reference::Constant(t) => b -= s * dir * t,
                Reference::UncertainOriginal => {
                    for &(i, a) in cs.original().terms() {
                        w[i] -= s * dir * a;
                    }
                    b -= s * dir * cs.original().bias_term();
                }
            }
        }
        Some((w, b))
    }
}

impl DecomposableQuery for BiasQuery {
    fn num_terms(&self) -> usize {
        self.terms.claims.len()
    }

    fn term_objects(&self, k: usize) -> &[usize] {
        &self.terms.scopes[k]
    }

    fn eval_term(&self, k: usize, scoped: &[f64]) -> f64 {
        self.terms.claims.sensibilities()[k] * self.terms.delta_scoped(k, scoped)
    }
}

/// Uniqueness: `dup(θ, X) = Σ_k 1[Δ_k(X) ≥ 0]`.
#[derive(Debug, Clone)]
pub struct DupQuery {
    terms: DeltaTerms,
}

impl DupQuery {
    /// Duplicity against a constant reference `θ`.
    pub fn new(claims: ClaimSet, theta: f64) -> Self {
        Self {
            terms: DeltaTerms::new(claims, Reference::Constant(theta)),
        }
    }

    /// Duplicity against the uncertain original `q°(X)`.
    pub fn relative_to_original(claims: ClaimSet) -> Self {
        Self {
            terms: DeltaTerms::new(claims, Reference::UncertainOriginal),
        }
    }
}

impl_common_accessors!(DupQuery);

impl QueryFunction for DupQuery {
    fn objects(&self) -> Vec<usize> {
        self.terms.all_objects.clone()
    }

    fn eval(&self, values: &[f64]) -> f64 {
        (0..self.terms.claims.len())
            .filter(|&k| self.terms.delta_full(k, values) >= 0.0)
            .count() as f64
    }
}

impl DecomposableQuery for DupQuery {
    fn num_terms(&self) -> usize {
        self.terms.claims.len()
    }

    fn term_objects(&self, k: usize) -> &[usize] {
        &self.terms.scopes[k]
    }

    fn eval_term(&self, k: usize, scoped: &[f64]) -> f64 {
        if self.terms.delta_scoped(k, scoped) >= 0.0 {
            1.0
        } else {
            0.0
        }
    }
}

/// Robustness: `frag(θ, X) = Σ_k s_k · min{Δ_k(X), 0}²`.
#[derive(Debug, Clone)]
pub struct FragQuery {
    terms: DeltaTerms,
}

impl FragQuery {
    /// Fragility against a constant reference `θ`.
    pub fn new(claims: ClaimSet, theta: f64) -> Self {
        Self {
            terms: DeltaTerms::new(claims, Reference::Constant(theta)),
        }
    }

    /// Fragility against the uncertain original `q°(X)`.
    pub fn relative_to_original(claims: ClaimSet) -> Self {
        Self {
            terms: DeltaTerms::new(claims, Reference::UncertainOriginal),
        }
    }
}

impl_common_accessors!(FragQuery);

impl QueryFunction for FragQuery {
    fn objects(&self) -> Vec<usize> {
        self.terms.all_objects.clone()
    }

    fn eval(&self, values: &[f64]) -> f64 {
        let cs = &self.terms.claims;
        cs.sensibilities()
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let d = self.terms.delta_full(k, values).min(0.0);
                s * d * d
            })
            .sum()
    }
}

impl DecomposableQuery for FragQuery {
    fn num_terms(&self) -> usize {
        self.terms.claims.len()
    }

    fn term_objects(&self, k: usize) -> &[usize] {
        &self.terms.scopes[k]
    }

    fn eval_term(&self, k: usize, scoped: &[f64]) -> f64 {
        let d = self.terms.delta_scoped(k, scoped).min(0.0);
        self.terms.claims.sensibilities()[k] * d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claim::{Direction, LinearClaim};

    fn small_claimset() -> ClaimSet {
        // q° = X0 + X1; perturbations: X0+X1 (itself) and X2+X3.
        ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![
                LinearClaim::window_sum(0, 2).unwrap(),
                LinearClaim::window_sum(2, 2).unwrap(),
            ],
            vec![0.5, 0.5],
            Direction::HigherIsStronger,
        )
        .unwrap()
    }

    #[test]
    fn bias_eval_matches_terms() {
        let q = BiasQuery::new(small_claimset(), 3.0);
        let x = [1.0, 2.0, 4.0, 5.0];
        // Δ1 = (1+2)−3 = 0; Δ2 = (4+5)−3 = 6; bias = 0.5·0 + 0.5·6 = 3.
        assert!((q.eval(&x) - 3.0).abs() < 1e-12);
        // Sum of scoped terms equals full eval.
        let t0 = q.eval_term(0, &[1.0, 2.0]);
        let t1 = q.eval_term(1, &[4.0, 5.0]);
        assert!((t0 + t1 - q.eval(&x)).abs() < 1e-12);
    }

    #[test]
    fn bias_affine_matches_eval() {
        let q = BiasQuery::new(small_claimset(), 3.0);
        let (w, b) = q.as_affine(4).unwrap();
        let x = [1.0, 2.0, 4.0, 5.0];
        let lin: f64 = b + w.iter().zip(&x).map(|(wi, xi)| wi * xi).sum::<f64>();
        assert!((lin - q.eval(&x)).abs() < 1e-12);
        assert_eq!(w, vec![0.5, 0.5, 0.5, 0.5]);
        assert!((b + 3.0).abs() < 1e-12);
    }

    #[test]
    fn bias_relative_to_original_affine() {
        let q = BiasQuery::relative_to_original(small_claimset());
        let (w, b) = q.as_affine(4).unwrap();
        // w = Σ s_k a_k − a° (dir = +1): perturbation weights (0.5,0.5,0.5,0.5)
        // minus original (1,1,0,0) ⇒ (−0.5, −0.5, 0.5, 0.5).
        assert_eq!(w, vec![-0.5, -0.5, 0.5, 0.5]);
        assert_eq!(b, 0.0);
        let x = [1.0, 2.0, 4.0, 5.0];
        let lin: f64 = b + w.iter().zip(&x).map(|(wi, xi)| wi * xi).sum::<f64>();
        assert!((lin - q.eval(&x)).abs() < 1e-12);
    }

    #[test]
    fn dup_counts() {
        let q = DupQuery::new(small_claimset(), 3.0);
        let x = [1.0, 2.0, 4.0, 5.0];
        assert_eq!(q.eval(&x), 2.0); // both Δ ≥ 0
        let x = [0.0, 0.0, 4.0, 5.0];
        assert_eq!(q.eval(&x), 1.0);
        assert_eq!(q.eval_term(0, &[0.0, 0.0]), 0.0);
        assert_eq!(q.eval_term(1, &[4.0, 5.0]), 1.0);
    }

    #[test]
    fn dup_lower_is_stronger() {
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            vec![LinearClaim::window_sum(2, 2).unwrap()],
            vec![1.0],
            Direction::LowerIsStronger,
        )
        .unwrap();
        let q = DupQuery::new(cs, 10.0);
        assert_eq!(q.eval(&[0.0, 0.0, 4.0, 5.0]), 1.0); // 9 ≤ 10 ⇒ stronger
        assert_eq!(q.eval(&[0.0, 0.0, 6.0, 5.0]), 0.0); // 11 > 10
    }

    #[test]
    fn frag_squares_weakenings() {
        let q = FragQuery::new(small_claimset(), 3.0);
        let x = [1.0, 0.0, 4.0, 5.0]; // Δ1 = −2 (weakens), Δ2 = 6
        assert!((q.eval(&x) - 0.5 * 4.0).abs() < 1e-12);
        assert!((q.eval_term(0, &[1.0, 0.0]) - 2.0).abs() < 1e-12);
        assert_eq!(q.eval_term(1, &[4.0, 5.0]), 0.0);
    }

    #[test]
    fn dup_and_frag_have_no_affine_form() {
        let q = DupQuery::new(small_claimset(), 3.0);
        assert!(q.as_affine(4).is_none());
        let q = FragQuery::new(small_claimset(), 3.0);
        assert!(q.as_affine(4).is_none());
    }

    #[test]
    fn uncertain_original_scopes_include_q0() {
        let q = DupQuery::relative_to_original(small_claimset());
        // Term 1's scope must include q°'s objects {0,1} plus its own {2,3}.
        assert_eq!(q.term_objects(1), &[0, 1, 2, 3]);
        // Scoped eval: q1 = X2+X3 = 9, q° = X0+X1 = 3 ⇒ Δ = 6 ≥ 0.
        assert_eq!(q.eval_term(1, &[1.0, 2.0, 4.0, 5.0]), 1.0);
    }

    #[test]
    fn objects_union() {
        let q = BiasQuery::new(small_claimset(), 0.0);
        assert_eq!(q.objects(), vec![0, 1, 2, 3]);
    }
}
