//! Linear claim functions and claim sets (original + perturbations).

use crate::{ClaimError, Result};
use serde::{Deserialize, Serialize};

/// A linear claim function `q(X) = b + Σ_{i ∈ objs} a_i · X_i`.
///
/// Window aggregate comparison claims (Example 4), window sums, and any
/// SQL aggregation over selections/joins with certain predicates are of
/// this form (§3.4). Weights are stored sparsely as `(object, weight)`
/// pairs sorted by object index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearClaim {
    terms: Vec<(usize, f64)>,
    bias: f64,
}

impl LinearClaim {
    /// Builds a claim from `(object index, weight)` pairs and an additive
    /// constant. Duplicate object indices have their weights summed;
    /// zero-weight terms are dropped.
    pub fn new(terms: impl IntoIterator<Item = (usize, f64)>, bias: f64) -> Result<Self> {
        let mut terms: Vec<(usize, f64)> = terms.into_iter().collect();
        terms.sort_by_key(|&(i, _)| i);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for (i, w) in terms {
            match merged.last_mut() {
                Some((j, acc)) if *j == i => *acc += w,
                _ => merged.push((i, w)),
            }
        }
        merged.retain(|&(_, w)| w != 0.0);
        if merged.is_empty() {
            return Err(ClaimError::EmptyClaim);
        }
        Ok(Self {
            terms: merged,
            bias,
        })
    }

    /// A claim summing the objects in `[start, start + width)` with unit
    /// weights (e.g. "injuries over the last two years").
    pub fn window_sum(start: usize, width: usize) -> Result<Self> {
        Self::new((start..start + width).map(|i| (i, 1.0)), 0.0)
    }

    /// A window *comparison* claim: `Σ later window − Σ earlier window`
    /// (positive = increase). Both windows have length `width`.
    pub fn window_comparison(
        earlier_start: usize,
        later_start: usize,
        width: usize,
    ) -> Result<Self> {
        let mut terms: Vec<(usize, f64)> = Vec::with_capacity(2 * width);
        terms.extend((earlier_start..earlier_start + width).map(|i| (i, -1.0)));
        terms.extend((later_start..later_start + width).map(|i| (i, 1.0)));
        Self::new(terms, 0.0)
    }

    /// Sparse `(object, weight)` terms sorted by object.
    #[inline]
    pub fn terms(&self) -> &[(usize, f64)] {
        &self.terms
    }

    /// Additive constant `b`.
    #[inline]
    pub fn bias_term(&self) -> f64 {
        self.bias
    }

    /// Sorted object indices referenced by the claim.
    pub fn objects(&self) -> Vec<usize> {
        self.terms.iter().map(|&(i, _)| i).collect()
    }

    /// Number of referenced objects (the paper's `W`).
    #[inline]
    pub fn width(&self) -> usize {
        self.terms.len()
    }

    /// Weight on object `i` (0 when not referenced).
    pub fn weight_of(&self, i: usize) -> f64 {
        self.terms
            .binary_search_by_key(&i, |&(j, _)| j)
            .map(|pos| self.terms[pos].1)
            .unwrap_or(0.0)
    }

    /// Evaluates on a full value vector (indexed by object id).
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.bias + self.terms.iter().map(|&(i, w)| w * values[i]).sum::<f64>()
    }

    /// Evaluates on values aligned with [`Self::objects`] (scoped form,
    /// used by the enumeration engines).
    pub fn eval_scoped(&self, scoped: &[f64]) -> f64 {
        debug_assert_eq!(scoped.len(), self.terms.len());
        self.bias
            + self
                .terms
                .iter()
                .zip(scoped)
                .map(|(&(_, w), &v)| w * v)
                .sum::<f64>()
    }

    /// Densifies the weights into a length-`n` vector.
    pub fn dense_weights(&self, n: usize) -> Vec<f64> {
        let mut w = vec![0.0; n];
        for &(i, a) in &self.terms {
            w[i] = a;
        }
        w
    }

    /// Whether the claim references object `i`.
    pub fn references(&self, i: usize) -> bool {
        self.terms.binary_search_by_key(&i, |&(j, _)| j).is_ok()
    }
}

/// Which direction makes a claim *stronger*.
///
/// "Crime went up by 300" is strengthened by larger differences
/// ([`Direction::HigherIsStronger`]); "injuries are as low as Γ" is
/// strengthened by smaller sums ([`Direction::LowerIsStronger`]).
/// The signed relative strength used throughout is
/// `Δ_k(x) = dir · (q_k(x) − θ)` with `dir ∈ {+1, −1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Larger claim-function values are stronger.
    HigherIsStronger,
    /// Smaller claim-function values are stronger.
    LowerIsStronger,
}

impl Direction {
    /// The sign folded into `Δ`.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Self::HigherIsStronger => 1.0,
            Self::LowerIsStronger => -1.0,
        }
    }
}

/// An original claim with its perturbation family and sensibilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClaimSet {
    original: LinearClaim,
    perturbations: Vec<LinearClaim>,
    sensibilities: Vec<f64>,
    direction: Direction,
}

impl ClaimSet {
    /// Assembles a claim set; sensibilities are validated (non-negative,
    /// positive total) and normalized to sum to 1 as the paper requires.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // !(x >= 0) is the NaN-safe check
    pub fn new(
        original: LinearClaim,
        perturbations: Vec<LinearClaim>,
        sensibilities: Vec<f64>,
        direction: Direction,
    ) -> Result<Self> {
        if perturbations.len() != sensibilities.len() {
            return Err(ClaimError::SensibilityMismatch {
                perturbations: perturbations.len(),
                sensibilities: sensibilities.len(),
            });
        }
        let total: f64 = sensibilities.iter().sum();
        if !(total > 0.0) || sensibilities.iter().any(|&s| !(s >= 0.0) || !s.is_finite()) {
            return Err(ClaimError::InvalidSensibility);
        }
        let sensibilities = sensibilities.iter().map(|s| s / total).collect();
        Ok(Self {
            original,
            perturbations,
            sensibilities,
            direction,
        })
    }

    /// The original claim `q°`.
    #[inline]
    pub fn original(&self) -> &LinearClaim {
        &self.original
    }

    /// The perturbations `q_1 … q_m`.
    #[inline]
    pub fn perturbations(&self) -> &[LinearClaim] {
        &self.perturbations
    }

    /// Normalized sensibilities (sum to 1).
    #[inline]
    pub fn sensibilities(&self) -> &[f64] {
        &self.sensibilities
    }

    /// Claim strength direction.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Number of perturbations (`m`).
    #[inline]
    pub fn len(&self) -> usize {
        self.perturbations.len()
    }

    /// Whether the perturbation family is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.perturbations.is_empty()
    }

    /// `q°` evaluated on a concrete value vector (typically the current
    /// database values `u`); this is the reference `θ` for `Δ`.
    pub fn original_value(&self, values: &[f64]) -> f64 {
        self.original.eval(values)
    }

    /// Signed relative strength of perturbation `k` at concrete values
    /// `x`, against reference `theta`: `dir · (q_k(x) − θ)`.
    pub fn delta(&self, k: usize, x: &[f64], theta: f64) -> f64 {
        self.direction.sign() * (self.perturbations[k].eval(x) - theta)
    }

    /// Fairness measure: `bias(θ, x) = Σ_k s_k · Δ_k(x)`.
    /// Zero ⇒ fair; negative ⇒ the original exaggerates; positive ⇒ it
    /// understates (§2.2).
    pub fn bias(&self, x: &[f64], theta: f64) -> f64 {
        self.sensibilities
            .iter()
            .enumerate()
            .map(|(k, s)| s * self.delta(k, x, theta))
            .sum()
    }

    /// Uniqueness measure: `dup(θ, x) = Σ_k 1[Δ_k(x) ≥ 0]` — the number of
    /// perturbations at least as strong as the original. Lower ⇒ more
    /// unique.
    pub fn dup(&self, x: &[f64], theta: f64) -> f64 {
        (0..self.len())
            .filter(|&k| self.delta(k, x, theta) >= 0.0)
            .count() as f64
    }

    /// Robustness measure: `frag(θ, x) = Σ_k s_k · min{Δ_k(x), 0}²`.
    /// Low fragility ⇒ hard to find weakening perturbations ⇒ robust.
    pub fn frag(&self, x: &[f64], theta: f64) -> f64 {
        self.sensibilities
            .iter()
            .enumerate()
            .map(|(k, s)| {
                let d = self.delta(k, x, theta).min(0.0);
                s * d * d
            })
            .sum()
    }

    /// The perturbation that most *weakens* the original at `x` (most
    /// negative `Δ`), if any weakens it: a counterargument candidate.
    pub fn strongest_counter(&self, x: &[f64], theta: f64) -> Option<(usize, f64)> {
        (0..self.len())
            .map(|k| (k, self.delta(k, x, theta)))
            .filter(|&(_, d)| d < 0.0)
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The perturbation that most *out-does* the original at `x`
    /// (largest strictly positive `Δ`), if any: the §4.3 uniqueness-style
    /// counterargument ("another period with even fewer injuries").
    pub fn strongest_duplicate(&self, x: &[f64], theta: f64) -> Option<(usize, f64)> {
        (0..self.len())
            .map(|k| (k, self.delta(k, x, theta)))
            .filter(|&(_, d)| d > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// A copy of this claim set with the strength direction replaced.
    /// `with_direction(HigherIsStronger)` yields the *plain subtraction*
    /// `Δ(q_k, θ) = q_k − θ` of §2.2 regardless of the original claim's
    /// direction — the form the MaxPr/bias machinery of §4.3 works with.
    pub fn with_direction(&self, direction: Direction) -> Self {
        Self {
            original: self.original.clone(),
            perturbations: self.perturbations.clone(),
            sensibilities: self.sensibilities.clone(),
            direction,
        }
    }

    /// Union of all object indices referenced by `q°` or any perturbation,
    /// sorted ascending.
    pub fn all_objects(&self) -> Vec<usize> {
        let mut objs: Vec<usize> = self.original.objects();
        for p in &self.perturbations {
            objs.extend(p.objects());
        }
        objs.sort_unstable();
        objs.dedup();
        objs
    }

    /// Maximum number of objects referenced by any single claim (the
    /// paper's `W`).
    pub fn max_width(&self) -> usize {
        self.perturbations
            .iter()
            .map(LinearClaim::width)
            .chain(std::iter::once(self.original.width()))
            .max()
            .unwrap_or(0)
    }

    /// Degree of the claim set: the maximum, over perturbations, of the
    /// number of *other* perturbations sharing at least one object
    /// (the paper's `L`, used in the Theorem 3.8 complexity discussion).
    pub fn degree(&self) -> usize {
        (0..self.len())
            .map(|k| {
                (0..self.len())
                    .filter(|&k2| k2 != k && self.shares_object(k, k2))
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    /// Whether perturbations `k` and `k2` reference a common object.
    pub fn shares_object(&self, k: usize, k2: usize) -> bool {
        let a = &self.perturbations[k];
        let b = &self.perturbations[k2];
        // Merge-walk over the sorted term lists.
        let (mut i, mut j) = (0, 0);
        let (ta, tb) = (a.terms(), b.terms());
        while i < ta.len() && j < tb.len() {
            match ta[i].0.cmp(&tb[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_claim_merges_and_drops_zeros() {
        let c = LinearClaim::new([(3, 1.0), (1, 2.0), (3, -1.0), (0, 0.0)], 5.0).unwrap();
        assert_eq!(c.terms(), &[(1, 2.0)]);
        assert_eq!(c.bias_term(), 5.0);
    }

    #[test]
    fn empty_claim_rejected() {
        assert_eq!(
            LinearClaim::new([(0, 1.0), (0, -1.0)], 0.0).unwrap_err(),
            ClaimError::EmptyClaim
        );
    }

    #[test]
    fn window_comparison_weights() {
        // Example 2: X2018 − X2017 with years indexed 0..5 (2014..2018).
        let c = LinearClaim::window_comparison(3, 4, 1).unwrap();
        let u = [9010.0, 9275.0, 9300.0, 9125.0, 9430.0];
        assert_eq!(c.eval(&u), 305.0);
        assert_eq!(c.weight_of(3), -1.0);
        assert_eq!(c.weight_of(4), 1.0);
        assert_eq!(c.weight_of(0), 0.0);
    }

    #[test]
    fn eval_scoped_matches_eval() {
        let c = LinearClaim::new([(1, 2.0), (4, -1.0)], 3.0).unwrap();
        let full = [0.0, 10.0, 0.0, 0.0, 4.0];
        assert_eq!(c.eval(&full), c.eval_scoped(&[10.0, 4.0]));
    }

    fn example2_claimset() -> ClaimSet {
        // q° = X2018 − X2017, perturbations = yearly differences.
        let original = LinearClaim::window_comparison(3, 4, 1).unwrap();
        let perturbations = vec![
            LinearClaim::window_comparison(2, 3, 1).unwrap(), // 2017-2016
            LinearClaim::window_comparison(1, 2, 1).unwrap(), // 2016-2015
            LinearClaim::window_comparison(0, 1, 1).unwrap(), // 2015-2014
        ];
        ClaimSet::new(
            original,
            perturbations,
            vec![1.0, 1.0, 1.0],
            Direction::HigherIsStronger,
        )
        .unwrap()
    }

    #[test]
    fn sensibilities_normalized() {
        let cs = example2_claimset();
        let total: f64 = cs.sensibilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((cs.sensibilities()[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dup_counts_stronger_perturbations() {
        let cs = example2_claimset();
        let u = [9010.0, 9275.0, 9300.0, 9125.0, 9430.0];
        let theta = cs.original_value(&u); // 305
        assert_eq!(theta, 305.0);
        // Yearly increases: 2016−2017: −175, 2015−2016: 25, 2014−2015: 265.
        // None ≥ 305 ⇒ dup = 0 (the claim looks unique on current data).
        assert_eq!(cs.dup(&u, theta), 0.0);
        // If cleaning revealed X2015 = 9315, the 2014→2015 increase
        // becomes 305 ⇒ dup = 1 (Example 2's counterargument).
        let cleaned = [9010.0, 9315.0, 9300.0, 9125.0, 9430.0];
        assert_eq!(cs.dup(&cleaned, theta), 1.0);
    }

    #[test]
    fn bias_is_sensibility_weighted_mean_delta() {
        let cs = example2_claimset();
        let u = [9010.0, 9275.0, 9300.0, 9125.0, 9430.0];
        let theta = 305.0;
        let want = ((-175.0 - 305.0) + (25.0 - 305.0) + (265.0 - 305.0)) / 3.0;
        assert!((cs.bias(&u, theta) - want).abs() < 1e-12);
    }

    #[test]
    fn frag_squares_only_weakenings() {
        let cs = example2_claimset();
        let u = [9010.0, 9275.0, 9300.0, 9125.0, 9430.0];
        let theta = 0.0; // all Δ = raw increases: −175, 25, 265.
        let want = (175.0 * 175.0) / 3.0; // only the −175 weakens
        assert!((cs.frag(&u, theta) - want).abs() < 1e-9);
    }

    #[test]
    fn direction_flips_delta() {
        let original = LinearClaim::window_sum(0, 2).unwrap();
        let p = LinearClaim::window_sum(2, 2).unwrap();
        let cs = ClaimSet::new(original, vec![p], vec![1.0], Direction::LowerIsStronger).unwrap();
        let x = [10.0, 10.0, 3.0, 4.0];
        let theta = 20.0;
        // q1(x) = 7 < 20, and lower is stronger ⇒ Δ = +13.
        assert!((cs.delta(0, &x, theta) - 13.0).abs() < 1e-12);
        assert_eq!(cs.dup(&x, theta), 1.0);
    }

    #[test]
    fn strongest_counter() {
        let cs = example2_claimset();
        let u = [9010.0, 9275.0, 9300.0, 9125.0, 9430.0];
        let (k, d) = cs.strongest_counter(&u, 305.0).unwrap();
        assert_eq!(k, 0); // 2016→2017 dropped by 175: weakest delta −480.
        assert!((d + 480.0).abs() < 1e-12);
    }

    #[test]
    fn shares_object_and_degree() {
        let cs = example2_claimset();
        // Adjacent yearly diffs share an endpoint year.
        assert!(cs.shares_object(0, 1));
        assert!(!cs.shares_object(0, 2));
        assert_eq!(cs.degree(), 2); // middle perturbation touches both ends
    }

    #[test]
    fn invalid_sensibility_rejected() {
        let original = LinearClaim::window_sum(0, 1).unwrap();
        let p = LinearClaim::window_sum(1, 1).unwrap();
        let r = ClaimSet::new(
            original.clone(),
            vec![p.clone()],
            vec![-1.0],
            Direction::HigherIsStronger,
        );
        assert_eq!(r.unwrap_err(), ClaimError::InvalidSensibility);
        let r = ClaimSet::new(original, vec![p], vec![], Direction::HigherIsStronger);
        assert!(matches!(
            r.unwrap_err(),
            ClaimError::SensibilityMismatch { .. }
        ));
    }

    #[test]
    fn all_objects_union() {
        let cs = example2_claimset();
        assert_eq!(cs.all_objects(), vec![0, 1, 2, 3, 4]);
        assert_eq!(cs.max_width(), 2);
    }
}
