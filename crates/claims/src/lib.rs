//! # fc-claims — the computational fact-checking claim model
//!
//! Implements §2.2 of Sintos, Agarwal & Yang (VLDB 2019), following the
//! perturbation framework of Wu et al. ("Toward computational
//! fact-checking", VLDB 2014):
//!
//! * a **claim function** `q` maps database values to a number — here
//!   [`LinearClaim`], `q(X) = b + Σ aᵢ Xᵢ` (window aggregate comparison
//!   claims, window sums, and any SQL aggregate over certain predicates
//!   are of this form, §3.4);
//! * an original claim `q°` is checked against **perturbations**
//!   `Q = {q₁ … q_m}`, each weighted by a **sensibility** `s_k ≥ 0`,
//!   `Σ s_k = 1` ([`sensibility`]);
//! * a **relative strength** `Δ` compares a perturbation against the
//!   original; with claim [`Direction`] folded in, `Δ_k(X) = dir ·
//!   (q_k(X) − θ)` where `θ` is the original claim's reference value;
//! * **claim-quality measures** summarize the `Δ_k` over all
//!   perturbations: `bias` (fairness), `dup` (uniqueness), `frag`
//!   (robustness) — exposed as query functions over uncertain data in
//!   [`quality`], ready for the MinVar/MaxPr machinery in `fc-core`.

pub mod claim;
pub mod quality;
pub mod query;
pub mod sensibility;
pub mod window;

pub use claim::{ClaimSet, Direction, LinearClaim};
pub use quality::{BiasQuery, DupQuery, FragQuery};
pub use query::{ClosureQuery, DecomposableQuery, QueryFunction, ThresholdIndicatorQuery};
pub use sensibility::Sensibility;
pub use window::{window_comparison_family, window_sum_family, WindowSpec};

use std::fmt;

/// Errors from claim-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ClaimError {
    /// A claim referenced no objects.
    EmptyClaim,
    /// Sensibility vector length did not match the perturbation count.
    SensibilityMismatch {
        /// Number of perturbations.
        perturbations: usize,
        /// Number of sensibilities supplied.
        sensibilities: usize,
    },
    /// Sensibilities were negative, non-finite, or summed to zero.
    InvalidSensibility,
    /// A window specification fell outside the data range.
    WindowOutOfRange {
        /// First out-of-range index.
        index: usize,
        /// Number of objects available.
        len: usize,
    },
}

impl fmt::Display for ClaimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyClaim => write!(f, "claim references no objects"),
            Self::SensibilityMismatch {
                perturbations,
                sensibilities,
            } => write!(
                f,
                "{perturbations} perturbations but {sensibilities} sensibilities"
            ),
            Self::InvalidSensibility => write!(f, "sensibilities must be ≥ 0 and sum > 0"),
            Self::WindowOutOfRange { index, len } => {
                write!(f, "window index {index} out of range for {len} objects")
            }
        }
    }
}

impl std::error::Error for ClaimError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ClaimError>;
