//! Sensibility assignments over perturbation families.
//!
//! "Not all perturbations are equally relevant … we associate each
//! perturbation `q_k` with a sensibility `s_k ≥ 0` such that `Σ s_k = 1`"
//! (§2.2). The experiments let sensibility "decay exponentially (at rate
//! λ = 1.5) over its distance to the original claim (as measured by the
//! number of years between the endpoints of their comparison periods)"
//! (§4.1).

use crate::{ClaimError, Result};
use serde::{Deserialize, Serialize};

/// A normalized sensibility vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sensibility {
    weights: Vec<f64>,
}

impl Sensibility {
    /// Uniform sensibility over `m` perturbations.
    pub fn uniform(m: usize) -> Result<Self> {
        if m == 0 {
            return Err(ClaimError::InvalidSensibility);
        }
        Ok(Self {
            weights: vec![1.0 / m as f64; m],
        })
    }

    /// Exponential decay at rate `lambda > 1` over per-perturbation
    /// distances: `s_k ∝ λ^{−d_k}`, normalized to sum to 1.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-safe validations
    pub fn exponential_decay(lambda: f64, distances: &[f64]) -> Result<Self> {
        if distances.is_empty() || !(lambda > 0.0) || !lambda.is_finite() {
            return Err(ClaimError::InvalidSensibility);
        }
        if distances.iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(ClaimError::InvalidSensibility);
        }
        // Subtract the min distance before exponentiating so very distant
        // perturbations cannot underflow the whole family to zero.
        let dmin = distances.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let raw: Vec<f64> = distances
            .iter()
            .map(|&d| lambda.powf(-(d - dmin)))
            .collect();
        Self::from_weights(&raw)
    }

    /// Normalizes arbitrary non-negative weights.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-safe validations
    pub fn from_weights(weights: &[f64]) -> Result<Self> {
        let total: f64 = weights.iter().sum();
        if weights.is_empty()
            || !(total > 0.0)
            || weights.iter().any(|&w| !(w >= 0.0) || !w.is_finite())
        {
            return Err(ClaimError::InvalidSensibility);
        }
        Ok(Self {
            weights: weights.iter().map(|w| w / total).collect(),
        })
    }

    /// The normalized weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Consumes into the weight vector.
    pub fn into_weights(self) -> Vec<f64> {
        self.weights
    }

    /// Number of perturbations covered.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the vector is empty (never true for validated instances).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sums_to_one() {
        let s = Sensibility::uniform(4).unwrap();
        assert_eq!(s.len(), 4);
        assert!((s.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((s.weights()[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exponential_decay_ratios() {
        // λ = 1.5, distances 0,1,2 ⇒ weights ∝ 1, 1/1.5, 1/2.25.
        let s = Sensibility::exponential_decay(1.5, &[0.0, 1.0, 2.0]).unwrap();
        let w = s.weights();
        assert!((w[0] / w[1] - 1.5).abs() < 1e-12);
        assert!((w[1] / w[2] - 1.5).abs() < 1e-12);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decay_is_shift_invariant() {
        let a = Sensibility::exponential_decay(1.5, &[0.0, 3.0]).unwrap();
        let b = Sensibility::exponential_decay(1.5, &[10.0, 13.0]).unwrap();
        for (x, y) in a.weights().iter().zip(b.weights()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Sensibility::uniform(0).is_err());
        assert!(Sensibility::exponential_decay(1.5, &[]).is_err());
        assert!(Sensibility::exponential_decay(0.0, &[1.0]).is_err());
        assert!(Sensibility::exponential_decay(1.5, &[-1.0]).is_err());
        assert!(Sensibility::from_weights(&[0.0, 0.0]).is_err());
        assert!(Sensibility::from_weights(&[1.0, -0.5]).is_err());
    }
}
