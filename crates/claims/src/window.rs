//! Window-claim perturbation families.
//!
//! Two families cover every experiment in the paper:
//!
//! * **Window aggregate comparison** (Example 4, Fig. 1): the claim
//!   compares the sums of two back-to-back windows of equal length
//!   (`Σ later − Σ earlier`); perturbations shift the comparison through
//!   the series, and sensibility decays exponentially with the shift.
//! * **Window sum** (§4.2, Figs. 2–9): the claim states the sum over one
//!   window is "as low as Γ" (uniqueness) or "as high as Γ′" (robustness);
//!   perturbations are the sums over the other width-aligned windows.

use crate::claim::{ClaimSet, Direction, LinearClaim};
use crate::sensibility::Sensibility;
use crate::{ClaimError, Result};
use serde::{Deserialize, Serialize};

/// A back-to-back window comparison: earlier window `[later_start − width,
/// later_start)` vs. later window `[later_start, later_start + width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Start index of the *later* window; the earlier window directly
    /// precedes it.
    pub later_start: usize,
    /// Window length (`w` in the paper).
    pub width: usize,
}

impl WindowSpec {
    /// The comparison claim `Σ later − Σ earlier` for this spec.
    pub fn claim(&self) -> Result<LinearClaim> {
        if self.later_start < self.width {
            return Err(ClaimError::WindowOutOfRange {
                index: self.later_start,
                len: self.width,
            });
        }
        LinearClaim::window_comparison(self.later_start - self.width, self.later_start, self.width)
    }
}

/// Builds the window-comparison claim set used by the fairness
/// experiments (Fig. 1): the original compares `[later_start − width,
/// later_start)` against `[later_start, later_start + width)`; the
/// perturbations are every other valid back-to-back comparison in a
/// series of `series_len` values. Sensibility decays exponentially at
/// rate `lambda` with the distance (in positions) between a
/// perturbation's later-window start and the original's.
///
/// `include_original` controls whether the original comparison also
/// appears in the perturbation family (the paper's counts imply both
/// conventions: 18 perturbations for Adoptions excludes it; 10 for
/// CDC-firearms includes it).
pub fn window_comparison_family(
    series_len: usize,
    width: usize,
    original_later_start: usize,
    lambda: f64,
    include_original: bool,
) -> Result<ClaimSet> {
    if width == 0 || original_later_start < width || original_later_start + width > series_len {
        return Err(ClaimError::WindowOutOfRange {
            index: original_later_start,
            len: series_len,
        });
    }
    let original = WindowSpec {
        later_start: original_later_start,
        width,
    }
    .claim()?;
    let mut perturbations = Vec::new();
    let mut distances = Vec::new();
    for ls in width..=(series_len - width) {
        if ls == original_later_start && !include_original {
            continue;
        }
        perturbations.push(
            WindowSpec {
                later_start: ls,
                width,
            }
            .claim()?,
        );
        distances.push(ls.abs_diff(original_later_start) as f64);
    }
    let sens = Sensibility::exponential_decay(lambda, &distances)?;
    ClaimSet::new(
        original,
        perturbations,
        sens.into_weights(),
        Direction::HigherIsStronger,
    )
}

/// Builds the window-sum claim set used by the uniqueness/robustness
/// experiments (§4.2): the original sums `[original_start,
/// original_start + width)`; the perturbations are the width-aligned
/// tiles `[0, width), [width, 2·width), …` that fit in the series (the
/// original is naturally included when it lies on the tile grid — this
/// reproduces the paper's perturbation counts: 8 for CDC with 17 years /
/// width 2, 10 for the n = 40 / width 4 synthetics, 25 for n = 100 /
/// width 4). Sensibility decays exponentially at rate `lambda` with tile
/// distance from the original window.
pub fn window_sum_family(
    series_len: usize,
    width: usize,
    original_start: usize,
    direction: Direction,
    lambda: f64,
) -> Result<ClaimSet> {
    if width == 0 || original_start + width > series_len {
        return Err(ClaimError::WindowOutOfRange {
            index: original_start,
            len: series_len,
        });
    }
    let original = LinearClaim::window_sum(original_start, width)?;
    let mut perturbations = Vec::new();
    let mut distances = Vec::new();
    let mut start = 0usize;
    while start + width <= series_len {
        perturbations.push(LinearClaim::window_sum(start, width)?);
        distances.push((start.abs_diff(original_start) as f64) / width as f64);
        start += width;
    }
    let sens = Sensibility::exponential_decay(lambda, &distances)?;
    ClaimSet::new(original, perturbations, sens.into_weights(), direction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn giuliani_family_counts() {
        // Adoptions: 26 years (1989–2014), width 4, original later window
        // starts at index 4 (1993–1996 vs 1989–1992) ⇒ 18 perturbations
        // when the original comparison is excluded.
        let cs = window_comparison_family(26, 4, 4, 1.5, false).unwrap();
        assert_eq!(cs.len(), 18);
        // Sensibility peaks at the perturbation closest to the original.
        let w = cs.sensibilities();
        assert!(w[0] > w[1], "closest perturbation should dominate");
    }

    #[test]
    fn cdc_firearms_comparison_counts() {
        // 17 years, width 4, original 2001–2004 vs 2005–2008 (later start
        // 4), original included ⇒ 10 perturbations.
        let cs = window_comparison_family(17, 4, 4, 1.5, true).unwrap();
        assert_eq!(cs.len(), 10);
    }

    #[test]
    fn window_sum_counts_match_paper() {
        // CDC (17 years, width 2, original = last two years, start 15):
        // tiles at 0,2,…,14 ⇒ 8 perturbations.
        let cs = window_sum_family(17, 2, 15, Direction::LowerIsStronger, 1.5).unwrap();
        assert_eq!(cs.len(), 8);
        // Synthetic n = 40, width 4, original last tile ⇒ 10 perturbations.
        let cs = window_sum_family(40, 4, 36, Direction::LowerIsStronger, 1.5).unwrap();
        assert_eq!(cs.len(), 10);
        // Robustness n = 100, width 4 ⇒ 25 perturbations.
        let cs = window_sum_family(100, 4, 96, Direction::HigherIsStronger, 1.5).unwrap();
        assert_eq!(cs.len(), 25);
    }

    #[test]
    fn window_sum_family_claims_are_disjoint_tiles() {
        let cs = window_sum_family(8, 2, 6, Direction::LowerIsStronger, 1.5).unwrap();
        assert_eq!(cs.len(), 4);
        for k in 0..cs.len() {
            for k2 in (k + 1)..cs.len() {
                assert!(!cs.shares_object(k, k2), "tiles {k} and {k2} overlap");
            }
        }
    }

    #[test]
    fn comparison_rejects_bad_windows() {
        assert!(window_comparison_family(10, 4, 2, 1.5, false).is_err()); // earlier would start < 0
        assert!(window_comparison_family(10, 4, 7, 1.5, false).is_err()); // later overruns
        assert!(window_comparison_family(10, 0, 4, 1.5, false).is_err());
        assert!(window_sum_family(10, 3, 9, Direction::LowerIsStronger, 1.5).is_err());
    }

    #[test]
    fn comparison_claim_evaluates() {
        let cs = window_comparison_family(8, 2, 4, 1.5, false).unwrap();
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        // Original: (x4+x5) − (x2+x3) = 9 − 5 = 4.
        assert_eq!(cs.original_value(&x), 4.0);
    }
}
