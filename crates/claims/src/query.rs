//! Query-function abstractions consumed by the MinVar / MaxPr engines.
//!
//! A [`QueryFunction`] is the paper's `f`: a real-valued function of the
//! object values. The optimization engines in `fc-core` work against this
//! trait. Queries that decompose into a sum of *scoped* terms — one term
//! per claim, each referencing only that claim's objects — additionally
//! implement [`DecomposableQuery`], which unlocks the polynomial
//! Theorem 3.8 `EV` computation (per-term variances + per-pair
//! covariances over small scopes instead of the full joint).

use crate::claim::LinearClaim;
use serde::{Deserialize, Serialize};

/// The paper's query function `f : values → ℝ`.
pub trait QueryFunction {
    /// Sorted object indices `f` depends on.
    fn objects(&self) -> Vec<usize>;

    /// Evaluates `f` on a full value vector (indexed by object id).
    fn eval(&self, values: &[f64]) -> f64;

    /// If `f` is affine — `f(X) = b + Σ wᵢ Xᵢ` — its dense weights and
    /// constant, enabling the modular fast paths of Lemma 3.1.
    fn as_affine(&self, _n: usize) -> Option<(Vec<f64>, f64)> {
        None
    }
}

/// A query decomposing as `f(X) = Σ_k term_k(X)`, where `term_k` depends
/// only on the objects in `term_objects(k)`.
pub trait DecomposableQuery: QueryFunction {
    /// Number of additive terms (`m`, the perturbation count).
    fn num_terms(&self) -> usize;

    /// Sorted object indices referenced by term `k`.
    fn term_objects(&self, k: usize) -> &[usize];

    /// Evaluates term `k` on values aligned with [`Self::term_objects`].
    fn eval_term(&self, k: usize, scoped: &[f64]) -> f64;
}

/// A [`LinearClaim`] re-indexed against an explicit scope, so it can be
/// evaluated on scope-aligned value buffers without touching the full
/// value vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct ScopedLinear {
    /// `(position in scope, weight)` pairs.
    terms: Vec<(usize, f64)>,
    bias: f64,
}

impl ScopedLinear {
    /// Re-indexes `claim` against `scope` (which must contain all of the
    /// claim's objects, sorted ascending).
    pub(crate) fn new(claim: &LinearClaim, scope: &[usize]) -> Self {
        let terms = claim
            .terms()
            .iter()
            .map(|&(obj, w)| {
                let pos = scope
                    .binary_search(&obj)
                    .expect("scope must cover the claim's objects");
                (pos, w)
            })
            .collect();
        Self {
            terms,
            bias: claim.bias_term(),
        }
    }

    /// Evaluates on a scope-aligned buffer.
    #[inline]
    pub(crate) fn eval(&self, scoped: &[f64]) -> f64 {
        self.bias
            + self
                .terms
                .iter()
                .map(|&(pos, w)| w * scoped[pos])
                .sum::<f64>()
    }
}

/// Whether an indicator fires below or at-least a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndicatorSense {
    /// `1[q(X) < Γ]` (strict).
    Below,
    /// `1[q(X) ≥ Γ]`.
    AtLeast,
}

/// A threshold indicator query `1[q(X) < Γ]` or `1[q(X) ≥ Γ]` for a linear
/// `q` — the non-linear query shape of Examples 3 and 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdIndicatorQuery {
    claim: LinearClaim,
    objects: Vec<usize>,
    scoped: ScopedLinear,
    threshold: f64,
    sense: IndicatorSense,
}

impl ThresholdIndicatorQuery {
    /// Builds the indicator for `claim` against `threshold`.
    pub fn new(claim: LinearClaim, threshold: f64, sense: IndicatorSense) -> Self {
        let objects = claim.objects();
        let scoped = ScopedLinear::new(&claim, &objects);
        Self {
            claim,
            objects,
            scoped,
            threshold,
            sense,
        }
    }

    /// The underlying linear claim.
    pub fn claim(&self) -> &LinearClaim {
        &self.claim
    }

    /// The threshold `Γ`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    #[inline]
    fn indicate(&self, q: f64) -> f64 {
        let fired = match self.sense {
            IndicatorSense::Below => q < self.threshold,
            IndicatorSense::AtLeast => q >= self.threshold,
        };
        if fired {
            1.0
        } else {
            0.0
        }
    }
}

impl QueryFunction for ThresholdIndicatorQuery {
    fn objects(&self) -> Vec<usize> {
        self.objects.clone()
    }

    fn eval(&self, values: &[f64]) -> f64 {
        self.indicate(self.claim.eval(values))
    }
}

impl DecomposableQuery for ThresholdIndicatorQuery {
    fn num_terms(&self) -> usize {
        1
    }

    fn term_objects(&self, _k: usize) -> &[usize] {
        &self.objects
    }

    fn eval_term(&self, _k: usize, scoped: &[f64]) -> f64 {
        self.indicate(self.scoped.eval(scoped))
    }
}

/// An arbitrary query given by a closure over the full value vector.
/// Implements only [`QueryFunction`] (no decomposition), so it exercises
/// the exact/Monte-Carlo engines — handy for tests and custom analyses.
pub struct ClosureQuery<F: Fn(&[f64]) -> f64> {
    objects: Vec<usize>,
    f: F,
}

impl<F: Fn(&[f64]) -> f64> ClosureQuery<F> {
    /// Wraps `f`, declaring the objects it reads.
    pub fn new(mut objects: Vec<usize>, f: F) -> Self {
        objects.sort_unstable();
        objects.dedup();
        Self { objects, f }
    }
}

impl<F: Fn(&[f64]) -> f64> QueryFunction for ClosureQuery<F> {
    fn objects(&self) -> Vec<usize> {
        self.objects.clone()
    }

    fn eval(&self, values: &[f64]) -> f64 {
        (self.f)(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_linear_matches_full_eval() {
        let c = LinearClaim::new([(2, 1.5), (7, -2.0)], 0.5).unwrap();
        let scope = vec![0, 2, 5, 7];
        let s = ScopedLinear::new(&c, &scope);
        let full = [9.0, 0.0, 4.0, 0.0, 0.0, 1.0, 0.0, 3.0];
        let scoped = [9.0, 4.0, 1.0, 3.0];
        assert_eq!(s.eval(&scoped), c.eval(&full));
    }

    #[test]
    fn indicator_example3_shape() {
        // f(X) = 1[X1 + X2 + X3 < 3] over binary values.
        let q = ThresholdIndicatorQuery::new(
            LinearClaim::window_sum(0, 3).unwrap(),
            3.0,
            IndicatorSense::Below,
        );
        assert_eq!(q.eval(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(q.eval(&[1.0, 0.0, 1.0]), 1.0);
        assert_eq!(q.num_terms(), 1);
        assert_eq!(q.term_objects(0), &[0, 1, 2]);
        assert_eq!(q.eval_term(0, &[1.0, 1.0, 0.0]), 1.0);
    }

    #[test]
    fn indicator_at_least_sense() {
        let q = ThresholdIndicatorQuery::new(
            LinearClaim::window_sum(0, 2).unwrap(),
            5.0,
            IndicatorSense::AtLeast,
        );
        assert_eq!(q.eval(&[2.0, 3.0]), 1.0); // 5 >= 5
        assert_eq!(q.eval(&[2.0, 2.9]), 0.0);
    }

    #[test]
    fn closure_query() {
        let q = ClosureQuery::new(vec![1, 0, 1], |v| v[0] * v[1]);
        assert_eq!(q.objects(), vec![0, 1]);
        assert_eq!(q.eval(&[3.0, 4.0]), 12.0);
        assert!(q.as_affine(2).is_none());
    }
}
