//! CDC-style injury datasets with published error models (§4).
//!
//! "CDC routinely collects statistics on injuries … and publishes the
//! data along with statistics like standard errors … sampling procedures
//! used by CDC ensure that the errors are independent and follow
//! approximately normal distributions."
//!
//! * **CDC-firearms** — estimated nonfatal firearm injuries, 2001–2017
//!   (17 values) with per-year standard errors;
//! * **CDC-causes** — firearms + transportation + drowning + falls over
//!   the same period (68 values, year-major layout: object
//!   `y·4 + cause`);
//! * **dependency variant** (§4.5) — covariance
//!   `Cov[X_i, X_j] = γ^{j−i} σ_i σ_j` injected over CDC-firearms.
//!
//! Substitution (DESIGN.md): fixed, documented series at the real
//! magnitudes; standard errors use WISQARS-typical coefficients of
//! variation (6–12%), drawn deterministically per seed. Costs follow the
//! paper's recency model exactly (2001 → 195–200, 2002 → 190–195, …).

use crate::costs::{recency_decreasing_costs, replicate_per_year};
use fc_core::{GaussianInstance, Result};
use fc_uncertain::seeded::child_rng;
use fc_uncertain::MultivariateNormal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// First year covered by the CDC series.
pub const CDC_FIRST_YEAR: u16 = 2001;
/// Number of years covered (2001–2017).
pub const CDC_YEARS: usize = 17;

/// Nonfatal firearm injury estimates, 2001–2017.
const FIREARMS: [f64; CDC_YEARS] = [
    63_012.0, 58_841.0, 65_834.0, 64_389.0, 69_825.0, 71_417.0, 69_863.0, 78_622.0, 66_769.0,
    73_505.0, 73_883.0, 81_396.0, 84_258.0, 81_034.0, 84_997.0, 116_414.0, 134_557.0,
];

/// Nonfatal transportation injury estimates (same period).
const TRANSPORTATION: [f64; CDC_YEARS] = [
    4_456_000.0,
    4_380_000.0,
    4_299_000.0,
    4_251_000.0,
    4_180_000.0,
    4_092_000.0,
    4_021_000.0,
    3_949_000.0,
    3_870_000.0,
    3_848_000.0,
    3_816_000.0,
    3_894_000.0,
    3_790_000.0,
    3_851_000.0,
    4_020_000.0,
    4_133_000.0,
    4_196_000.0,
];

/// Nonfatal drowning injury estimates (same period).
const DROWNING: [f64; CDC_YEARS] = [
    4_840.0, 5_040.0, 5_220.0, 5_480.0, 5_350.0, 5_110.0, 5_590.0, 5_280.0, 5_760.0, 5_620.0,
    5_480.0, 5_910.0, 5_700.0, 5_850.0, 6_210.0, 6_080.0, 6_400.0,
];

/// Nonfatal fall injury estimates (same period).
const FALLS: [f64; CDC_YEARS] = [
    7_910_000.0,
    8_060_000.0,
    8_190_000.0,
    8_280_000.0,
    8_110_000.0,
    8_350_000.0,
    8_420_000.0,
    8_550_000.0,
    8_690_000.0,
    8_760_000.0,
    8_950_000.0,
    9_080_000.0,
    9_170_000.0,
    9_060_000.0,
    9_210_000.0,
    9_340_000.0,
    9_450_000.0,
];

/// The four CDC-causes categories, in object-layout order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CdcCause {
    /// Nonfatal firearm injuries.
    Firearms = 0,
    /// Nonfatal transportation injuries.
    Transportation = 1,
    /// Nonfatal drownings.
    Drowning = 2,
    /// Nonfatal falls.
    Falls = 3,
}

impl CdcCause {
    /// All causes in layout order.
    pub const ALL: [CdcCause; 4] = [
        CdcCause::Firearms,
        CdcCause::Transportation,
        CdcCause::Drowning,
        CdcCause::Falls,
    ];

    /// Series for this cause.
    pub fn series(self) -> &'static [f64; CDC_YEARS] {
        match self {
            CdcCause::Firearms => &FIREARMS,
            CdcCause::Transportation => &TRANSPORTATION,
            CdcCause::Drowning => &DROWNING,
            CdcCause::Falls => &FALLS,
        }
    }
}

/// Object index of `(year_idx, cause)` in the CDC-causes layout.
pub fn causes_object(year_idx: usize, cause: CdcCause) -> usize {
    year_idx * 4 + cause as usize
}

/// The firearms series (current/reported values).
pub fn cdc_firearms_series() -> Vec<f64> {
    FIREARMS.to_vec()
}

/// The 68-value CDC-causes series in year-major layout.
pub fn cdc_causes_series() -> Vec<f64> {
    let mut out = Vec::with_capacity(4 * CDC_YEARS);
    for y in 0..CDC_YEARS {
        for cause in CdcCause::ALL {
            out.push(cause.series()[y]);
        }
    }
    out
}

/// Per-value standard deviations: WISQARS-typical coefficients of
/// variation in `[0.06, 0.12]`, deterministic per `(seed, stream)`.
fn cv_sds(values: &[f64], seed: u64, stream: u64) -> Vec<f64> {
    let mut rng = child_rng(seed, stream);
    values
        .iter()
        .map(|&v| v * rng.gen_range(0.06..=0.12))
        .collect()
}

/// CDC-firearms as a Gaussian instance (independent errors, recency
/// costs).
pub fn cdc_firearms_gaussian(seed: u64) -> Result<GaussianInstance> {
    let values = cdc_firearms_series();
    let sds = cv_sds(&values, seed, 0xCDC0);
    let costs = recency_decreasing_costs(CDC_YEARS, 200, 5, &mut child_rng(seed, 0xCDC1));
    GaussianInstance::centered_independent(values, &sds, costs)
}

/// CDC-firearms with the §4.5 injected dependency
/// `Cov[X_i, X_j] = γ^{j−i} σ_i σ_j`.
pub fn cdc_firearms_with_dependency(seed: u64, gamma: f64) -> Result<GaussianInstance> {
    let values = cdc_firearms_series();
    let sds = cv_sds(&values, seed, 0xCDC0);
    let costs = recency_decreasing_costs(CDC_YEARS, 200, 5, &mut child_rng(seed, 0xCDC1));
    let mvn = MultivariateNormal::with_geometric_dependency(values.clone(), &sds, gamma)?;
    GaussianInstance::with_mvn(mvn, values, costs)
}

/// CDC-causes as a Gaussian instance (68 values, year-major; all four
/// categories of a year share that year's recency cost).
pub fn cdc_causes_gaussian(seed: u64) -> Result<GaussianInstance> {
    let values = cdc_causes_series();
    let sds = cv_sds(&values, seed, 0xCDC2);
    let per_year = recency_decreasing_costs(CDC_YEARS, 200, 5, &mut child_rng(seed, 0xCDC3));
    let costs = replicate_per_year(&per_year, 4);
    GaussianInstance::centered_independent(values, &sds, costs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_sizes() {
        assert_eq!(cdc_firearms_series().len(), 17);
        let causes = cdc_causes_series();
        assert_eq!(causes.len(), 68);
        // Year-major layout round trip.
        assert_eq!(causes[causes_object(3, CdcCause::Drowning)], DROWNING[3]);
        assert_eq!(causes[causes_object(16, CdcCause::Falls)], FALLS[16]);
    }

    #[test]
    fn firearms_grow_into_2017() {
        let s = cdc_firearms_series();
        assert!(s[16] > 1.5 * s[0], "2017 {} vs 2001 {}", s[16], s[0]);
    }

    #[test]
    fn transportation_claim_is_plausible() {
        // The Fig. 1d claim: transportation > 30% of all other causes
        // combined (last 2-year period) — must hold on current values.
        let last2: f64 = (15..17).map(|y| TRANSPORTATION[y]).sum();
        let others: f64 = (15..17).map(|y| FIREARMS[y] + DROWNING[y] + FALLS[y]).sum();
        assert!(last2 > 0.3 * others, "claim should check out on u");
    }

    #[test]
    fn gaussian_instances_deterministic() {
        assert_eq!(
            cdc_firearms_gaussian(5).unwrap(),
            cdc_firearms_gaussian(5).unwrap()
        );
        assert_eq!(
            cdc_causes_gaussian(5).unwrap(),
            cdc_causes_gaussian(5).unwrap()
        );
    }

    #[test]
    fn cv_band_respected() {
        let g = cdc_firearms_gaussian(1).unwrap();
        for i in 0..g.len() {
            let cv = g.sd(i) / g.mean(i);
            assert!((0.06..=0.12).contains(&cv), "cv {cv}");
        }
    }

    #[test]
    fn cost_bands_follow_recency() {
        let g = cdc_firearms_gaussian(1).unwrap();
        assert!((195..=200).contains(&g.cost(0)));
        assert!((115..=120).contains(&g.cost(16)));
        let gc = cdc_causes_gaussian(1).unwrap();
        // All four categories of a year share its cost.
        for y in 0..CDC_YEARS {
            let c0 = gc.cost(causes_object(y, CdcCause::Firearms));
            for cause in CdcCause::ALL {
                assert_eq!(gc.cost(causes_object(y, cause)), c0);
            }
        }
    }

    #[test]
    fn dependency_variant_has_correlations() {
        let g = cdc_firearms_with_dependency(1, 0.7).unwrap();
        assert!(!g.is_independent());
        let c01 = g.mvn().cov().get(0, 1);
        let expect = 0.7 * g.sd(0) * g.sd(1);
        assert!((c01 - expect).abs() < 1e-6 * expect.abs());
        // γ = 0 recovers independence.
        let g0 = cdc_firearms_with_dependency(1, 0.0).unwrap();
        assert!(g0.is_independent());
    }
}
