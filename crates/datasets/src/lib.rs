//! # fc-datasets — datasets and workload builders
//!
//! Everything the paper's evaluation (§4) runs on:
//!
//! * [`adoptions`] — the NYC adoptions series (1989–2014) behind
//!   Giuliani's window-aggregate claim (Example 4, Fig. 1a/1b, Fig. 12);
//! * [`cdc`] — CDC-style injury statistics with published-error models:
//!   `CDC-firearms` (17 years) and `CDC-causes` (4 causes × 17 years),
//!   including the §4.5 injected-dependency variant;
//! * [`synthetic`] — the `URx` / `LNx` / `SMx` value-distribution
//!   generators and their cost models;
//! * [`costs`] — cost generators (uniform, extreme, recency-decreasing);
//! * [`workloads`] — one builder per experiment, pairing a dataset with
//!   its claim family and query function exactly as §4 describes.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The paper uses real published series (NYC adoptions; CDC WISQARS
//! estimates with standard errors). Those exact numbers are not
//! redistributable inputs of this reproduction, so the modules below ship
//! *fixed, documented* series at the same magnitudes with the same
//! qualitative shape (early-90s adoptions hump; firearm-injury growth
//! through 2017). Every algorithmic quantity the experiments depend on —
//! error model, discretization, costs, claim structure — follows the
//! paper exactly.

pub mod adoptions;
pub mod cdc;
pub mod costs;
pub mod synthetic;
pub mod workloads;

pub use adoptions::{adoptions_gaussian, adoptions_series, ADOPTIONS_FIRST_YEAR};
pub use cdc::{
    cdc_causes_gaussian, cdc_causes_series, cdc_firearms_gaussian, cdc_firearms_series,
    cdc_firearms_with_dependency, CdcCause, CDC_FIRST_YEAR, CDC_YEARS,
};
pub use synthetic::{lnx, smx, urx, SyntheticKind};
