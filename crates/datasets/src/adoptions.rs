//! The Adoptions dataset (Example 4 / §4.1).
//!
//! "Adoptions is a dataset derived from the number of adoptions in the
//! New York City during 1989–2014. … `X_i` follows a normal distribution
//! with mean `u_i` (the current reported value) and standard deviation
//! drawn uniformly from `[1, 50]`. The cost of cleaning each `X_i` is
//! drawn uniformly at random from `[1, 100]`."
//!
//! Substitution (DESIGN.md): the 26 yearly counts below are a fixed,
//! documented series at the historical magnitude with the early-1990s
//! rise that makes the Giuliani-style claim (1993–1996 vs. 1989–1992)
//! check out; the experiments only consume the series through the error
//! and cost models quoted above, which are reproduced exactly.

use crate::costs::uniform_costs;
use fc_core::{GaussianInstance, Result};
use fc_uncertain::seeded::child_rng;
use rand::Rng;

/// First year of the series.
pub const ADOPTIONS_FIRST_YEAR: u16 = 1989;

/// Yearly adoption counts, 1989–2014 (26 values).
const ADOPTIONS: [f64; 26] = [
    1_800.0, 1_900.0, 2_100.0, 2_300.0, // 1989–1992
    2_600.0, 2_900.0, 3_200.0, 3_600.0, // 1993–1996
    3_900.0, 4_200.0, 4_000.0, 3_800.0, // 1997–2000
    3_600.0, 3_300.0, 3_100.0, 2_900.0, // 2001–2004
    2_700.0, 2_500.0, 2_300.0, 2_200.0, // 2005–2008
    2_000.0, 1_900.0, 1_700.0, 1_600.0, // 2009–2012
    1_450.0, 1_350.0, // 2013–2014
];

/// The raw yearly series (current/reported values `u`).
pub fn adoptions_series() -> Vec<f64> {
    ADOPTIONS.to_vec()
}

/// The Adoptions instance: `X_i ~ N(u_i, σ_i²)` centered at the reported
/// values with `σ_i ~ U[1, 50]` and costs `~ U{1..100}`, deterministic in
/// `seed`.
pub fn adoptions_gaussian(seed: u64) -> Result<GaussianInstance> {
    let values = adoptions_series();
    let mut rng = child_rng(seed, 0xAD0);
    let sds: Vec<f64> = (0..values.len())
        .map(|_| rng.gen_range(1.0..=50.0))
        .collect();
    let costs = uniform_costs(values.len(), 1, 100, &mut child_rng(seed, 0xAD1));
    GaussianInstance::centered_independent(values, &sds, costs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_shape() {
        let s = adoptions_series();
        assert_eq!(s.len(), 26);
        // Giuliani's comparison must favor 1993–1996 over 1989–1992.
        let early: f64 = s[0..4].iter().sum();
        let later: f64 = s[4..8].iter().sum();
        assert!(later > 1.4 * early, "later {later} vs early {early}");
    }

    #[test]
    fn instance_is_deterministic_per_seed() {
        let a = adoptions_gaussian(7).unwrap();
        let b = adoptions_gaussian(7).unwrap();
        assert_eq!(a, b);
        let c = adoptions_gaussian(8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn error_and_cost_ranges() {
        let g = adoptions_gaussian(3).unwrap();
        for i in 0..g.len() {
            let sd = g.sd(i);
            assert!((1.0..=50.0).contains(&sd), "sd {sd}");
            assert!((1..=100).contains(&g.cost(i)), "cost {}", g.cost(i));
            assert_eq!(g.mean(i), g.current()[i], "centered at current");
        }
    }
}
