//! One builder per experiment in §4, pairing datasets with claim
//! families and query functions exactly as the paper describes.

use crate::adoptions::adoptions_gaussian;
use crate::cdc::{
    cdc_causes_gaussian, cdc_firearms_gaussian, cdc_firearms_with_dependency, CdcCause, CDC_YEARS,
};
use crate::synthetic::{synthetic_instance, SyntheticKind};
use fc_claims::{
    window_comparison_family, window_sum_family, BiasQuery, ClaimSet, Direction, DupQuery,
    FragQuery, LinearClaim, QueryFunction, Sensibility,
};
use fc_core::{CoreError, GaussianInstance, Instance, Result};
use fc_uncertain::seeded::child_rng;

/// Sensibility decay rate used across the experiments (§4.1: λ = 1.5).
pub const LAMBDA: f64 = 1.5;

/// A fairness (modular MinVar) workload over Gaussian errors.
#[derive(Debug, Clone)]
pub struct FairnessWorkload {
    /// The data with its error model.
    pub instance: GaussianInstance,
    /// Original claim + perturbations + sensibilities.
    pub claims: ClaimSet,
    /// Dense weights of the affine bias query (`f = b + wᵀX`).
    pub weights: Vec<f64>,
}

fn fairness_workload(instance: GaussianInstance, claims: ClaimSet) -> Result<FairnessWorkload> {
    let n = instance.len();
    let q = BiasQuery::relative_to_original(claims.clone());
    let (weights, _b) = q.as_affine(n).ok_or(CoreError::NotAffine)?;
    Ok(FairnessWorkload {
        instance,
        claims,
        weights,
    })
}

/// Fig. 1a/1b — Giuliani's adoption claim: 1993–1996 vs. 1989–1992
/// (window width 4, later window starts at index 4), 18 perturbations,
/// sensibility decay λ = 1.5.
pub fn giuliani_fairness(seed: u64) -> Result<FairnessWorkload> {
    let instance = adoptions_gaussian(seed)?;
    let claims = window_comparison_family(instance.len(), 4, 4, LAMBDA, false)
        .map_err(|_| CoreError::EmptyInstance)?;
    fairness_workload(instance, claims)
}

/// Fig. 1c — CDC-firearms: 2001–2004 vs. 2005–2008 window comparison,
/// 10 perturbations.
pub fn cdc_firearms_fairness(seed: u64) -> Result<FairnessWorkload> {
    let instance = cdc_firearms_gaussian(seed)?;
    let claims = window_comparison_family(CDC_YEARS, 4, 4, LAMBDA, true)
        .map_err(|_| CoreError::EmptyInstance)?;
    fairness_workload(instance, claims)
}

/// Fig. 1d — CDC-causes: "injuries due to transportation exceed 30% of
/// all other causes combined over the last 2-year period"; 16 sliding
/// 2-year perturbations.
pub fn cdc_causes_fairness(seed: u64) -> Result<FairnessWorkload> {
    let instance = cdc_causes_gaussian(seed)?;
    let original_year = CDC_YEARS - 2; // last 2-year period
    let claim_for_year = |y: usize| -> LinearClaim {
        let mut terms = Vec::with_capacity(8);
        for dy in 0..2 {
            for cause in CdcCause::ALL {
                let w = if cause == CdcCause::Transportation {
                    1.0
                } else {
                    -0.3
                };
                terms.push((crate::cdc::causes_object(y + dy, cause), w));
            }
        }
        LinearClaim::new(terms, 0.0).expect("non-empty claim")
    };
    let original = claim_for_year(original_year);
    let mut perturbations = Vec::new();
    let mut distances = Vec::new();
    for y in 0..=(CDC_YEARS - 2) {
        perturbations.push(claim_for_year(y));
        distances.push(y.abs_diff(original_year) as f64);
    }
    let sens =
        Sensibility::exponential_decay(LAMBDA, &distances).map_err(|_| CoreError::EmptyInstance)?;
    let claims = ClaimSet::new(
        original,
        perturbations,
        sens.into_weights(),
        Direction::HigherIsStronger,
    )
    .map_err(|_| CoreError::EmptyInstance)?;
    fairness_workload(instance, claims)
}

/// §4.5 — CDC-firearms fairness with injected dependency `γ`.
pub fn dependency_fairness(seed: u64, gamma: f64) -> Result<FairnessWorkload> {
    let instance = cdc_firearms_with_dependency(seed, gamma)?;
    let claims = window_comparison_family(CDC_YEARS, 4, 4, LAMBDA, true)
        .map_err(|_| CoreError::EmptyInstance)?;
    fairness_workload(instance, claims)
}

/// A non-modular MinVar workload (uniqueness or robustness) over a
/// discrete instance.
#[derive(Debug, Clone)]
pub struct UniquenessWorkload {
    /// Discrete instance.
    pub instance: Instance,
    /// The uniqueness (duplicity) query.
    pub query: DupQuery,
}

/// A robustness workload.
#[derive(Debug, Clone)]
pub struct RobustnessWorkload {
    /// Discrete instance.
    pub instance: Instance,
    /// The robustness (fragility) query.
    pub query: FragQuery,
}

/// Start of the width-`w` tile whose *current* sum is smallest — the
/// window a "record low" claim would brag about. (On the steadily
/// rising injury series, anchoring the claim at the literal last window
/// would leave every indicator certain and the duplicity variance
/// identically zero; the claim only has uncertain uniqueness when it
/// points at the borderline record window. Recorded as a workload
/// adaptation in EXPERIMENTS.md.)
fn min_sum_tile(current: &[f64], width: usize) -> usize {
    let mut best = 0usize;
    let mut best_sum = f64::INFINITY;
    let mut start = 0usize;
    while start + width <= current.len() {
        let s: f64 = current[start..start + width].iter().sum();
        if s < best_sum {
            best_sum = s;
            best = start;
        }
        start += width;
    }
    best
}

/// Fig. 2a — CDC-firearms uniqueness: "firearm injuries were as low as
/// Γ" for the record-low 2-year window (Γ = the claim's value on current
/// data); 8 tiled 2-year perturbations; normals discretized to 6 points.
pub fn cdc_firearms_uniqueness(seed: u64) -> Result<UniquenessWorkload> {
    let g = cdc_firearms_gaussian(seed)?;
    let instance = g.discretize(6)?;
    let start = min_sum_tile(instance.current(), 2);
    let claims = window_sum_family(CDC_YEARS, 2, start, Direction::LowerIsStronger, LAMBDA)
        .map_err(|_| CoreError::EmptyInstance)?;
    let gamma = claims.original_value(instance.current());
    let query = DupQuery::new(claims, gamma);
    Ok(UniquenessWorkload { instance, query })
}

/// Fig. 2b — CDC-causes uniqueness: the 2-year cross-cause aggregate "as
/// low as Γ" for the record-low window; 8 tiled perturbations of 8
/// objects each; discretized to 4 points.
pub fn cdc_causes_uniqueness(seed: u64) -> Result<UniquenessWorkload> {
    let g = cdc_causes_gaussian(seed)?;
    let instance = g.discretize(4)?;
    let n = instance.len();
    let start = min_sum_tile(instance.current(), 8);
    let claims = window_sum_family(n, 8, start, Direction::LowerIsStronger, LAMBDA)
        .map_err(|_| CoreError::EmptyInstance)?;
    let gamma = claims.original_value(instance.current());
    let query = DupQuery::new(claims, gamma);
    Ok(UniquenessWorkload { instance, query })
}

/// Figs. 3–5 — synthetic uniqueness: `n` objects (paper: 40), the claim
/// sums the last 4 consecutive values and asserts "as low as Γ"; `n/4`
/// tiled perturbations.
pub fn synthetic_uniqueness(
    kind: SyntheticKind,
    n: usize,
    gamma: f64,
    seed: u64,
) -> Result<UniquenessWorkload> {
    let instance = synthetic_instance(kind, n, seed)?;
    let claims = window_sum_family(n, 4, n - 4, Direction::LowerIsStronger, LAMBDA)
        .map_err(|_| CoreError::EmptyInstance)?;
    let query = DupQuery::new(claims, gamma);
    Ok(UniquenessWorkload { instance, query })
}

/// Fig. 7a — CDC-firearms robustness: "in the last two years, firearm
/// injuries were as high as Γ′" (Γ′ = value on current data).
pub fn cdc_firearms_robustness(seed: u64) -> Result<RobustnessWorkload> {
    let g = cdc_firearms_gaussian(seed)?;
    let instance = g.discretize(6)?;
    let claims = window_sum_family(
        CDC_YEARS,
        2,
        CDC_YEARS - 2,
        Direction::HigherIsStronger,
        LAMBDA,
    )
    .map_err(|_| CoreError::EmptyInstance)?;
    let gamma = claims.original_value(instance.current());
    let query = FragQuery::new(claims, gamma);
    Ok(RobustnessWorkload { instance, query })
}

/// Fig. 7b — synthetic robustness: `n` objects (paper: 100), width-4
/// claim "as high as Γ′", 25 tiled perturbations.
pub fn synthetic_robustness(
    kind: SyntheticKind,
    n: usize,
    gamma_prime: f64,
    seed: u64,
) -> Result<RobustnessWorkload> {
    let instance = synthetic_instance(kind, n, seed)?;
    let claims = window_sum_family(n, 4, n - 4, Direction::HigherIsStronger, LAMBDA)
        .map_err(|_| CoreError::EmptyInstance)?;
    let query = FragQuery::new(claims, gamma_prime);
    Ok(RobustnessWorkload { instance, query })
}

/// Fig. 10 — scaling workload: URx with `n` objects and `n/4` width-4
/// tiled perturbations covering all values; Γ = 100.
pub fn scaling_uniqueness(n: usize, seed: u64) -> Result<UniquenessWorkload> {
    synthetic_uniqueness(SyntheticKind::Urx, n, 100.0, seed)
}

/// A counterargument-hunting (§4.3) workload.
#[derive(Debug, Clone)]
pub struct CountersWorkload {
    /// Discrete instance whose current values are *noisy draws*.
    pub instance: Instance,
    /// The claim family (original = the window the claim brags about).
    pub claims: ClaimSet,
    /// The affine bias query driving GreedyMaxPr (θ = q°(current)).
    pub query: BiasQuery,
    /// Hidden ground-truth values (draws from the same distributions).
    pub truth: Vec<f64>,
    /// Suggested surprise threshold: τ = σ(bias)/2. With τ = 0 the
    /// surprise probability saturates after one or two cleanings and
    /// GreedyMaxPr's refusal behaviour (Fig. 12) kicks in immediately; a
    /// dispersion-scaled τ makes "tangible improvement" (§2.2) concrete.
    pub tau: f64,
}

/// τ = σ(f)/2 for an affine query over the instance.
fn dispersion_tau(instance: &Instance, query: &BiasQuery) -> f64 {
    let (w, _) = query
        .as_affine(instance.len())
        .expect("bias queries are affine");
    let var: f64 = w
        .iter()
        .enumerate()
        .map(|(i, wi)| wi * wi * instance.variance(i))
        .sum();
    0.5 * var.sqrt()
}

/// Builds a sliding-window sum family (richer than the tiled family —
/// used by the counters scenario where any other window can counter).
fn sliding_sum_family(
    series_len: usize,
    width: usize,
    original_start: usize,
    direction: Direction,
) -> ClaimSet {
    let original = LinearClaim::window_sum(original_start, width).expect("valid window");
    let mut perturbations = Vec::new();
    let mut distances = Vec::new();
    for s in 0..=(series_len - width) {
        if s == original_start {
            continue;
        }
        perturbations.push(LinearClaim::window_sum(s, width).expect("valid window"));
        distances.push(s.abs_diff(original_start) as f64);
    }
    let sens = Sensibility::exponential_decay(LAMBDA, &distances).expect("non-empty");
    ClaimSet::new(original, perturbations, sens.into_weights(), direction)
        .expect("validated family")
}

/// §4.3 — CDC-firearms counters: the claim brags the last-4-years sum is
/// the lowest in recent history; current values and hidden truths are
/// independent draws from the error model.
///
/// The MaxPr query uses the *plain-subtraction* bias
/// (`Δ = q_k(X) − θ`, i.e. `Direction::HigherIsStronger` folded out):
/// for a lowest-claim, the bias dropping means other windows coming in
/// *below* the bragged one — exactly the counterargument. The claim set
/// itself keeps [`Direction::LowerIsStronger`] so
/// `ClaimSet::strongest_duplicate` checks counters correctly.
pub fn counters_firearms(seed: u64) -> Result<CountersWorkload> {
    let g = cdc_firearms_gaussian(seed)?;
    let base = g.discretize(6)?;
    let mut rng = child_rng(seed, 0xC0FE);
    let current: Vec<f64> = (0..base.len())
        .map(|i| base.dist(i).sample(&mut rng))
        .collect();
    let truth: Vec<f64> = (0..base.len())
        .map(|i| base.dist(i).sample(&mut rng))
        .collect();
    let instance = Instance::new(
        base.joint().dists().to_vec(),
        current,
        base.costs().to_vec(),
    )?;
    // "Lowest in recent history": the claim brags about the 4-year
    // window with the smallest sum on the (noisy) current data.
    let start = min_sum_window_sliding(instance.current(), 4);
    let claims = sliding_sum_family(CDC_YEARS, 4, start, Direction::LowerIsStronger);
    let theta = claims.original_value(instance.current());
    let query = BiasQuery::new(claims.with_direction(Direction::HigherIsStronger), theta);
    let tau = dispersion_tau(&instance, &query);
    Ok(CountersWorkload {
        instance,
        claims,
        query,
        truth,
        tau,
    })
}

/// Start of the width-`w` *sliding* window with the smallest current sum.
fn min_sum_window_sliding(current: &[f64], width: usize) -> usize {
    let mut best = 0usize;
    let mut best_sum = f64::INFINITY;
    for start in 0..=(current.len() - width) {
        let s: f64 = current[start..start + width].iter().sum();
        if s < best_sum {
            best_sum = s;
            best = start;
        }
    }
    best
}

/// §4.3 — synthetic counters over `n` objects with sliding width-4
/// windows (the paper's URx scenario uses `n = 40`).
pub fn counters_synthetic(kind: SyntheticKind, n: usize, seed: u64) -> Result<CountersWorkload> {
    let base = synthetic_instance(kind, n, seed)?;
    let mut rng = child_rng(seed, 0xC0FF);
    let truth: Vec<f64> = (0..base.len())
        .map(|i| base.dist(i).sample(&mut rng))
        .collect();
    let start = min_sum_window_sliding(base.current(), 4);
    let claims = sliding_sum_family(n, 4, start, Direction::LowerIsStronger);
    let theta = claims.original_value(base.current());
    let query = BiasQuery::new(claims.with_direction(Direction::HigherIsStronger), theta);
    let tau = dispersion_tau(&base, &query);
    Ok(CountersWorkload {
        instance: base,
        claims,
        query,
        truth,
        tau,
    })
}

/// §4.3 — URx counters (n = 40, width-4 windows).
pub fn counters_urx(seed: u64) -> Result<CountersWorkload> {
    counters_synthetic(SyntheticKind::Urx, 40, seed)
}

/// §4.6 — competing-objectives workload (Fig. 12): the adoptions error
/// model, a 4-year window-sum claim with non-overlapping perturbations,
/// and current values *re-drawn* from the distributions (so Theorem 3.9
/// no longer applies).
#[derive(Debug, Clone)]
pub struct CompetingWorkload {
    /// Gaussian instance with redrawn current values.
    pub instance: GaussianInstance,
    /// The claim family.
    pub claims: ClaimSet,
    /// Dense weights of the bias query against θ = q°(current).
    pub weights: Vec<f64>,
}

/// Builds the Fig. 12 workload for a given seed (each repetition of the
/// experiment redraws the current values).
pub fn competing_objectives(seed: u64) -> Result<CompetingWorkload> {
    let centered = adoptions_gaussian(seed)?;
    let n = centered.len();
    // Redraw current values from the error model.
    let mut rng = child_rng(seed, 0xF16);
    let current: Vec<f64> = (0..n)
        .map(|i| {
            fc_uncertain::Normal::new(centered.mean(i), centered.sd(i))
                .expect("valid sd")
                .sample(&mut rng)
        })
        .collect();
    let means: Vec<f64> = (0..n).map(|i| centered.mean(i)).collect();
    let sds: Vec<f64> = (0..n).map(|i| centered.sd(i)).collect();
    let instance = GaussianInstance::independent(means, &sds, current, centered.costs().to_vec())?;
    let claims = window_sum_family(n, 4, 4, Direction::HigherIsStronger, LAMBDA)
        .map_err(|_| CoreError::EmptyInstance)?;
    let theta = claims.original_value(instance.current());
    let q = BiasQuery::new(claims.clone(), theta);
    let (weights, _) = q.as_affine(n).ok_or(CoreError::NotAffine)?;
    Ok(CompetingWorkload {
        instance,
        claims,
        weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_claims::DecomposableQuery;

    #[test]
    fn giuliani_counts() {
        let w = giuliani_fairness(1).unwrap();
        assert_eq!(w.instance.len(), 26);
        assert_eq!(w.claims.len(), 18);
        assert_eq!(w.weights.len(), 26);
        assert!(w.weights.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn cdc_fairness_counts() {
        let w = cdc_firearms_fairness(1).unwrap();
        assert_eq!(w.claims.len(), 10);
        let w = cdc_causes_fairness(1).unwrap();
        assert_eq!(w.claims.len(), 16);
        assert_eq!(w.instance.len(), 68);
    }

    #[test]
    fn uniqueness_counts() {
        let w = cdc_firearms_uniqueness(1).unwrap();
        assert_eq!(w.query.claims().len(), 8);
        assert_eq!(w.instance.dist(0).support_size(), 6);
        let w = cdc_causes_uniqueness(1).unwrap();
        assert_eq!(w.query.claims().len(), 8);
        assert_eq!(w.query.claims().max_width(), 8);
        assert_eq!(w.instance.dist(0).support_size(), 4);
        let w = synthetic_uniqueness(SyntheticKind::Urx, 40, 150.0, 1).unwrap();
        assert_eq!(w.query.claims().len(), 10);
    }

    #[test]
    fn robustness_counts() {
        let w = synthetic_robustness(SyntheticKind::Urx, 100, 100.0, 1).unwrap();
        assert_eq!(w.query.claims().len(), 25);
        let w = cdc_firearms_robustness(1).unwrap();
        assert_eq!(w.query.claims().len(), 8);
    }

    #[test]
    fn counters_workloads_consistent() {
        let w = counters_firearms(1).unwrap();
        assert_eq!(w.truth.len(), w.instance.len());
        assert_eq!(w.claims.len(), 13); // 14 sliding windows minus original
        let w = counters_urx(1).unwrap();
        assert_eq!(w.claims.len(), 36); // 37 sliding windows minus original
    }

    #[test]
    fn competing_redraws_current() {
        let w = competing_objectives(1).unwrap();
        // Current values deviate from the means (with prob. 1).
        let deviates = (0..w.instance.len())
            .any(|i| (w.instance.current()[i] - w.instance.mean(i)).abs() > 1e-9);
        assert!(deviates);
        assert_eq!(w.claims.len(), 6);
    }

    #[test]
    fn scaling_workload_shape() {
        let w = scaling_uniqueness(400, 2).unwrap();
        assert_eq!(w.query.claims().len(), 100);
        assert_eq!(w.query.num_terms(), 100);
    }
}
