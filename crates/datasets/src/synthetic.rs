//! The synthetic value-distribution generators of §4: `URx`, `LNx`, `SMx`.
//!
//! "For each value `X_i`, we first choose the size of its support
//! uniformly at random from `[1, 6]`. Then, we generate the distribution
//! for `X_i` with one of the following methods:
//!
//! * **URx** … elements of `supp(X_i)` uniformly at random from
//!   `[1, 100]` without replacement; probability of each element in
//!   proportion to a number drawn uniformly at random from `(0, 1]`.
//! * **LNx** … start with a log-normal with `μ = 0` and `σ` uniform in
//!   `(0, 1]`; quantilize into `|supp(X_i)|` equal-probability
//!   intervals; elements near the right ends; probabilities in
//!   proportion to the density.
//! * **SMx** … elements as URx, probabilities in proportion to a random
//!   number in `(0, 0.1] ∪ [0.9, 1)` — either low or high (multimodal).
//!
//! For cleaning cost, we draw it uniformly at random from `[1, 10]`."
//!
//! Current (noisy) values are independent draws from each distribution
//! (§4.3: "to establish the hidden true values as well as the current
//! noisy values, we randomly sample from the value distribution of each
//! object").

use crate::costs::uniform_costs;
use fc_core::{Instance, Result};
use fc_uncertain::seeded::child_rng;
use fc_uncertain::{DiscreteDist, LogNormal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which synthetic generator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyntheticKind {
    /// Fairly random distributions over `[1, 100]`.
    Urx,
    /// Skewed but unimodal (log-normal quantilization).
    Lnx,
    /// Multimodal: probabilities either very low or very high.
    Smx,
}

impl SyntheticKind {
    /// Generator name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Self::Urx => "URx",
            Self::Lnx => "LNx",
            Self::Smx => "SMx",
        }
    }
}

/// Draws `k` distinct values uniformly from `[1, 100]`.
fn distinct_values<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Vec<f64> {
    let mut vals: Vec<f64> = Vec::with_capacity(k);
    while vals.len() < k {
        let v = rng.gen_range(1.0..=100.0);
        if vals.iter().all(|&x| (x - v).abs() > 1e-9) {
            vals.push(v);
        }
    }
    vals
}

fn one_dist<R: Rng + ?Sized>(kind: SyntheticKind, rng: &mut R) -> DiscreteDist {
    let k = rng.gen_range(1..=6usize);
    match kind {
        SyntheticKind::Urx => {
            let vals = distinct_values(k, rng);
            let pairs: Vec<(f64, f64)> = vals
                .into_iter()
                .map(|v| (v, rng.gen_range(f64::MIN_POSITIVE..=1.0)))
                .collect();
            DiscreteDist::from_weights(pairs).expect("positive weights")
        }
        SyntheticKind::Lnx => {
            let sigma = rng.gen_range(f64::MIN_POSITIVE..=1.0);
            LogNormal::new(0.0, sigma)
                .expect("sigma > 0")
                .quantilize(k)
                .expect("k ≥ 1")
        }
        SyntheticKind::Smx => {
            let vals = distinct_values(k, rng);
            let pairs: Vec<(f64, f64)> = vals
                .into_iter()
                .map(|v| {
                    let w = if rng.gen_bool(0.5) {
                        rng.gen_range(f64::MIN_POSITIVE..=0.1)
                    } else {
                        rng.gen_range(0.9..1.0)
                    };
                    (v, w)
                })
                .collect();
            DiscreteDist::from_weights(pairs).expect("positive weights")
        }
    }
}

/// Builds a synthetic instance of `n` objects for `kind`, deterministic
/// in `seed`. Costs `~ U{1..10}`; current values are draws from the
/// per-object distributions.
pub fn synthetic_instance(kind: SyntheticKind, n: usize, seed: u64) -> Result<Instance> {
    let mut rng = child_rng(seed, kind as u64);
    let dists: Vec<DiscreteDist> = (0..n).map(|_| one_dist(kind, &mut rng)).collect();
    let mut current_rng = child_rng(seed, 0x100 + kind as u64);
    let current: Vec<f64> = dists.iter().map(|d| d.sample(&mut current_rng)).collect();
    let costs = uniform_costs(n, 1, 10, &mut child_rng(seed, 0x200 + kind as u64));
    Instance::new(dists, current, costs)
}

/// `URx` instance (see module docs).
pub fn urx(n: usize, seed: u64) -> Result<Instance> {
    synthetic_instance(SyntheticKind::Urx, n, seed)
}

/// `LNx` instance (see module docs).
pub fn lnx(n: usize, seed: u64) -> Result<Instance> {
    synthetic_instance(SyntheticKind::Lnx, n, seed)
}

/// `SMx` instance (see module docs).
pub fn smx(n: usize, seed: u64) -> Result<Instance> {
    synthetic_instance(SyntheticKind::Smx, n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_kind() {
        assert_eq!(urx(20, 1).unwrap(), urx(20, 1).unwrap());
        assert_ne!(urx(20, 1).unwrap(), urx(20, 2).unwrap());
        assert_ne!(urx(20, 1).unwrap(), smx(20, 1).unwrap());
    }

    #[test]
    fn urx_support_and_range() {
        let inst = urx(200, 3).unwrap();
        for i in 0..inst.len() {
            let d = inst.dist(i);
            assert!((1..=6).contains(&d.support_size()));
            assert!(d.min_value() >= 1.0 && d.max_value() <= 100.0);
        }
        // Support sizes should spread across 1..=6.
        let sizes: std::collections::HashSet<usize> = (0..inst.len())
            .map(|i| inst.dist(i).support_size())
            .collect();
        assert!(sizes.len() >= 5, "sizes seen: {sizes:?}");
    }

    #[test]
    fn lnx_range_is_much_smaller() {
        // "the resulting range is typically much smaller than the other
        // two methods."
        let ln = lnx(100, 7).unwrap();
        let ur = urx(100, 7).unwrap();
        let ln_max = (0..ln.len())
            .map(|i| ln.dist(i).max_value())
            .fold(0.0, f64::max);
        let ur_max = (0..ur.len())
            .map(|i| ur.dist(i).max_value())
            .fold(0.0, f64::max);
        assert!(ln_max < ur_max, "LNx max {ln_max} vs URx max {ur_max}");
    }

    #[test]
    fn smx_probabilities_are_bimodal() {
        let inst = smx(200, 5).unwrap();
        let mut lows = 0usize;
        let mut highs = 0usize;
        for i in 0..inst.len() {
            let d = inst.dist(i);
            if d.support_size() < 2 {
                continue;
            }
            for &p in d.probs() {
                // Normalized probabilities aren't the raw weights, but a
                // strongly bimodal weight pattern still shows up as a
                // spread of very small and very large masses.
                if p < 0.10 {
                    lows += 1;
                }
                if p > 0.5 {
                    highs += 1;
                }
            }
        }
        assert!(lows > 20, "lows {lows}");
        assert!(highs > 20, "highs {highs}");
    }

    #[test]
    fn costs_in_range_and_current_in_support() {
        let inst = urx(50, 11).unwrap();
        for i in 0..inst.len() {
            assert!((1..=10).contains(&inst.cost(i)));
            let cur = inst.current()[i];
            assert!(
                inst.dist(i).values().contains(&cur),
                "current value must be a support draw"
            );
        }
    }
}
