//! Cleaning-cost generators.
//!
//! The paper uses three cost models: uniform random ranges (Adoptions
//! `U[1,100]`, synthetics `U[1,10]`), an "extreme" two-point variant
//! (`{1, 10}`, mentioned and found to behave the same), and the
//! recency-decreasing CDC model ("the cost of cleaning a value from the
//! year 2001 is a random number in 195–200, the cost for 2002 is in
//! 190–195, etc.").

use rand::Rng;

/// Uniform integer costs in `[lo, hi]`.
pub fn uniform_costs<R: Rng + ?Sized>(n: usize, lo: u64, hi: u64, rng: &mut R) -> Vec<u64> {
    assert!(lo >= 1 && hi >= lo, "costs must be ≥ 1");
    (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// Extreme two-point costs: each object costs `lo` or `hi` with equal
/// probability.
pub fn extreme_costs<R: Rng + ?Sized>(n: usize, lo: u64, hi: u64, rng: &mut R) -> Vec<u64> {
    assert!(lo >= 1 && hi >= lo, "costs must be ≥ 1");
    (0..n)
        .map(|_| if rng.gen_bool(0.5) { lo } else { hi })
        .collect()
}

/// Recency-decreasing costs: position 0 (oldest) draws from
/// `[base − step, base]`, position 1 from `[base − 2·step, base − step]`,
/// etc., never dropping below 1. With `base = 200`, `step = 5` this is
/// exactly the CDC model (2001 → 195–200, 2002 → 190–195, …).
pub fn recency_decreasing_costs<R: Rng + ?Sized>(
    n: usize,
    base: u64,
    step: u64,
    rng: &mut R,
) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let hi = base.saturating_sub(step * i as u64).max(2);
            let lo = hi.saturating_sub(step).max(1);
            rng.gen_range(lo..=hi)
        })
        .collect()
}

/// Replicates a per-year cost vector across `k` interleaved categories
/// (year-major layout: object `y·k + c` costs the year-`y` price). Used
/// by CDC-causes, where all four categories of a year are equally old.
pub fn replicate_per_year(per_year: &[u64], k: usize) -> Vec<u64> {
    per_year
        .iter()
        .flat_map(|&c| std::iter::repeat_n(c, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_uncertain::rng_from_seed;

    #[test]
    fn uniform_in_range() {
        let mut rng = rng_from_seed(1);
        let c = uniform_costs(100, 1, 10, &mut rng);
        assert!(c.iter().all(|&x| (1..=10).contains(&x)));
        assert!(c.iter().any(|&x| x <= 3) && c.iter().any(|&x| x >= 8));
    }

    #[test]
    fn extreme_is_two_point() {
        let mut rng = rng_from_seed(2);
        let c = extreme_costs(100, 1, 10, &mut rng);
        assert!(c.iter().all(|&x| x == 1 || x == 10));
        assert!(c.contains(&1) && c.contains(&10));
    }

    #[test]
    fn recency_decreasing_matches_cdc_bands() {
        let mut rng = rng_from_seed(3);
        let c = recency_decreasing_costs(17, 200, 5, &mut rng);
        assert!((195..=200).contains(&c[0]), "2001 cost {}", c[0]);
        assert!((190..=195).contains(&c[1]), "2002 cost {}", c[1]);
        assert!((115..=120).contains(&c[16]), "2017 cost {}", c[16]);
    }

    #[test]
    fn recency_never_hits_zero() {
        let mut rng = rng_from_seed(4);
        let c = recency_decreasing_costs(100, 20, 5, &mut rng);
        assert!(c.iter().all(|&x| x >= 1));
    }

    #[test]
    fn replicate_per_year_layout() {
        let v = replicate_per_year(&[7, 9], 3);
        assert_eq!(v, vec![7, 7, 7, 9, 9, 9]);
    }
}
