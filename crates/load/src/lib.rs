//! `fc_load` — trace-driven load harness for the fact-cleaning
//! planner's serving stack.
//!
//! The crate is a small pipeline, one module per stage:
//!
//! 1. [`gen`] — deterministic seeded workload generators (Poisson,
//!    bursty, diurnal per-tenant arrivals) producing a…
//! 2. [`trace`] — plain-text, byte-stable request trace
//!    (`timestamp_ms tenant op spec budget`), checked in as a fixture
//!    and replayed identically, which the…
//! 3. [`replay`] — multi-threaded replayer drives through a real
//!    `PlannerServer` over sockets (mixed ops, per-request deadlines,
//!    a seeded mid-flight abandonment mix), recording into…
//! 4. [`hist`] — log-bucketed HDR-style latency histograms, rolled up
//!    by…
//! 5. [`report`] — the `BENCH_serve.json` document, post-drain
//!    invariant checks, and the `BENCH_budget.json` CI gate.
//!
//! Everything here is `std`-only and deterministic modulo wall-clock
//! latencies: the request *sequence* (bodies, stream assignment,
//! abandonment choices) is a pure function of `(trace, config)`, so a
//! checked-in trace fixture pins the workload exactly even though the
//! measured latencies vary run to run.

pub mod gen;
pub mod hist;
pub mod replay;
pub mod report;
pub mod trace;
