//! The replayer: drives a [`Trace`] through a live `PlannerServer`
//! over real sockets via `fact_clean::net::client`, recording latency
//! histograms and outcome counters per op and per tenant.
//!
//! Requests ride a shared keep-alive [`ClientPool`] across N worker
//! threads (events are dealt round-robin, so the *request sequence* —
//! which requests exist, their bodies, which are abandoned — is a pure
//! function of (trace, config); only timings vary run to run).
//! `sweepstream` ops open a dedicated [`SweepStream`] connection
//! instead (chunked responses never pool), draining the point
//! iterator and recording time-to-first-point alongside total
//! latency. A
//! configurable millage of solve requests is *abandoned*: the request
//! is written and the socket dropped without reading the response,
//! exercising the server's disconnect-driven `wait_or_cancel` path
//! under load. Clean ops interleave with solves so cache invalidation
//! happens while the store is hot.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fact_clean::net::api::{BudgetSpec, CleanRequest, RecommendRequest, SweepRequest};
use fact_clean::net::client::{self, ClientError, ClientPool, SweepStream};
use fact_clean::planner::{Goal, Measure, ObjectiveSpec};

use crate::gen::SplitMix64;
use crate::hist::LogHistogram;
use crate::trace::{Op, Trace, TraceEvent};

/// How the replayer drives a trace.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The server to drive.
    pub addr: SocketAddr,
    /// Worker threads issuing requests (events dealt round-robin).
    pub client_threads: usize,
    /// Wall-clock milliseconds per modeled trace millisecond: `1.0`
    /// replays in real time (open loop), `0.0` fires each thread's
    /// events back-to-back (closed loop).
    pub time_scale: f64,
    /// Per-mille of solve requests abandoned mid-flight (socket
    /// dropped without reading the response) to exercise
    /// disconnect-driven cancellation. Clean ops are never abandoned.
    pub abandon_permille: u32,
    /// Per-request client-side deadline (transport error past it).
    pub request_timeout: Duration,
    /// Seed for the abandonment choice (independent of the trace's).
    pub seed: u64,
}

/// What a replayed trace is aimed at: the server's registered streams.
/// `revealed` supplies a valid cleaned value per object index, so the
/// replayer can issue well-formed `clean` bodies without knowing the
/// datasets (the binary derives them from instance means).
#[derive(Debug, Clone)]
pub struct StreamTarget {
    /// Stream id as registered on the server.
    pub id: String,
    /// Cleaned value per object (length = object count).
    pub revealed: Vec<f64>,
}

/// Outcome counters plus a latency histogram (microseconds).
#[derive(Debug, Clone, Default)]
pub struct OpMetrics {
    /// Latencies of requests that got *any* response, in µs.
    pub latency_us: LogHistogram,
    /// For streamed sweeps: time from request start to the first
    /// decoded budget point, in µs (empty for buffered ops).
    pub first_point_us: LogHistogram,
    /// `200` responses.
    pub ok: u64,
    /// `429` quota rejections.
    pub rejected: u64,
    /// Other `4xx` responses.
    pub client_errors: u64,
    /// `5xx` responses.
    pub server_errors: u64,
    /// I/O failures (timeout, refused, reset).
    pub transport_errors: u64,
    /// Requests written and deliberately not awaited.
    pub abandoned: u64,
}

impl OpMetrics {
    fn absorb(&mut self, other: &OpMetrics) {
        self.latency_us.merge(&other.latency_us);
        self.first_point_us.merge(&other.first_point_us);
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.client_errors += other.client_errors;
        self.server_errors += other.server_errors;
        self.transport_errors += other.transport_errors;
        self.abandoned += other.abandoned;
    }

    fn record_status(&mut self, status: u16, elapsed_us: u64) {
        self.latency_us.record(elapsed_us);
        match status {
            200..=299 => self.ok += 1,
            429 => self.rejected += 1,
            400..=499 => self.client_errors += 1,
            _ => self.server_errors += 1,
        }
    }

    /// Total requests issued under this key.
    pub fn issued(&self) -> u64 {
        self.ok
            + self.rejected
            + self.client_errors
            + self.server_errors
            + self.transport_errors
            + self.abandoned
    }
}

/// The merged result of a replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Wall-clock duration of the replay, in ms.
    pub wall_ms: u64,
    /// Metrics keyed by op token (`recommend`/`sweep`/`clean`).
    pub per_op: BTreeMap<String, OpMetrics>,
    /// Metrics keyed by tenant.
    pub per_tenant: BTreeMap<String, OpMetrics>,
}

impl ReplayReport {
    /// Requests issued across all ops.
    pub fn issued(&self) -> u64 {
        self.per_op.values().map(OpMetrics::issued).sum()
    }

    /// `200`s observed across all ops.
    pub fn ok(&self) -> u64 {
        self.per_op.values().map(|m| m.ok).sum()
    }

    /// `429`s observed across all ops.
    pub fn rejected(&self) -> u64 {
        self.per_op.values().map(|m| m.rejected).sum()
    }

    /// Abandoned requests across all ops.
    pub fn abandoned(&self) -> u64 {
        self.per_op.values().map(|m| m.abandoned).sum()
    }

    /// Transport errors across all ops.
    pub fn transport_errors(&self) -> u64 {
        self.per_op.values().map(|m| m.transport_errors).sum()
    }
}

/// FNV-1a over `bytes` — the trace fingerprint in `BENCH_serve.json`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A malformed spec/budget token (trace and targets disagree with the
/// wire vocabulary).
fn bad_token(what: &str, token: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("bad {what} token {token:?}"),
    )
}

/// `f0.2` → [`BudgetSpec::Fraction`]; `a5` → [`BudgetSpec::Absolute`].
fn budget_spec(token: &str) -> io::Result<BudgetSpec> {
    if let Some(frac) = token.strip_prefix('f') {
        let f: f64 = frac.parse().map_err(|_| bad_token("budget", token))?;
        return Ok(BudgetSpec::Fraction(f));
    }
    if let Some(abs) = token.strip_prefix('a') {
        let n: u64 = abs.parse().map_err(|_| bad_token("budget", token))?;
        return Ok(BudgetSpec::Absolute(n));
    }
    Err(bad_token("budget", token))
}

/// `dup` → a measure; `bias@maxpr5` → measure + goal; a `~strategy`
/// suffix (e.g. `dup~slow`) pins the solver strategy — the harness
/// registers a deliberately slow solver so abandoned requests are
/// still mid-solve when the disconnect probe fires.
fn objective_spec(token: &str) -> io::Result<ObjectiveSpec> {
    let (token, strategy) = match token.split_once('~') {
        None => (token, None),
        Some((head, strategy)) if !strategy.is_empty() => (head, Some(strategy)),
        Some(_) => return Err(bad_token("spec", token)),
    };
    let (measure, goal) = match token.split_once('@') {
        None => (token, Goal::MinVar),
        Some((measure, goal)) => {
            let tau: f64 = goal
                .strip_prefix("maxpr")
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad_token("spec", token))?;
            (measure, Goal::MaxPr { tau })
        }
    };
    let measure = match measure {
        "bias" => Measure::Bias,
        "dup" => Measure::Dup,
        "frag" => Measure::Frag,
        _ => return Err(bad_token("spec", token)),
    };
    let mut spec = ObjectiveSpec::new(measure, goal);
    if let Some(strategy) = strategy {
        spec = spec.with_strategy(strategy);
    }
    Ok(spec)
}

/// The (path, body) a trace event puts on the wire, built through the
/// typed [`api`](fact_clean::net::api) structs — the replayer speaks
/// the same vocabulary as the server routes, so a renamed field breaks
/// at the definition, not silently here. Pure function of (event, its
/// global index, targets, seed) — the determinism the acceptance gate
/// relies on.
fn request_for(
    event: &TraceEvent,
    index: usize,
    targets: &[StreamTarget],
    seed: u64,
) -> io::Result<(String, String)> {
    let target = pick_target(event, index, targets);
    match event.op {
        Op::Recommend => {
            let request = RecommendRequest {
                stream: target.id.clone(),
                spec: objective_spec(&event.spec)?,
                budget: budget_spec(&event.budget)?,
            };
            Ok(("/v1/recommend".to_string(), request.encode()))
        }
        Op::Sweep => Ok((
            "/v1/sweep".to_string(),
            sweep_request(event, target)?.encode(),
        )),
        Op::SweepStream => Ok((
            "/v1/sweep?stream=1".to_string(),
            sweep_request(event, target)?.encode(),
        )),
        Op::Clean => {
            let k: usize = event
                .budget
                .strip_prefix('k')
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad_token("clean budget", &event.budget))?;
            let objects_total = target.revealed.len();
            let mut rng = SplitMix64::new(seed ^ (index as u64).wrapping_mul(0x9E37));
            let mut objects: Vec<usize> = (0..k.min(objects_total))
                .map(|_| (rng.next_u64() as usize) % objects_total)
                .collect();
            objects.sort_unstable();
            objects.dedup();
            let request = CleanRequest {
                revealed: objects.iter().map(|&o| target.revealed[o]).collect(),
                objects,
            };
            Ok((format!("/v1/streams/{}/clean", target.id), request.encode()))
        }
    }
}

/// The stream a trace event hits: a pure hash of (tenant, index).
fn pick_target<'t>(
    event: &TraceEvent,
    index: usize,
    targets: &'t [StreamTarget],
) -> &'t StreamTarget {
    &targets[(fnv64(event.tenant.as_bytes()) as usize ^ index) % targets.len()]
}

/// The typed sweep body shared by the buffered and streamed ops — a
/// `sweepstream` event puts the exact bytes of its `sweep` twin on the
/// wire, differing only in the `?stream=1` query.
fn sweep_request(event: &TraceEvent, target: &StreamTarget) -> io::Result<SweepRequest> {
    Ok(SweepRequest {
        stream: target.id.clone(),
        spec: objective_spec(&event.spec)?,
        budgets: event
            .budget
            .split(',')
            .map(budget_spec)
            .collect::<io::Result<_>>()?,
    })
}

/// Writes the request and drops the socket without reading the
/// response: the client walked away mid-flight.
fn abandon(addr: SocketAddr, path: &str, tenant: &str, body: &str) {
    let Ok(mut sock) = TcpStream::connect(addr) else {
        return;
    };
    let _ = client::write_request(&mut sock, "POST", path, &[("x-tenant", tenant)], body);
    // Drop: the server's disconnect probe cancels the in-flight solve.
}

/// Microseconds since `sent`, saturating.
fn elapsed_us(sent: Instant) -> u64 {
    sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Issues one streamed sweep on a dedicated connection, draining the
/// point iterator and recording time-to-first-point alongside total
/// latency. A refusal or a mid-stream error trailer records under its
/// decoded status; transport failures count as such.
fn stream_sweep(
    config: &ReplayConfig,
    request: &SweepRequest,
    tenant_name: &str,
    op: &mut OpMetrics,
    tenant: &mut OpMetrics,
) {
    let sent = Instant::now();
    let stream = match SweepStream::open(
        config.addr,
        Some(config.request_timeout),
        request,
        Some(tenant_name),
    ) {
        Ok(stream) => stream,
        Err(ClientError::Api(e)) => {
            let us = elapsed_us(sent);
            op.record_status(e.status, us);
            tenant.record_status(e.status, us);
            return;
        }
        Err(_) => {
            op.transport_errors += 1;
            tenant.transport_errors += 1;
            return;
        }
    };
    let mut first_us = None;
    let mut failure = None;
    for point in stream {
        if first_us.is_none() {
            first_us = Some(elapsed_us(sent));
        }
        if let Err(e) = point {
            failure = Some(e);
            break;
        }
    }
    let us = elapsed_us(sent);
    match failure {
        None => {
            op.record_status(200, us);
            tenant.record_status(200, us);
            let first = first_us.unwrap_or(us);
            op.first_point_us.record(first);
            tenant.first_point_us.record(first);
        }
        Some(ClientError::Api(e)) => {
            op.record_status(e.status, us);
            tenant.record_status(e.status, us);
        }
        Some(_) => {
            op.transport_errors += 1;
            tenant.transport_errors += 1;
        }
    }
}

/// Replays `trace` against `config.addr`. Fails fast on a malformed
/// trace token; transport errors during the run are *counted*, not
/// fatal (a saturated server refusing connections is data).
pub fn replay(
    config: &ReplayConfig,
    trace: &Trace,
    targets: &[StreamTarget],
) -> io::Result<ReplayReport> {
    if targets.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "replay needs at least one stream target",
        ));
    }
    // Pre-build every request up front: token errors surface before a
    // single byte hits the wire, and the issuing loop stays hot.
    struct Prepared {
        timestamp_ms: u64,
        tenant: String,
        op: Op,
        path: String,
        body: String,
        /// The typed request a streamed sweep opens its dedicated
        /// connection with (`None` for buffered ops).
        sweep: Option<SweepRequest>,
        abandon: bool,
    }
    let abandon_threshold = u64::MAX / 1000 * u64::from(config.abandon_permille.min(1000));
    let mut abandon_rng = SplitMix64::new(config.seed);
    let prepared: Vec<Prepared> = trace
        .events()
        .iter()
        .enumerate()
        .map(|(index, event)| {
            let (path, body) = request_for(event, index, targets, config.seed)?;
            let sweep = match event.op {
                Op::SweepStream => Some(sweep_request(event, pick_target(event, index, targets))?),
                _ => None,
            };
            let abandon = event.op != Op::Clean && abandon_rng.next_u64() < abandon_threshold;
            Ok(Prepared {
                timestamp_ms: event.timestamp_ms,
                tenant: event.tenant.clone(),
                op: event.op,
                path,
                body,
                sweep,
                abandon,
            })
        })
        .collect::<io::Result<_>>()?;

    let threads = config.client_threads.max(1);
    let pool = ClientPool::new(config.addr)?
        .with_timeout(config.request_timeout)
        .with_max_idle(threads);
    let merged: Mutex<ReplayReport> = Mutex::new(ReplayReport::default());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let prepared = &prepared;
            let pool = &pool;
            let merged = &merged;
            scope.spawn(move || {
                let mut per_op: BTreeMap<String, OpMetrics> = BTreeMap::new();
                let mut per_tenant: BTreeMap<String, OpMetrics> = BTreeMap::new();
                for request in prepared.iter().skip(worker).step_by(threads) {
                    if config.time_scale > 0.0 {
                        let due = started
                            + Duration::from_secs_f64(
                                request.timestamp_ms as f64 * config.time_scale / 1000.0,
                            );
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                    }
                    let op = per_op.entry(request.op.token().to_string()).or_default();
                    let tenant = per_tenant.entry(request.tenant.clone()).or_default();
                    if request.abandon {
                        abandon(config.addr, &request.path, &request.tenant, &request.body);
                        op.abandoned += 1;
                        tenant.abandoned += 1;
                        continue;
                    }
                    if let Some(sweep) = &request.sweep {
                        stream_sweep(config, sweep, &request.tenant, op, tenant);
                        continue;
                    }
                    let headers = [("x-tenant", request.tenant.as_str())];
                    let sent = Instant::now();
                    match pool.post(&request.path, &request.body, &headers) {
                        Ok((status, _body)) => {
                            let us = elapsed_us(sent);
                            op.record_status(status, us);
                            tenant.record_status(status, us);
                        }
                        Err(_) => {
                            op.transport_errors += 1;
                            tenant.transport_errors += 1;
                        }
                    }
                }
                let mut all = merged.lock().unwrap_or_else(|e| e.into_inner());
                for (key, metrics) in per_op {
                    all.per_op.entry(key).or_default().absorb(&metrics);
                }
                for (key, metrics) in per_tenant {
                    all.per_tenant.entry(key).or_default().absorb(&metrics);
                }
            });
        }
    });
    let mut report = merged.into_inner().unwrap_or_else(|e| e.into_inner());
    report.wall_ms = started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use fact_clean::net::json::Json;

    fn targets() -> Vec<StreamTarget> {
        vec![
            StreamTarget {
                id: "a".into(),
                revealed: vec![1.0, 2.0, 3.0, 4.0],
            },
            StreamTarget {
                id: "b".into(),
                revealed: vec![5.0, 6.0],
            },
        ]
    }

    fn event(op: Op, spec: &str, budget: &str) -> TraceEvent {
        TraceEvent {
            timestamp_ms: 0,
            tenant: "t".into(),
            op,
            spec: spec.into(),
            budget: budget.into(),
        }
    }

    #[test]
    fn request_building_is_deterministic_and_well_formed() {
        let targets = targets();
        let cases = [
            event(Op::Recommend, "dup", "f0.2"),
            event(Op::Recommend, "bias@maxpr5", "a3"),
            event(Op::Recommend, "dup~slow", "a3"),
            event(Op::Sweep, "frag", "f0.05,f0.1"),
            event(Op::SweepStream, "dup", "f0.05,f0.1"),
            event(Op::Clean, "-", "k3"),
        ];
        for (i, e) in cases.iter().enumerate() {
            let (path_a, body_a) = request_for(e, i, &targets, 42).unwrap();
            let (path_b, body_b) = request_for(e, i, &targets, 42).unwrap();
            assert_eq!((path_a.clone(), body_a.clone()), (path_b, body_b));
            assert!(Json::parse(&body_a).is_ok(), "{body_a}");
            assert!(path_a.starts_with("/v1/"), "{path_a}");
        }
        // A sweepstream event differs from its buffered twin only in
        // the query string — the body bytes are identical.
        let (sweep_path, sweep_body) =
            request_for(&event(Op::Sweep, "dup", "f0.05,f0.1"), 3, &targets, 42).unwrap();
        let (stream_path, stream_body) = request_for(
            &event(Op::SweepStream, "dup", "f0.05,f0.1"),
            3,
            &targets,
            42,
        )
        .unwrap();
        assert_eq!(sweep_path, "/v1/sweep");
        assert_eq!(stream_path, "/v1/sweep?stream=1");
        assert_eq!(sweep_body, stream_body);
        // The stream assignment depends on the event index.
        let (p0, _) = request_for(&cases[5], 0, &targets, 42).unwrap();
        let (p1, _) = request_for(&cases[5], 1, &targets, 42).unwrap();
        assert_ne!(p0, p1, "consecutive cleans should spread across streams");
    }

    #[test]
    fn clean_bodies_reference_valid_objects() {
        let targets = targets();
        let (_, body) = request_for(&event(Op::Clean, "-", "k10"), 5, &targets, 7).unwrap();
        let parsed = Json::parse(&body).unwrap();
        let objects = parsed.get("objects").and_then(Json::as_array).unwrap();
        let revealed = parsed.get("revealed").and_then(Json::as_array).unwrap();
        assert_eq!(objects.len(), revealed.len());
        assert!(!objects.is_empty());
        for o in objects {
            let o = o.as_usize().unwrap();
            assert!(o < 4, "object {o} out of range for the larger target");
        }
    }

    #[test]
    fn bad_tokens_are_rejected_before_the_wire() {
        let targets = targets();
        for e in [
            event(Op::Recommend, "nope", "f0.2"),
            event(Op::Recommend, "dup", "x1"),
            event(Op::Recommend, "bias@maxprX", "f0.1"),
            event(Op::Recommend, "dup~", "f0.1"),
            event(Op::Clean, "-", "f0.1"),
        ] {
            assert!(request_for(&e, 0, &targets, 42).is_err(), "{e:?}");
        }
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
