//! Log-bucketed latency histogram, HDR style: power-of-two value
//! ranges, each split into `2⁵ = 32` linear sub-buckets, giving a
//! bounded ~3% relative error at every scale from 1µs to hours while
//! storing only a few hundred `u64` counters. Values are recorded in
//! integer units (the harness records microseconds) and reported back
//! as bucket upper bounds — percentile estimates are therefore
//! *conservative* (never under-report a latency).

/// Sub-bucket resolution: each power-of-two range splits into
/// `2^SUB_BITS` linear buckets (relative error ≤ `2^-SUB_BITS`).
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// A fixed-size log-bucketed histogram of `u64` values.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for `value`: values below `SUB` get exact buckets;
/// above, `SUB_BITS` linear sub-buckets per power of two.
fn index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let sub = (value >> (exp - SUB_BITS)) - SUB;
    ((exp - SUB_BITS + 1) as u64 * SUB + sub) as usize
}

/// Inclusive upper bound of bucket `i` (the reported representative).
fn upper_bound(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let exp = (i / SUB - 1) + SUB_BITS as u64;
    let sub = i % SUB + SUB;
    // u128 intermediate: the topmost bucket's bound would wrap u64.
    let bound = (u128::from(sub + 1) << (exp - SUB_BITS as u64)) - 1;
    bound.min(u128::from(u64::MAX)) as u64
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // 64 powers of two × SUB sub-buckets bounds every u64.
        Self {
            counts: vec![0; ((64 - SUB_BITS as usize) + 1) * SUB as usize],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[index(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Recorded value count.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` ∈ [0, 1]: the upper bound of the
    /// first bucket whose cumulative count reaches `⌈q·total⌉`
    /// (conservative — never smaller than the true quantile's bucket).
    /// Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The max is exact; don't report past it.
                return upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// The values at each quantile of `qs`, in one pass over the
    /// buckets regardless of how many quantiles are asked for —
    /// report generation reads p50/p95/p99 per op, and scanning the
    /// few-hundred-bucket array once instead of once per quantile
    /// keeps that read linear in the histogram, not in the quantile
    /// count. Each entry equals `quantile(q)` exactly; `qs` need not
    /// be sorted. Returns zeros on an empty histogram.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<u64> {
        let mut out = vec![0u64; qs.len()];
        if self.total == 0 {
            return out;
        }
        // Sort the requests by rank so one cumulative sweep resolves
        // them all, then scatter results back to the caller's order.
        let mut by_rank: Vec<(u64, usize)> = qs
            .iter()
            .enumerate()
            .map(|(slot, &q)| {
                let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
                (rank, slot)
            })
            .collect();
        by_rank.sort_unstable();
        let mut pending = by_rank.into_iter().peekable();
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            while let Some(&(rank, slot)) = pending.peek() {
                if seen < rank {
                    break;
                }
                out[slot] = upper_bound(i).min(self.max);
                pending.next();
            }
            if pending.peek().is_none() {
                break;
            }
        }
        for (_, slot) in pending {
            out[slot] = self.max;
        }
        out
    }

    /// Merges `other` into `self` (thread-local histograms → global).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_monotone_and_in_bounds() {
        let hist = LogHistogram::new();
        let mut values: Vec<u64> = (0..64)
            .flat_map(|shift| [0u64, 1, 3].map(|offset| (1u64 << shift).saturating_add(offset)))
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let i = index(v);
            assert!(i < hist.counts.len(), "index {i} out of bounds for {v}");
            assert!(i >= last, "index must not decrease ({v})");
            last = i;
            assert!(
                upper_bound(i) >= v,
                "upper bound {} below value {v}",
                upper_bound(i)
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        for v in 0..SUB {
            assert_eq!(upper_bound(index(v)), v);
        }
        assert_eq!(h.count(), SUB);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 12_345, 1_000_000, 987_654_321] {
            let bound = upper_bound(index(v));
            assert!(bound >= v);
            let err = (bound - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB as f64 + 1e-9, "error {err} at {v}");
        }
    }

    #[test]
    fn quantiles_are_conservative_and_ordered() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!((500..=520).contains(&p50), "p50 = {p50}");
        assert!((950..=990).contains(&p95), "p95 = {p95}");
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.quantile(1.0), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn batch_quantiles_match_single_reads() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v.wrapping_mul(2_654_435_761) % 100_000);
        }
        // Unsorted, with duplicates and edge quantiles.
        let qs = [0.99, 0.5, 0.0, 1.0, 0.95, 0.5, 0.999];
        let batch = h.quantiles(&qs);
        for (&q, &got) in qs.iter().zip(&batch) {
            assert_eq!(got, h.quantile(q), "q = {q}");
        }
        assert_eq!(LogHistogram::new().quantiles(&qs), vec![0; qs.len()]);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_matches_recording_directly() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in 1..=500u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 1..=500u64 {
            b.record(v * 7);
            whole.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q = {q}");
        }
    }
}
