//! Deterministic seeded workload generators: per-tenant arrival
//! processes (Poisson, Markov-modulated bursty, diurnal) merged into
//! one [`Trace`].
//!
//! ## Why per-millisecond Bernoulli sampling
//!
//! The classic inter-arrival construction (`-ln(U)/λ`) pulls in `ln`,
//! whose last-bit behavior is libm-dependent — a trace generated on
//! one platform could diverge from the checked-in fixture on another,
//! turning the byte-identity CI gate into a flake. Instead, each
//! millisecond tick draws one `u64` and emits an event iff it falls
//! below `rate_per_ms · 2⁶⁴` — a threshold computed with IEEE-exact
//! arithmetic (multiply and cast only), so the same seed produces the
//! same bytes on every conforming platform. For the sub-one-per-ms
//! rates the harness uses, this *is* a Bernoulli-thinned Poisson
//! process. The diurnal profile modulates the rate with a triangle
//! wave (again: add, multiply, divide only — no `sin`).

use crate::trace::{Op, Trace, TraceEvent};

/// SplitMix64 — the de-facto standard seeding PRNG: tiny, fast, and
/// fully specified by integer arithmetic (bit-identical everywhere).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A child generator for an independent stream: mixes `stream`
    /// into this generator's seed without consuming draws from it.
    pub fn child(&self, stream: u64) -> Self {
        let mut mixer = Self::new(self.state ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
        Self::new(mixer.next_u64())
    }
}

/// `probability · 2⁶⁴` as a `u64` acceptance threshold for one raw
/// draw. Clamped to [0, 1]; exact for 1 (every draw accepts).
fn threshold(probability: f64) -> u64 {
    if probability >= 1.0 {
        return u64::MAX;
    }
    if probability.is_nan() || probability <= 0.0 {
        return 0;
    }
    // f64→u64 casts saturate in Rust and the multiply is IEEE-exact:
    // deterministic across platforms.
    (probability * 18_446_744_073_709_551_616.0) as u64
}

/// An arrival process: decides, for each millisecond tick, whether
/// this tenant issues a request.
#[derive(Debug, Clone)]
pub enum Arrival {
    /// Homogeneous Poisson arrivals at `rate_per_sec` (Bernoulli-
    /// thinned per millisecond; keep `rate_per_sec` below 1000).
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// Markov-modulated on/off (bursty): while *on*, arrivals at
    /// `on_rate_per_sec`; while *off*, silence. Each millisecond the
    /// state flips on→off with probability `p_exit_on` and off→on
    /// with `p_enter_on` (so mean burst length is `1/p_exit_on` ms).
    Bursty {
        /// Arrival rate during a burst, per second.
        on_rate_per_sec: f64,
        /// Per-ms probability of ending a burst.
        p_exit_on: f64,
        /// Per-ms probability of starting a burst.
        p_enter_on: f64,
    },
    /// Diurnal: rate sweeps between `trough_per_sec` and
    /// `peak_per_sec` on a triangle wave with the given period (one
    /// "day", compressed to bench scale).
    Diurnal {
        /// Rate at the trough, per second.
        trough_per_sec: f64,
        /// Rate at the peak, per second.
        peak_per_sec: f64,
        /// Full trough→peak→trough period, in ms.
        period_ms: u64,
    },
}

impl Arrival {
    /// The instantaneous per-ms event probability at time `t_ms`.
    fn rate_per_ms(&self, t_ms: u64, on: bool) -> f64 {
        match *self {
            Arrival::Poisson { rate_per_sec } => rate_per_sec / 1000.0,
            Arrival::Bursty {
                on_rate_per_sec, ..
            } => {
                if on {
                    on_rate_per_sec / 1000.0
                } else {
                    0.0
                }
            }
            Arrival::Diurnal {
                trough_per_sec,
                peak_per_sec,
                period_ms,
            } => {
                let period = period_ms.max(1);
                let pos = (t_ms % period) as f64 / period as f64;
                // Triangle wave in [0, 1]: 0 at phase 0 and 1, peak
                // at phase 0.5.
                let tri = 1.0 - (2.0 * pos - 1.0).abs();
                (trough_per_sec + (peak_per_sec - trough_per_sec) * tri) / 1000.0
            }
        }
    }
}

/// One weighted entry of a tenant's op mix.
#[derive(Debug, Clone)]
pub struct OpTemplate {
    /// Relative weight among the tenant's templates.
    pub weight: u32,
    /// Request kind.
    pub op: Op,
    /// Objective token (see the trace module docs).
    pub spec: String,
    /// Budget token.
    pub budget: String,
}

impl OpTemplate {
    /// A weighted template.
    pub fn new(weight: u32, op: Op, spec: &str, budget: &str) -> Self {
        Self {
            weight,
            op,
            spec: spec.to_string(),
            budget: budget.to_string(),
        }
    }
}

/// One tenant's workload shape: an arrival process plus an op mix.
#[derive(Debug, Clone)]
pub struct TenantProfile {
    /// Tenant name (the trace's second field).
    pub tenant: String,
    /// When requests arrive.
    pub arrival: Arrival,
    /// What the requests are (weighted).
    pub mix: Vec<OpTemplate>,
}

/// A full generation recipe: duration plus per-tenant profiles.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Trace length in milliseconds of *modeled* time.
    pub duration_ms: u64,
    /// The tenants.
    pub tenants: Vec<TenantProfile>,
}

/// Generates the trace for `spec` under `seed`. Same spec + same seed
/// ⇒ byte-identical trace (the property the fixture gate enforces).
/// Each tenant draws from an independent child generator, so adding a
/// tenant never perturbs the others' event streams.
pub fn generate(spec: &TraceSpec, seed: u64) -> Trace {
    let root = SplitMix64::new(seed);
    let mut events: Vec<(usize, TraceEvent)> = Vec::new();
    for (tenant_index, profile) in spec.tenants.iter().enumerate() {
        let mut rng = root.child(tenant_index as u64 + 1);
        let total_weight: u64 = profile.mix.iter().map(|t| u64::from(t.weight)).sum();
        if total_weight == 0 {
            continue;
        }
        // Bursty tenants start off; the first p_enter_on draws bring
        // them up.
        let mut on = false;
        for t_ms in 0..spec.duration_ms {
            if let Arrival::Bursty {
                p_exit_on,
                p_enter_on,
                ..
            } = profile.arrival
            {
                let flip = if on { p_exit_on } else { p_enter_on };
                if rng.next_u64() < threshold(flip) {
                    on = !on;
                }
            }
            let p = profile.arrival.rate_per_ms(t_ms, on);
            if rng.next_u64() >= threshold(p) {
                continue;
            }
            let mut pick = rng.next_u64() % total_weight;
            let template = profile
                .mix
                .iter()
                .find(|t| {
                    let w = u64::from(t.weight);
                    if pick < w {
                        true
                    } else {
                        pick -= w;
                        false
                    }
                })
                .expect("total_weight covers every draw");
            events.push((
                tenant_index,
                TraceEvent {
                    timestamp_ms: t_ms,
                    tenant: profile.tenant.clone(),
                    op: template.op,
                    spec: template.spec.clone(),
                    budget: template.budget.clone(),
                },
            ));
        }
    }
    // Deterministic merge: by timestamp, ties broken by tenant order
    // (each tenant's own events are already chronological).
    events.sort_by_key(|(tenant_index, e)| (e.timestamp_ms, *tenant_index));
    Trace::new(events.into_iter().map(|(_, e)| e).collect())
        .expect("generated fields contain no whitespace and timestamps are sorted")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TraceSpec {
        TraceSpec {
            duration_ms: 2_000,
            tenants: vec![
                TenantProfile {
                    tenant: "steady".into(),
                    arrival: Arrival::Poisson { rate_per_sec: 40.0 },
                    mix: vec![
                        OpTemplate::new(3, Op::Recommend, "dup", "f0.2"),
                        OpTemplate::new(1, Op::Clean, "-", "k2"),
                    ],
                },
                TenantProfile {
                    tenant: "bursty".into(),
                    arrival: Arrival::Bursty {
                        on_rate_per_sec: 120.0,
                        p_exit_on: 0.01,
                        p_enter_on: 0.005,
                    },
                    mix: vec![OpTemplate::new(1, Op::Sweep, "bias", "f0.05,f0.1")],
                },
                TenantProfile {
                    tenant: "diurnal".into(),
                    arrival: Arrival::Diurnal {
                        trough_per_sec: 5.0,
                        peak_per_sec: 60.0,
                        period_ms: 1_000,
                    },
                    mix: vec![OpTemplate::new(1, Op::Recommend, "frag", "a2")],
                },
            ],
        }
    }

    #[test]
    fn same_seed_same_bytes_different_seed_different_bytes() {
        let a = generate(&spec(), 42).to_string();
        let b = generate(&spec(), 42).to_string();
        let c = generate(&spec(), 43).to_string();
        assert_eq!(a, b, "generation must be a pure function of (spec, seed)");
        assert_ne!(a, c, "the seed must matter");
    }

    #[test]
    fn generated_traces_parse_and_cover_every_tenant() {
        let trace = generate(&spec(), 7);
        assert!(!trace.is_empty());
        let reparsed = Trace::parse(&trace.to_string()).unwrap();
        assert_eq!(reparsed, trace);
        for tenant in ["steady", "bursty", "diurnal"] {
            assert!(
                trace.events().iter().any(|e| e.tenant == tenant),
                "{tenant} generated no events"
            );
        }
    }

    #[test]
    fn adding_a_tenant_does_not_perturb_existing_streams() {
        let mut base = spec();
        let full = generate(&base, 11);
        base.tenants.truncate(1);
        let solo = generate(&base, 11);
        let steady_full: Vec<_> = full
            .events()
            .iter()
            .filter(|e| e.tenant == "steady")
            .cloned()
            .collect();
        assert_eq!(solo.events(), steady_full.as_slice());
    }

    #[test]
    fn rates_land_in_the_right_ballpark() {
        // 40/s over 2s ⇒ ~80 events; Bernoulli variance is tiny at
        // this count, so a ±50% band is safe for a fixed seed.
        let trace = generate(&spec(), 42);
        let steady = trace
            .events()
            .iter()
            .filter(|e| e.tenant == "steady")
            .count();
        assert!(
            (40..=120).contains(&steady),
            "steady tenant generated {steady} events, expected ≈80"
        );
    }

    #[test]
    fn thresholds_clamp() {
        assert_eq!(threshold(0.0), 0);
        assert_eq!(threshold(-1.0), 0);
        assert_eq!(threshold(f64::NAN), 0);
        assert_eq!(threshold(1.0), u64::MAX);
        assert_eq!(threshold(2.0), u64::MAX);
        assert_eq!(threshold(0.5), 1u64 << 63);
    }
}
