//! `BENCH_serve.json` assembly and validation: machine-readable
//! summaries of a replay (config fingerprint, per-op/per-tenant
//! histogram summaries, scraped server counters, derived ratios),
//! the post-drain correctness invariants, and the CI latency-budget
//! check against `BENCH_budget.json`.

use fact_clean::net::json::Json;

use crate::replay::{OpMetrics, ReplayReport};

/// Identity of a bench run: everything that determines the request
/// sequence (so two BENCH files are comparable iff these match).
#[derive(Debug, Clone)]
pub struct RunFingerprint {
    /// Generator/abandonment seed.
    pub seed: u64,
    /// Trace event count.
    pub events: usize,
    /// FNV-1a of the canonical trace bytes.
    pub trace_fnv64: u64,
    /// Replayer worker threads.
    pub client_threads: usize,
    /// Abandonment millage.
    pub abandon_permille: u32,
    /// Whether this was the CI-sized `--smoke` run.
    pub smoke: bool,
    /// Whether the replay drove a replicated router front (`--router`).
    /// Router documents must carry a `failover` section when the
    /// budget sets a recovery ceiling; single-box documents are exempt.
    pub router: bool,
}

fn hist_summary(hist: &crate::hist::LogHistogram) -> Json {
    let us_to_ms = |us: u64| Json::Num(us as f64 / 1000.0);
    // One bucket sweep for all three percentiles, not one per read.
    let qs = hist.quantiles(&[0.50, 0.95, 0.99]);
    Json::obj([
        ("count", Json::Num(hist.count() as f64)),
        ("p50_ms", us_to_ms(qs[0])),
        ("p95_ms", us_to_ms(qs[1])),
        ("p99_ms", us_to_ms(qs[2])),
        ("mean_ms", Json::Num(hist.mean() / 1000.0)),
        ("max_ms", us_to_ms(hist.max())),
    ])
}

fn metrics_json(m: &OpMetrics) -> Json {
    let mut fields = vec![
        ("issued".to_string(), Json::Num(m.issued() as f64)),
        ("ok".to_string(), Json::Num(m.ok as f64)),
        ("rejected_429".to_string(), Json::Num(m.rejected as f64)),
        (
            "client_errors".to_string(),
            Json::Num(m.client_errors as f64),
        ),
        (
            "server_errors".to_string(),
            Json::Num(m.server_errors as f64),
        ),
        (
            "transport_errors".to_string(),
            Json::Num(m.transport_errors as f64),
        ),
        ("abandoned".to_string(), Json::Num(m.abandoned as f64)),
        ("latency".to_string(), hist_summary(&m.latency_us)),
    ];
    // Only streamed ops carry a first-point histogram; buffered ops
    // omit the key rather than reporting an all-zero summary.
    if m.first_point_us.count() > 0 {
        fields.push((
            "time_to_first_point".to_string(),
            hist_summary(&m.first_point_us),
        ));
    }
    Json::Obj(fields)
}

fn keyed<'m>(entries: impl Iterator<Item = (&'m String, &'m OpMetrics)>) -> Json {
    Json::Obj(
        entries
            .map(|(key, m)| (key.clone(), metrics_json(m)))
            .collect(),
    )
}

/// The full `BENCH_serve.json` document. `server_stats` is the parsed
/// body of a post-drain `GET /v1/stats`, embedded verbatim.
pub fn bench_json(
    fingerprint: &RunFingerprint,
    report: &ReplayReport,
    server_stats: &Json,
) -> Json {
    let wall_s = (report.wall_ms as f64 / 1000.0).max(1e-9);
    let answered: u64 = report.ok() + report.rejected();
    let hits = stat(server_stats, &["store", "hits"]).unwrap_or(0.0);
    let misses = stat(server_stats, &["store", "misses"]).unwrap_or(0.0);
    let submitted = stat(server_stats, &["service", "submitted"]).unwrap_or(0.0);
    let cancelled = stat(server_stats, &["service", "cancelled"]).unwrap_or(0.0);
    Json::obj([
        ("bench", Json::Str("load_replay".to_string())),
        (
            "config",
            Json::obj([
                ("seed", Json::Num(fingerprint.seed as f64)),
                ("events", Json::Num(fingerprint.events as f64)),
                (
                    "trace_fnv64",
                    Json::Str(format!("{:016x}", fingerprint.trace_fnv64)),
                ),
                (
                    "client_threads",
                    Json::Num(fingerprint.client_threads as f64),
                ),
                (
                    "abandon_permille",
                    Json::Num(f64::from(fingerprint.abandon_permille)),
                ),
                ("smoke", Json::Bool(fingerprint.smoke)),
                ("router", Json::Bool(fingerprint.router)),
            ]),
        ),
        ("wall_ms", Json::Num(report.wall_ms as f64)),
        ("throughput_rps", Json::Num(answered as f64 / wall_s)),
        ("per_op", keyed(report.per_op.iter())),
        ("per_tenant", keyed(report.per_tenant.iter())),
        ("server", server_stats.clone()),
        (
            "derived",
            Json::obj([
                (
                    "cache_hit_ratio",
                    Json::Num(if hits + misses > 0.0 {
                        hits / (hits + misses)
                    } else {
                        0.0
                    }),
                ),
                (
                    "cancellation_rate",
                    Json::Num(if submitted > 0.0 {
                        cancelled / submitted
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ])
}

/// Numeric field at `path` inside a stats/bench document.
fn stat(doc: &Json, path: &[&str]) -> Option<f64> {
    let mut node = doc;
    for key in path {
        node = node.get(key)?;
    }
    node.as_f64()
}

/// Post-drain correctness invariants. Every violation is a distinct
/// human-readable string; an empty vector is a clean run. `report` is
/// the client's view, `server_stats` the parsed post-drain
/// `GET /v1/stats` body — the two sides must tell one story.
pub fn invariant_violations(report: &ReplayReport, server_stats: &Json) -> Vec<String> {
    let mut violations = Vec::new();
    let mut check = |name: &str, ok: bool, detail: String| {
        if !ok {
            violations.push(format!("{name}: {detail}"));
        }
    };
    let s = |path: &[&str]| stat(server_stats, path).unwrap_or(-1.0);

    let submitted = s(&["service", "submitted"]);
    let completed = s(&["service", "completed"]);
    let cancelled = s(&["service", "cancelled"]);
    check(
        "resolution",
        submitted >= 0.0 && completed + cancelled == submitted,
        format!("submitted {submitted} but completed {completed} + cancelled {cancelled}"),
    );
    for gauge in [
        "in_flight",
        "running_interactive",
        "running_bulk",
        "queued_interactive",
        "queued_bulk",
    ] {
        let value = s(&["service", gauge]);
        check(
            "drained",
            value == 0.0,
            format!("{gauge} is {value} after drain"),
        );
    }
    if let Some(Json::Obj(tenants)) = server_stats.get("tenants") {
        for (tenant, usage) in tenants {
            for field in ["in_flight", "outstanding_evals"] {
                let value = usage.get(field).and_then(Json::as_f64).unwrap_or(-1.0);
                check(
                    "ledger",
                    value == 0.0,
                    format!("tenant {tenant} {field} is {value} after drain"),
                );
            }
        }
    } else {
        check("ledger", false, "stats missing tenants object".to_string());
    }

    // The client cannot see more solve successes than the server
    // completed: every recommend/sweep 200 implies at least one
    // completed service task. Clean ops are handled synchronously on
    // the connection thread (no submission), so they don't count.
    let solve_ok: u64 = report
        .per_op
        .iter()
        .filter(|(op, _)| op.as_str() != "clean")
        .map(|(_, m)| m.ok)
        .sum();
    let solve_ok = solve_ok as f64;
    check(
        "completions",
        completed >= 0.0 && solve_ok <= completed,
        format!("clients read {solve_ok} solve 200s but the server completed {completed}"),
    );
    let rejected = report.rejected() as f64;
    let quota_rejected = s(&["service", "quota_rejected"]);
    check(
        "rejections",
        quota_rejected >= 0.0 && rejected <= quota_rejected,
        format!("clients read {rejected} 429s but the server counted {quota_rejected}"),
    );
    violations
}

/// Checks a bench document against `BENCH_budget.json` ceilings:
/// `max_p99_ms` and `max_p95_ms` per op (total latency),
/// `max_first_point_p95_ms` per streamed op (time to first point),
/// `max_failover_recovery_ms` (router runs only — time from a replica
/// kill to the next served read),
/// `max_transport_error_ratio`, `min_ok`. The p99 budgets are deliberately loose (10× headroom,
/// catching order-of-magnitude regressions); the p95 budgets are the
/// tighter perf-regression guard — pinned ~1.2× above the measured
/// smoke-run tail so a >20% p95 regression on a solver hot path fails
/// CI instead of landing silently.
pub fn budget_violations(bench: &Json, budget: &Json) -> Vec<String> {
    let mut violations = Vec::new();
    for (budget_key, section, latency_key, label) in [
        ("max_p99_ms", "latency", "p99_ms", "p99"),
        ("max_p95_ms", "latency", "p95_ms", "p95"),
        (
            "max_first_point_p95_ms",
            "time_to_first_point",
            "p95_ms",
            "first-point p95",
        ),
    ] {
        let Some(Json::Obj(ceilings)) = budget.get(budget_key) else {
            continue;
        };
        for (op, ceiling) in ceilings {
            let Some(ceiling) = ceiling.as_f64() else {
                continue;
            };
            let count = stat(bench, &["per_op", op, section, "count"]).unwrap_or(0.0);
            if count == 0.0 {
                violations.push(format!(
                    "budget: op {op} has a {label} ceiling but no samples"
                ));
                continue;
            }
            let measured = stat(bench, &["per_op", op, section, latency_key]).unwrap_or(f64::MAX);
            if measured > ceiling {
                violations.push(format!(
                    "budget: {op} {label} {measured}ms exceeds ceiling {ceiling}ms"
                ));
            }
        }
    }
    // Failover recovery: how long after a replica is killed until the
    // router serves the next read. Only router runs stage a kill, so a
    // single-box document is exempt — but a router run that recorded
    // no measurement is a broken harness, not a pass.
    if let Some(ceiling) = stat(budget, &["max_failover_recovery_ms"]) {
        match stat(bench, &["failover", "recovery_ms"]) {
            Some(measured) if measured > ceiling => violations.push(format!(
                "budget: failover recovery {measured}ms exceeds ceiling {ceiling}ms"
            )),
            Some(_) => {}
            None => {
                if bench
                    .get("config")
                    .and_then(|c| c.get("router"))
                    .and_then(Json::as_bool)
                    == Some(true)
                {
                    violations.push(
                        "budget: a failover recovery ceiling is set but the router run \
                         recorded no failover section"
                            .to_string(),
                    );
                }
            }
        }
    }
    if let Some(max_ratio) = stat(budget, &["max_transport_error_ratio"]) {
        let mut issued = 0.0;
        let mut errors = 0.0;
        if let Some(Json::Obj(ops)) = bench.get("per_op") {
            for (_, m) in ops {
                issued += stat(m, &["issued"]).unwrap_or(0.0);
                errors += stat(m, &["transport_errors"]).unwrap_or(0.0);
            }
        }
        if issued > 0.0 && errors / issued > max_ratio {
            violations.push(format!(
                "budget: transport error ratio {:.4} exceeds {max_ratio}",
                errors / issued
            ));
        }
    }
    if let Some(min_ok) = stat(budget, &["min_ok"]) {
        let mut ok = 0.0;
        if let Some(Json::Obj(ops)) = bench.get("per_op") {
            for (_, m) in ops {
                ok += stat(m, &["ok"]).unwrap_or(0.0);
            }
        }
        if ok < min_ok {
            violations.push(format!(
                "budget: only {ok} successful requests, need {min_ok}"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::OpMetrics;
    use std::collections::BTreeMap;

    fn report() -> ReplayReport {
        let mut per_op = BTreeMap::new();
        let mut m = OpMetrics::default();
        for us in [1_000u64, 2_000, 50_000] {
            m.latency_us.record(us);
        }
        m.ok = 2;
        m.rejected = 1;
        per_op.insert("recommend".to_string(), m);
        let mut streamed = OpMetrics::default();
        for (total, first) in [(40_000u64, 5_000u64), (60_000, 8_000)] {
            streamed.latency_us.record(total);
            streamed.first_point_us.record(first);
        }
        streamed.ok = 2;
        per_op.insert("sweepstream".to_string(), streamed);
        ReplayReport {
            wall_ms: 1_000,
            per_op,
            per_tenant: BTreeMap::new(),
        }
    }

    fn clean_stats() -> Json {
        Json::parse(
            r#"{"service":{"submitted":5,"completed":4,"cancelled":1,"quota_rejected":1,
                "in_flight":0,"running_interactive":0,"running_bulk":0,
                "queued_interactive":0,"queued_bulk":0},
                "store":{"hits":8,"misses":2},
                "tenants":{"t":{"in_flight":0,"outstanding_evals":0}}}"#,
        )
        .unwrap()
    }

    fn fingerprint() -> RunFingerprint {
        RunFingerprint {
            seed: 42,
            events: 3,
            trace_fnv64: 0xdead_beef,
            client_threads: 2,
            abandon_permille: 50,
            smoke: true,
            router: false,
        }
    }

    #[test]
    fn bench_json_has_the_advertised_shape() {
        let doc = bench_json(&fingerprint(), &report(), &clean_stats());
        for path in [
            vec!["config", "seed"],
            vec!["config", "trace_fnv64"],
            vec!["throughput_rps"],
            vec!["per_op", "recommend", "latency", "p99_ms"],
            vec!["per_op", "recommend", "rejected_429"],
            vec!["per_op", "sweepstream", "time_to_first_point", "p95_ms"],
            vec!["derived", "cache_hit_ratio"],
            vec!["derived", "cancellation_rate"],
            vec!["server", "service", "submitted"],
        ] {
            let mut node = &doc;
            for key in &path {
                node = node
                    .get(key)
                    .unwrap_or_else(|| panic!("missing {path:?} in {doc}"));
            }
        }
        assert_eq!(
            stat(&doc, &["derived", "cache_hit_ratio"]),
            Some(0.8),
            "{doc}"
        );
        // Buffered ops omit the first-point section entirely.
        assert!(
            stat(
                &doc,
                &["per_op", "recommend", "time_to_first_point", "count"]
            )
            .is_none(),
            "{doc}"
        );
        // The document must survive its own serialization.
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(stat(&reparsed, &["config", "seed"]), Some(42.0));
    }

    #[test]
    fn clean_runs_have_no_violations() {
        assert_eq!(
            invariant_violations(&report(), &clean_stats()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn drift_is_caught() {
        let mut r = report();
        // Counter drift: a submit that never resolved.
        let stats = Json::parse(
            r#"{"service":{"submitted":5,"completed":2,"cancelled":1,"quota_rejected":1,
                "in_flight":2,"running_interactive":0,"running_bulk":0,
                "queued_interactive":0,"queued_bulk":0},
                "store":{"hits":0,"misses":0},
                "tenants":{"t":{"in_flight":1,"outstanding_evals":64}}}"#,
        )
        .unwrap();
        let violations = invariant_violations(&r, &stats);
        assert!(violations.iter().any(|v| v.starts_with("resolution")));
        assert!(violations.iter().any(|v| v.starts_with("drained")));
        assert!(violations.iter().any(|v| v.starts_with("ledger")));
        // Client saw more 200s than the server completed.
        r.per_op.get_mut("recommend").unwrap().ok = 10;
        assert!(invariant_violations(&r, &clean_stats())
            .iter()
            .any(|v| v.starts_with("completions")));
    }

    #[test]
    fn budget_gate_catches_regressions_and_missing_samples() {
        let bench = bench_json(&fingerprint(), &report(), &clean_stats());
        let loose = Json::parse(
            r#"{"max_p99_ms":{"recommend":60000},"max_transport_error_ratio":0.5,"min_ok":1}"#,
        )
        .unwrap();
        assert_eq!(budget_violations(&bench, &loose), Vec::<String>::new());
        let tight = Json::parse(r#"{"max_p99_ms":{"recommend":10}}"#).unwrap();
        assert!(budget_violations(&bench, &tight)[0].contains("exceeds ceiling"));
        let missing = Json::parse(r#"{"max_p99_ms":{"sweep":60000}}"#).unwrap();
        assert!(budget_violations(&bench, &missing)[0].contains("no samples"));
        let starved = Json::parse(r#"{"min_ok":100}"#).unwrap();
        assert!(budget_violations(&bench, &starved)[0].contains("need 100"));
        // p95 ceilings are enforced independently of p99's.
        let p95_loose = Json::parse(r#"{"max_p95_ms":{"recommend":60000}}"#).unwrap();
        assert_eq!(budget_violations(&bench, &p95_loose), Vec::<String>::new());
        let p95_tight = Json::parse(r#"{"max_p95_ms":{"recommend":1}}"#).unwrap();
        let violations = budget_violations(&bench, &p95_tight);
        assert!(violations[0].contains("p95") && violations[0].contains("exceeds ceiling"));
        let p95_missing = Json::parse(r#"{"max_p95_ms":{"sweep":1}}"#).unwrap();
        assert!(budget_violations(&bench, &p95_missing)[0].contains("no samples"));
        // First-point ceilings read the time_to_first_point section.
        let fp_loose = Json::parse(r#"{"max_first_point_p95_ms":{"sweepstream":60000}}"#).unwrap();
        assert_eq!(budget_violations(&bench, &fp_loose), Vec::<String>::new());
        let fp_tight = Json::parse(r#"{"max_first_point_p95_ms":{"sweepstream":1}}"#).unwrap();
        let violations = budget_violations(&bench, &fp_tight);
        assert!(violations[0].contains("first-point p95") && violations[0].contains("exceeds"));
        // A first-point ceiling on a buffered op (no streamed samples)
        // is flagged, not silently skipped.
        let fp_missing = Json::parse(r#"{"max_first_point_p95_ms":{"recommend":100}}"#).unwrap();
        assert!(budget_violations(&bench, &fp_missing)[0].contains("no samples"));
    }

    #[test]
    fn failover_ceiling_applies_to_router_documents() {
        let budget = Json::parse(r#"{"max_failover_recovery_ms":2000}"#).unwrap();
        // A single-box document has no failover phase to measure.
        let single_box = bench_json(&fingerprint(), &report(), &clean_stats());
        assert_eq!(
            budget_violations(&single_box, &budget),
            Vec::<String>::new()
        );
        // A router document under the ceiling passes …
        let mut router_fp = fingerprint();
        router_fp.router = true;
        let with_failover = |recovery_ms: f64| {
            let mut doc = bench_json(&router_fp, &report(), &clean_stats());
            if let Json::Obj(fields) = &mut doc {
                fields.push((
                    "failover".to_string(),
                    Json::obj([("recovery_ms", Json::Num(recovery_ms))]),
                ));
            }
            doc
        };
        assert_eq!(
            budget_violations(&with_failover(120.0), &budget),
            Vec::<String>::new()
        );
        // … over it fails …
        assert!(budget_violations(&with_failover(9000.0), &budget)[0].contains("failover recovery"));
        // … and a router run that never measured is a broken harness.
        let unmeasured = bench_json(&router_fp, &report(), &clean_stats());
        assert!(budget_violations(&unmeasured, &budget)[0].contains("no failover section"));
    }
}
