//! The plain-text trace format: one event per line,
//! `timestamp_ms tenant op spec budget`, space-separated. Traces are
//! the unit of reproducibility for the load harness — a generated
//! trace is saved, checked in as a fixture, and replayed byte-
//! identically, so `to_string` ∘ [`Trace::parse`] must be the
//! identity on well-formed traces (proved in the tests below and
//! re-proved against the checked-in fixture by the `load_replay` CI
//! gate).
//!
//! Field vocabulary (validated on construction and parse):
//!
//! * `timestamp_ms` — event offset from trace start, non-decreasing.
//! * `tenant` — the `x-tenant` the request is issued under.
//! * `op` — `recommend`, `sweep`, `sweepstream` (the same sweep
//!   issued with `?stream=1` and consumed point-by-point), or `clean`.
//! * `spec` — objective token for solve ops (`bias`, `dup`, `frag`,
//!   or `measure@maxprτ` e.g. `bias@maxpr5`; an optional `~strategy`
//!   suffix pins the solver, e.g. `dup~slow`); `-` for `clean`.
//! * `budget` — budget token: `f<frac>` (fraction of total cleaning
//!   cost) or `a<n>` (absolute), comma-separated for `sweep`
//!   (`f0.05,f0.1`); for `clean`, `k<n>` objects to clean.

use std::fmt;

/// The request kind a trace event drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `POST /v1/recommend` — one plan at one budget.
    Recommend,
    /// `POST /v1/sweep` — one plan per budget point.
    Sweep,
    /// `POST /v1/sweep?stream=1` — the same sweep consumed as a
    /// chunked stream, one point at a time (records time to first
    /// point alongside total latency).
    SweepStream,
    /// `POST /v1/streams/{id}/clean` — reveal objects, invalidating
    /// affected cache entries.
    Clean,
}

impl Op {
    /// The wire token (also the per-op metrics key).
    pub fn token(self) -> &'static str {
        match self {
            Op::Recommend => "recommend",
            Op::Sweep => "sweep",
            Op::SweepStream => "sweepstream",
            Op::Clean => "clean",
        }
    }

    fn parse(token: &str) -> Option<Self> {
        match token {
            "recommend" => Some(Op::Recommend),
            "sweep" => Some(Op::Sweep),
            "sweepstream" => Some(Op::SweepStream),
            "clean" => Some(Op::Clean),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One trace line: a request to issue at `timestamp_ms`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Offset from trace start, in milliseconds.
    pub timestamp_ms: u64,
    /// Tenant the request is issued under.
    pub tenant: String,
    /// Request kind.
    pub op: Op,
    /// Objective token (`-` for clean ops).
    pub spec: String,
    /// Budget token (see the module docs).
    pub budget: String,
}

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceError {}

/// An ordered sequence of [`TraceEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A trace over already-ordered events. Returns `Err` (with the
    /// offending position as the line number) if timestamps decrease
    /// or a field would not survive the line format (embedded
    /// whitespace, empty fields).
    pub fn new(events: Vec<TraceEvent>) -> Result<Self, TraceError> {
        let mut last = 0u64;
        for (i, event) in events.iter().enumerate() {
            let line = i + 1;
            if event.timestamp_ms < last {
                return Err(TraceError {
                    line,
                    reason: format!(
                        "timestamp {} decreases (previous {})",
                        event.timestamp_ms, last
                    ),
                });
            }
            last = event.timestamp_ms;
            for (what, field) in [
                ("tenant", &event.tenant),
                ("spec", &event.spec),
                ("budget", &event.budget),
            ] {
                if field.is_empty() || field.contains(char::is_whitespace) {
                    return Err(TraceError {
                        line,
                        reason: format!("{what} {field:?} is empty or contains whitespace"),
                    });
                }
            }
        }
        Ok(Self { events })
    }

    /// The events, in timestamp order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parses the line format. Blank lines and `#` comment lines are
    /// skipped (so fixtures may carry a header), but [`to_string`]
    /// never emits them — round-tripping normalizes them away.
    ///
    /// [`to_string`]: std::string::ToString
    pub fn parse(text: &str) -> Result<Self, TraceError> {
        let mut events = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split(' ').collect();
            let [ts, tenant, op, spec, budget] = fields.as_slice() else {
                return Err(TraceError {
                    line,
                    reason: format!("expected 5 space-separated fields, got {}", fields.len()),
                });
            };
            let timestamp_ms: u64 = ts.parse().map_err(|_| TraceError {
                line,
                reason: format!("bad timestamp {ts:?}"),
            })?;
            let op = Op::parse(op).ok_or_else(|| TraceError {
                line,
                reason: format!(
                    "unknown op {op:?} (expected recommend, sweep, sweepstream, or clean)"
                ),
            })?;
            events.push(TraceEvent {
                timestamp_ms,
                tenant: tenant.to_string(),
                op,
                spec: spec.to_string(),
                budget: budget.to_string(),
            });
        }
        // Re-validate ordering/fields so parse and new agree on what a
        // well-formed trace is.
        Self::new(events)
    }
}

impl fmt::Display for Trace {
    /// The canonical byte encoding: one line per event, `\n`
    /// terminated. `Trace::parse(&trace.to_string())` reproduces the
    /// trace exactly, and equal traces encode to equal bytes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(
                f,
                "{} {} {} {} {}",
                e.timestamp_ms, e.tenant, e.op, e.spec, e.budget
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(ts: u64, tenant: &str, op: Op, spec: &str, budget: &str) -> TraceEvent {
        TraceEvent {
            timestamp_ms: ts,
            tenant: tenant.to_string(),
            op,
            spec: spec.to_string(),
            budget: budget.to_string(),
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let trace = Trace::new(vec![
            event(0, "newsroom", Op::Recommend, "dup", "f0.2"),
            event(3, "api", Op::Sweep, "bias@maxpr5", "f0.05,f0.1,f0.15"),
            event(3, "api", Op::SweepStream, "dup", "f0.05,f0.1"),
            event(3, "batch", Op::Clean, "-", "k3"),
            event(17, "newsroom", Op::Recommend, "frag", "a2"),
        ])
        .unwrap();
        let text = trace.to_string();
        let reparsed = Trace::parse(&text).unwrap();
        assert_eq!(reparsed, trace);
        assert_eq!(reparsed.to_string(), text, "encoding must be canonical");
    }

    #[test]
    fn comments_and_blanks_are_skipped_but_not_reemitted() {
        let text = "# a header\n\n0 t recommend dup f0.1\n# tail\n";
        let trace = Trace::parse(text).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.to_string(), "0 t recommend dup f0.1\n");
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        for (text, needle) in [
            ("0 t recommend dup", "5 space-separated"),
            ("x t recommend dup f0.1", "bad timestamp"),
            ("0 t explode dup f0.1", "unknown op"),
        ] {
            let err = Trace::parse(text).unwrap_err();
            assert_eq!(err.line, 1, "{text}");
            assert!(err.reason.contains(needle), "{text}: {}", err.reason);
        }
        let err = Trace::parse("5 t recommend dup f0.1\n2 t recommend dup f0.1").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("decreases"));
    }

    #[test]
    fn whitespace_fields_are_rejected_at_construction() {
        let err =
            Trace::new(vec![event(0, "two words", Op::Recommend, "dup", "f0.1")]).unwrap_err();
        assert!(err.reason.contains("whitespace"));
    }
}
