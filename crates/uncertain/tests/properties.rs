//! Property-based tests for the uncertainty substrate.

use fc_uncertain::{DiscreteDist, LogNormal, MultivariateNormal, Normal, SymMatrix};
use proptest::prelude::*;

proptest! {
    /// Validated distributions always carry a normalized pmf, sorted
    /// support, and a variance consistent with a direct two-pass
    /// computation.
    #[test]
    fn discrete_invariants(
        pairs in prop::collection::vec((-1e5f64..1e5, 0.01f64..1.0), 1..12)
    ) {
        let d = DiscreteDist::from_weights(pairs).unwrap();
        let total: f64 = d.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(d.values().windows(2).all(|w| w[0] < w[1]));
        prop_assert!(d.variance() >= -1e-12);
        // Var[aX + b] = a² Var[X].
        let shifted = d.map(|x| 3.0 * x - 7.0);
        prop_assert!((shifted.variance() - 9.0 * d.variance()).abs()
            < 1e-6 * (1.0 + d.variance().abs() * 9.0));
    }

    /// CDF/quantile round trips to high accuracy across scales.
    #[test]
    fn normal_cdf_quantile_round_trip(
        mean in -1e4f64..1e4,
        sd in 0.01f64..1e3,
        p in 0.001f64..0.999,
    ) {
        let n = Normal::new(mean, sd).unwrap();
        let x = n.quantile(p);
        prop_assert!((n.cdf(x) - p).abs() < 1e-9, "p = {p}, cdf = {}", n.cdf(x));
    }

    /// The CDF is monotone and bounded.
    #[test]
    fn normal_cdf_monotone(a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let n = Normal::standard();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(n.cdf(lo) <= n.cdf(hi) + 1e-15);
        prop_assert!((0.0..=1.0).contains(&n.cdf(a)));
    }

    /// Equi-probability discretization preserves the mean and never
    /// overshoots the variance.
    #[test]
    fn discretize_preserves_mean(
        mean in -1e3f64..1e3,
        sd in 0.1f64..100.0,
        k in 2usize..10,
    ) {
        let n = Normal::new(mean, sd).unwrap();
        let d = n.discretize(k).unwrap();
        prop_assert!((d.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs() + sd));
        prop_assert!(d.variance() <= n.variance() * (1.0 + 1e-9));
    }

    /// Log-normal quantilization produces valid distributions with
    /// positive support.
    #[test]
    fn lognormal_quantilize_valid(sigma in 0.05f64..1.0, k in 1usize..8) {
        let ln = LogNormal::new(0.0, sigma).unwrap();
        let d = ln.quantilize(k).unwrap();
        prop_assert_eq!(d.support_size(), k);
        prop_assert!(d.min_value() > 0.0);
    }

    /// Cholesky factors reconstruct random SPD matrices (built as
    /// A·Aᵀ + εI), and solves invert matvecs.
    #[test]
    fn cholesky_reconstruction(
        entries in prop::collection::vec(-2.0f64..2.0, 9),
        rhs in prop::collection::vec(-5.0f64..5.0, 3),
    ) {
        // M = A Aᵀ + 0.1 I is SPD.
        let mut m = SymMatrix::zeros(3);
        for i in 0..3 {
            for j in i..3 {
                let mut v = 0.0;
                for k in 0..3 {
                    v += entries[i * 3 + k] * entries[j * 3 + k];
                }
                if i == j {
                    v += 0.1;
                }
                m.set(i, j, v);
            }
        }
        let chol = m.cholesky().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for k in 0..3 {
                    v += chol.l(i, k) * chol.l(j, k);
                }
                prop_assert!((v - m.get(i, j)).abs() < 1e-9);
            }
        }
        let b = m.matvec(&rhs);
        let x = chol.solve(&b);
        for (got, want) in x.iter().zip(&rhs) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    /// Schur complements of geometric-dependency covariances stay PSD
    /// and never exceed the marginal variances on the diagonal.
    #[test]
    fn schur_shrinks_diagonal(
        sds in prop::collection::vec(0.1f64..10.0, 4),
        gamma in 0.0f64..0.95,
        observed in prop::collection::vec(0usize..4, 0..3),
    ) {
        let mvn = MultivariateNormal::with_geometric_dependency(
            vec![0.0; 4],
            &sds,
            gamma,
        )
        .unwrap();
        let (hidden, sc) = mvn.cov().schur_complement(&observed).unwrap();
        for (pos, &i) in hidden.iter().enumerate() {
            prop_assert!(sc.get(pos, pos) <= mvn.var(i) + 1e-9);
            prop_assert!(sc.get(pos, pos) >= -1e-9);
        }
    }
}
