//! Minimal dense symmetric linear algebra.
//!
//! The §4.5 dependency experiments need covariance matrices, Cholesky
//! factorizations (for sampling and positive-definiteness checks), linear
//! solves, quadratic forms, and Schur complements (for Gaussian
//! conditioning). The matrices involved are tiny (n ≤ a few hundred), so a
//! straightforward `O(n³)` dense implementation is the right tool; pulling
//! in an external linear-algebra crate would be far heavier than the
//! problem warrants.

use crate::{Result, UncertainError};
use serde::{Deserialize, Serialize};

/// A dense symmetric matrix stored row-major (full storage for simplicity;
/// the symmetric invariant is enforced by the constructors and mutators).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// The `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The identity matrix scaled by `s`.
    pub fn scaled_identity(n: usize, s: f64) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, s);
        }
        m
    }

    /// A diagonal matrix from per-element variances.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let mut m = Self::zeros(diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Builds from a row-major slice; the input must be symmetric within
    /// `1e-9` relative tolerance (it is symmetrized exactly on store).
    pub fn from_rows(n: usize, rows: &[f64]) -> Result<Self> {
        if rows.len() != n * n {
            return Err(UncertainError::DimensionMismatch {
                expected: n * n,
                got: rows.len(),
            });
        }
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let a = rows[i * n + j];
                let b = rows[j * n + i];
                let scale = a.abs().max(b.abs()).max(1.0);
                if (a - b).abs() > 1e-9 * scale {
                    return Err(UncertainError::DimensionMismatch {
                        expected: i,
                        got: j,
                    });
                }
                m.data[i * n + j] = 0.5 * (a + b);
            }
        }
        Ok(m)
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Symmetric element store: writes both `(i,j)` and `(j,i)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// The main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.get(i, i)).collect()
    }

    /// Quadratic form `wᵀ M w`.
    pub fn quadratic_form(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.n);
        let mut acc = 0.0;
        for i in 0..self.n {
            let wi = w[i];
            if wi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.n..(i + 1) * self.n];
            let mut dot = 0.0;
            for (rj, wj) in row.iter().zip(w) {
                dot += rj * wj;
            }
            acc += wi * dot;
        }
        acc
    }

    /// Matrix–vector product `M x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| {
                self.data[i * self.n..(i + 1) * self.n]
                    .iter()
                    .zip(x)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Extracts the principal submatrix indexed by `idx` (must be strictly
    /// increasing; enforced by debug assertion).
    pub fn principal_submatrix(&self, idx: &[usize]) -> SymMatrix {
        debug_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        let k = idx.len();
        let mut m = SymMatrix::zeros(k);
        for (a, &i) in idx.iter().enumerate() {
            for (b, &j) in idx.iter().enumerate() {
                m.data[a * k + b] = self.get(i, j);
            }
        }
        m
    }

    /// Extracts the rectangular block `M[rows, cols]` as row-major data.
    pub fn block(&self, rows: &[usize], cols: &[usize]) -> Vec<f64> {
        let mut out = Vec::with_capacity(rows.len() * cols.len());
        for &i in rows {
            for &j in cols {
                out.push(self.get(i, j));
            }
        }
        out
    }

    /// Cholesky factorization `M = L Lᵀ` (lower triangular `L`).
    ///
    /// Fails with [`UncertainError::NotPositiveDefinite`] if any pivot is
    /// `≤ tol·max_diag`, which doubles as the validation path for
    /// user-supplied covariance matrices.
    pub fn cholesky(&self) -> Result<Cholesky> {
        let n = self.n;
        let mut l = vec![0.0; n * n];
        let max_diag = (0..n)
            .map(|i| self.get(i, i).abs())
            .fold(0.0_f64, f64::max)
            .max(1e-300);
        let tol = 1e-12 * max_diag;
        for j in 0..n {
            let mut d = self.get(j, j);
            for k in 0..j {
                d -= l[j * n + k] * l[j * n + k];
            }
            if d <= tol {
                return Err(UncertainError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[j * n + j] = dj;
            for i in (j + 1)..n {
                let mut s = self.get(i, j);
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = s / dj;
            }
        }
        Ok(Cholesky { n, l })
    }

    /// Schur complement of the block indexed by `observed`:
    /// `Σ_AA − Σ_AB Σ_BB⁻¹ Σ_BA`, where `B = observed` and
    /// `A =` the complementary indices (returned alongside).
    ///
    /// This is the posterior covariance of the unobserved coordinates of a
    /// Gaussian after conditioning on the observed ones.
    pub fn schur_complement(&self, observed: &[usize]) -> Result<(Vec<usize>, SymMatrix)> {
        let obs_sorted = {
            let mut v = observed.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        };
        let hidden: Vec<usize> = (0..self.n).filter(|i| !obs_sorted.contains(i)).collect();
        if obs_sorted.is_empty() {
            return Ok((hidden.clone(), self.principal_submatrix(&hidden)));
        }
        if hidden.is_empty() {
            return Ok((hidden, SymMatrix::zeros(0)));
        }
        let sigma_bb = self.principal_submatrix(&obs_sorted);
        let chol = sigma_bb.cholesky()?;
        let a = hidden.len();
        let b = obs_sorted.len();
        // Σ_BA as b×a (column per hidden index).
        let sigma_ba = self.block(&obs_sorted, &hidden);
        // Solve Σ_BB X = Σ_BA column by column.
        let mut x = vec![0.0; b * a];
        let mut col = vec![0.0; b];
        for j in 0..a {
            for i in 0..b {
                col[i] = sigma_ba[i * a + j];
            }
            let sol = chol.solve(&col);
            for i in 0..b {
                x[i * a + j] = sol[i];
            }
        }
        // Result = Σ_AA − Σ_AB X.
        let mut out = self.principal_submatrix(&hidden);
        let sigma_ab = self.block(&hidden, &obs_sorted);
        for i in 0..a {
            for j in 0..a {
                let mut dot = 0.0;
                for k in 0..b {
                    dot += sigma_ab[i * b + k] * x[k * a + j];
                }
                let v = out.get(i, j) - dot;
                out.data[i * a + j] = v;
            }
        }
        // Symmetrize against round-off.
        for i in 0..a {
            for j in (i + 1)..a {
                let v = 0.5 * (out.get(i, j) + out.get(j, i));
                out.set(i, j, v);
            }
        }
        Ok((hidden, out))
    }
}

/// Lower-triangular Cholesky factor with solve support.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    l: Vec<f64>,
}

impl Cholesky {
    /// Dimension of the factored matrix.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `L[i][j]` (zero above the diagonal).
    #[inline]
    pub fn l(&self, i: usize, j: usize) -> f64 {
        if j <= i {
            self.l[i * self.n + j]
        } else {
            0.0
        }
    }

    /// Solves `M x = rhs` via forward + back substitution.
    pub fn solve(&self, rhs: &[f64]) -> Vec<f64> {
        debug_assert_eq!(rhs.len(), self.n);
        let n = self.n;
        let mut y = rhs.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[i * n + k] * y[k];
            }
            y[i] /= self.l[i * n + i];
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[k * n + i] * y[k];
            }
            y[i] /= self.l[i * n + i];
        }
        y
    }

    /// Computes `L z` (used to correlate i.i.d. standard normals).
    pub fn lower_times(&self, z: &[f64]) -> Vec<f64> {
        debug_assert_eq!(z.len(), self.n);
        (0..self.n)
            .map(|i| (0..=i).map(|j| self.l[i * self.n + j] * z[j]).sum())
            .collect()
    }

    /// Log-determinant of the factored matrix.
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_spd() -> SymMatrix {
        SymMatrix::from_rows(3, &[4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0]).unwrap()
    }

    #[test]
    fn from_rows_rejects_asymmetric() {
        assert!(SymMatrix::from_rows(2, &[1.0, 2.0, 3.0, 4.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_bad_len() {
        assert!(matches!(
            SymMatrix::from_rows(2, &[1.0, 2.0]).unwrap_err(),
            UncertainError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn cholesky_reconstructs() {
        let m = example_spd();
        let c = m.cholesky().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for k in 0..3 {
                    v += c.l(i, k) * c.l(j, k);
                }
                assert!((v - m.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = SymMatrix::from_rows(2, &[1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            m.cholesky().unwrap_err(),
            UncertainError::NotPositiveDefinite { .. }
        ));
    }

    #[test]
    fn solve_round_trips() {
        let m = example_spd();
        let c = m.cholesky().unwrap();
        let x = [1.0, -2.0, 0.5];
        let b = m.matvec(&x);
        let got = c.solve(&b);
        for (g, w) in got.iter().zip(&x) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn quadratic_form_matches_matvec() {
        let m = example_spd();
        let w = [0.3, -1.2, 2.0];
        let q = m.quadratic_form(&w);
        let mv = m.matvec(&w);
        let want: f64 = mv.iter().zip(&w).map(|(a, b)| a * b).sum();
        assert!((q - want).abs() < 1e-12);
    }

    #[test]
    fn schur_complement_diag_is_conditional_variance() {
        // For a bivariate normal with covariance [[s11,s12],[s12,s22]],
        // Var[X1 | X2] = s11 - s12²/s22.
        let m = SymMatrix::from_rows(2, &[4.0, 1.2, 1.2, 2.0]).unwrap();
        let (hidden, sc) = m.schur_complement(&[1]).unwrap();
        assert_eq!(hidden, vec![0]);
        assert!((sc.get(0, 0) - (4.0 - 1.2 * 1.2 / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn schur_complement_empty_observed_is_identity_restriction() {
        let m = example_spd();
        let (hidden, sc) = m.schur_complement(&[]).unwrap();
        assert_eq!(hidden, vec![0, 1, 2]);
        assert_eq!(sc, m);
    }

    #[test]
    fn schur_complement_all_observed_is_empty() {
        let m = example_spd();
        let (hidden, sc) = m.schur_complement(&[0, 1, 2]).unwrap();
        assert!(hidden.is_empty());
        assert_eq!(sc.n(), 0);
    }

    #[test]
    fn schur_complement_stays_psd() {
        let m = example_spd();
        let (_, sc) = m.schur_complement(&[0]).unwrap();
        // PSD check: Cholesky of the complement succeeds.
        assert!(sc.cholesky().is_ok());
    }

    #[test]
    fn log_det() {
        let m = example_spd();
        let c = m.cholesky().unwrap();
        // det computed by cofactor expansion of the 3x3.
        let det: f64 = 4.0 * (5.0 * 3.0 - 1.0) - 2.0 * (2.0 * 3.0 - 0.6) + 0.6 * (2.0 - 5.0 * 0.6);
        assert!((c.log_det() - det.ln()).abs() < 1e-10);
    }
}
