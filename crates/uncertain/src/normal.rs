//! Univariate normal distributions with exact CDF / quantile support.
//!
//! The CDC datasets publish (mean, standard error) pairs with approximately
//! normal, independent errors; the Adoptions dataset models each year as
//! `N(u_i, σ_i)` with `σ_i ~ U[1, 50]`. The MaxPr closed form (Lemma 3.3)
//! needs `Φ`, and the discrete algorithms need an equi-probability
//! discretization of normals ("we discretize each normal distribution …
//! using 6 and 4 discrete values", §4.2).
//!
//! No external special-function crate is vendored, so `erf` is implemented
//! here (Abramowitz & Stegun 7.1.26-style rational approximation refined to
//! double precision via the complementary error function of W. J. Cody) and
//! the quantile uses Acklam's inverse-normal algorithm polished with one
//! Halley step, giving ~1e-15 relative accuracy — plenty for pmf weights.

use crate::discrete::DiscreteDist;
use crate::{Result, UncertainError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A normal distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates `N(mean, sd²)`; `sd` must be strictly positive and finite.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // !(x > 0) is the NaN-safe check
    pub fn new(mean: f64, sd: f64) -> Result<Self> {
        if !(sd > 0.0) || !sd.is_finite() || !mean.is_finite() {
            return Err(UncertainError::NonPositiveScale { scale: sd });
        }
        Ok(Self { mean, sd })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, sd: 1.0 }
    }

    /// Distribution mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation.
    #[inline]
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Variance `sd²`.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `Pr[X <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * erfc(-z)
    }

    /// Quantile (inverse CDF). `p` must lie in `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
        self.mean + self.sd * std_normal_quantile(p)
    }

    /// Draws one sample via the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * standard_normal_sample(rng)
    }

    /// Equi-probability discretization into `k` points.
    ///
    /// The real line is split into `k` intervals each of mass `1/k`, and
    /// the representative of each interval is its *conditional mean*
    /// (the mean of the normal truncated to the interval), which preserves
    /// the mean exactly and loses the least variance among single-point
    /// summaries. This is how the CDC normals are converted into the
    /// discrete form required by the general-query algorithms (§4.2).
    pub fn discretize(&self, k: usize) -> Result<DiscreteDist> {
        if k == 0 {
            return Err(UncertainError::ZeroPoints);
        }
        let p = 1.0 / k as f64;
        let mut pairs = Vec::with_capacity(k);
        // Conditional mean of N(μ,σ) on (a,b): μ + σ (φ(α) − φ(β)) / (Φ(β) − Φ(α)).
        let std = Normal::standard();
        for j in 0..k {
            let lo_p = j as f64 * p;
            let hi_p = (j + 1) as f64 * p;
            let alpha = if j == 0 {
                f64::NEG_INFINITY
            } else {
                std_normal_quantile(lo_p)
            };
            let beta = if j + 1 == k {
                f64::INFINITY
            } else {
                std_normal_quantile(hi_p)
            };
            let phi_a = if alpha.is_finite() {
                std.pdf(alpha)
            } else {
                0.0
            };
            let phi_b = if beta.is_finite() { std.pdf(beta) } else { 0.0 };
            let z = (phi_a - phi_b) / p;
            pairs.push((self.mean + self.sd * z, p));
        }
        DiscreteDist::new(pairs)
    }
}

/// Complementary error function to near machine precision.
///
/// Strategy: Maclaurin series for `|x| < 2` (converges to 1e-18 in ≤ ~60
/// terms there) and the classical Laplace continued fraction for `|x| ≥ 2`
/// (underflow-safe, relative accuracy ~1e-15 through the deep tail).
pub fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let v = if ax < 2.0 {
        1.0 - erf_series(x)
    } else if x > 0.0 {
        erfc_cf(x)
    } else {
        2.0 - erfc_cf(-x)
    };
    v.clamp(0.0, 2.0)
}

/// Error function `erf(x) = 1 - erfc(x)`.
pub fn erf(x: f64) -> f64 {
    if x.abs() < 2.0 {
        erf_series(x)
    } else {
        1.0 - erfc(x)
    }
}

/// Maclaurin series for erf; used on `|x| < 2` where it reaches 1e-18.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let add = term / (2 * n + 1) as f64;
        sum += add;
        if add.abs() < 1e-18 {
            break;
        }
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// Classical erfc continued fraction for `x ≥ 2`, evaluated bottom-up:
/// `erfc(x) = (e^{-x²}/√π) / (x + (1/2)/(x + 1/(x + (3/2)/(x + …))))`.
/// Depth 64 is ample for `x ≥ 2` (terms shrink geometrically).
fn erfc_cf(x: f64) -> f64 {
    let mut f = 0.0;
    for k in (1..=64).rev() {
        f = (0.5 * k as f64) / (x + f);
    }
    ((-x * x).exp() / std::f64::consts::PI.sqrt()) / (x + f)
}

/// Standard-normal quantile via Acklam's algorithm with a Halley polish.
#[allow(clippy::excessive_precision)] // published Acklam coefficients verbatim
pub fn std_normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step using the exact CDF.
    let std = Normal::standard();
    let e = std.cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Draws a standard-normal sample via Box–Muller (always consumes two
/// uniforms; no state is cached so results are reproducible regardless of
/// interleaving).
pub fn standard_normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_sd() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from tables (15 significant digits).
        let cases = [
            (0.0, 0.0),
            (0.1, 0.112462916018285),
            (0.5, 0.520499877813047),
            (1.0, 0.842700792949715),
            (1.5, 0.966105146475311),
            (2.0, 0.995322265018953),
            (3.0, 0.999977909503001),
        ];
        for (x, want) in cases {
            let got = erf(x);
            assert!((got - want).abs() < 1e-12, "erf({x}) = {got}, want {want}");
            assert!((erf(-x) + want).abs() < 1e-12, "erf odd symmetry at {x}");
        }
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(5) = 1.5374597944280348e-12 (relative accuracy matters here).
        let got = erfc(5.0);
        let want = 1.5374597944280348e-12;
        assert!(
            ((got - want) / want).abs() < 1e-9,
            "erfc(5) = {got:e}, want {want:e}"
        );
        // erfc(10) = 2.0884875837625447e-45.
        let got = erfc(10.0);
        let want = 2.0884875837625447e-45;
        assert!(((got - want) / want).abs() < 1e-9, "erfc(10) = {got:e}");
    }

    #[test]
    fn cdf_reference_values() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((n.cdf(1.0) - 0.841344746068543).abs() < 1e-12);
        assert!((n.cdf(-1.96) - 0.024997895148220).abs() < 1e-10);
        assert!((n.cdf(-1.64) - 0.050502583474103).abs() < 1e-10);
    }

    #[test]
    fn quantile_round_trips() {
        let n = Normal::standard();
        for &p in &[
            1e-10,
            1e-6,
            0.01,
            0.05,
            0.3,
            0.5,
            0.7,
            0.95,
            0.99,
            1.0 - 1e-6,
        ] {
            let x = n.quantile(p);
            assert!(
                (n.cdf(x) - p).abs() < 1e-12 * (1.0 + 1.0 / p.min(1.0 - p)).min(1e3),
                "round trip failed at p = {p}: x = {x}, cdf = {}",
                n.cdf(x)
            );
        }
    }

    #[test]
    fn scaled_cdf() {
        let n = Normal::new(100.0, 15.0).unwrap();
        assert!((n.cdf(100.0) - 0.5).abs() < 1e-14);
        assert!((n.cdf(115.0) - 0.841344746068543).abs() < 1e-12);
    }

    #[test]
    fn discretize_preserves_mean_and_most_variance() {
        let n = Normal::new(9300.0, 42.0).unwrap();
        for k in [2, 4, 6, 8] {
            let d = n.discretize(k).unwrap();
            assert_eq!(d.support_size(), k);
            assert!((d.mean() - 9300.0).abs() < 1e-6, "k={k} mean {}", d.mean());
            // Conditional-mean discretization underestimates variance but
            // should recover most of it by k=6.
            let ratio = d.variance() / n.variance();
            assert!(ratio < 1.0 + 1e-9, "k={k} ratio {ratio}");
            if k >= 6 {
                assert!(ratio > 0.8, "k={k} ratio {ratio}");
            }
        }
    }

    #[test]
    fn discretize_zero_points_errors() {
        let n = Normal::standard();
        assert_eq!(n.discretize(0).unwrap_err(), UncertainError::ZeroPoints);
    }

    #[test]
    fn sampling_moments() {
        let n = Normal::new(-3.0, 2.0).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let k = 50_000;
        let samples: Vec<f64> = (0..k).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / k as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / k as f64;
        assert!((mean + 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }
}
