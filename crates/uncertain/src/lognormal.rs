//! Log-normal distributions, used by the `LNx` synthetic generator.
//!
//! §4 of the paper: "LNx generates skewed but unimodal value distributions.
//! We start with a log-normal distribution with parameters μ = 0 and σ
//! chosen uniformly at random in (0, 1]. We quantilize the distribution
//! into as many equal-probability intervals as |supp(X_i)|, and choose
//! elements of supp(X_i) to be close to the right ends of these intervals.
//! For each element, we then assign its probability in proportion to its
//! probability density in the log-normal distribution."

use crate::discrete::DiscreteDist;
use crate::normal::{std_normal_quantile, Normal};
use crate::{Result, UncertainError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A log-normal distribution: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates `LogNormal(mu, sigma)`; `sigma` must be strictly positive.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // !(x > 0) is the NaN-safe check
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !(sigma > 0.0) || !sigma.is_finite() || !mu.is_finite() {
            return Err(UncertainError::NonPositiveScale { scale: sigma });
        }
        Ok(Self { mu, sigma })
    }

    /// Location parameter μ (mean of `ln X`).
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter σ (sd of `ln X`).
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Density of the log-normal at `x > 0`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// CDF `Pr[X <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        Normal::standard().cdf((x.ln() - self.mu) / self.sigma)
    }

    /// Quantile function, `p ∈ (0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * std_normal_quantile(p)).exp()
    }

    /// Distribution mean `exp(μ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Distribution variance `(e^{σ²} − 1) e^{2μ + σ²}`.
    pub fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Normal::new(self.mu, self.sigma)
            .expect("validated at construction")
            .sample(rng)
            .exp()
    }

    /// The paper's `LNx` quantilization: split into `k` equal-probability
    /// intervals, take support points near the right end of each interval
    /// (at the 95% point of the interval's probability span, so the last
    /// interval stays finite), and weight each point in proportion to its
    /// log-normal *density*, normalized to sum to 1.
    pub fn quantilize(&self, k: usize) -> Result<DiscreteDist> {
        if k == 0 {
            return Err(UncertainError::ZeroPoints);
        }
        let p = 1.0 / k as f64;
        let mut pairs = Vec::with_capacity(k);
        for j in 0..k {
            // "close to the right end" of interval j: its 95% inner quantile.
            let q = (j as f64 + 0.95) * p;
            let q = q.min(1.0 - 1e-9);
            let x = self.quantile(q);
            pairs.push((x, self.pdf(x)));
        }
        DiscreteDist::from_weights(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_sigma() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let ln = LogNormal::new(0.0, 0.7).unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
            let x = ln.quantile(p);
            assert!((ln.cdf(x) - p).abs() < 1e-10, "p = {p}");
        }
    }

    #[test]
    fn closed_form_moments() {
        let ln = LogNormal::new(0.3, 0.5).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let k = 200_000;
        let mean_hat = (0..k).map(|_| ln.sample(&mut rng)).sum::<f64>() / k as f64;
        assert!(
            (mean_hat - ln.mean()).abs() / ln.mean() < 0.02,
            "mean_hat = {mean_hat}, want {}",
            ln.mean()
        );
    }

    #[test]
    fn median_is_exp_mu() {
        let ln = LogNormal::new(1.2, 0.4).unwrap();
        assert!((ln.quantile(0.5) - 1.2f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn quantilize_produces_valid_small_range_dist() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        let d = ln.quantilize(5).unwrap();
        assert_eq!(d.support_size(), 5);
        // "resulting range is typically much smaller than [1,100]" — the
        // support should be within a few multiples of e^{±2σ}.
        assert!(d.max_value() < 60.0);
        assert!(d.min_value() > 0.0);
        // Mass normalized.
        let total: f64 = d.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantilize_zero_points_errors() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(ln.quantilize(0).unwrap_err(), UncertainError::ZeroPoints);
    }

    #[test]
    fn pdf_zero_below_support() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(ln.pdf(-1.0), 0.0);
        assert_eq!(ln.cdf(0.0), 0.0);
    }
}
