//! Finite-support discrete distributions.
//!
//! In the paper each uncertain value `X_i` has a support `V_i` and a pmf.
//! The experiments use supports of size 1–6 (synthetic `URx`/`LNx`/`SMx`)
//! or discretizations of normals (CDC datasets, 4–6 points), so exact
//! enumeration of per-object supports is always cheap; the combinatorial
//! cost lives in the *joint* space, handled by [`crate::joint`].

use crate::{Result, UncertainError, PROB_RENORM_TOL, PROB_SUM_TOL};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A finite-support probability distribution over `f64` values.
///
/// Invariants (enforced at construction):
/// * non-empty support;
/// * all probabilities finite, `>= 0`, summing to 1 within `1e-9`
///   (a measurably-off mass is re-normalized after validation; an
///   already-normalized pmf is stored bit-exactly so wire round-trips
///   are stable);
/// * support values are finite and strictly increasing (constructors sort
///   and merge duplicates, accumulating their mass).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteDist {
    values: Vec<f64>,
    probs: Vec<f64>,
}

impl DiscreteDist {
    /// Builds a distribution from `(value, probability)` pairs.
    ///
    /// Pairs are sorted by value; duplicate values have their mass merged.
    /// Probabilities must be non-negative and sum to 1 within `1e-9`; the
    /// stored mass is re-normalized so downstream exact algorithms can rely
    /// on `Σ p = 1` up to f64 rounding.
    pub fn new(pairs: impl IntoIterator<Item = (f64, f64)>) -> Result<Self> {
        let mut pairs: Vec<(f64, f64)> = pairs.into_iter().collect();
        if pairs.is_empty() {
            return Err(UncertainError::EmptySupport);
        }
        for &(v, p) in &pairs {
            if !v.is_finite() || !p.is_finite() || p < 0.0 {
                return Err(UncertainError::InvalidProbabilities { total: p });
            }
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut values = Vec::with_capacity(pairs.len());
        let mut probs = Vec::with_capacity(pairs.len());
        for (v, p) in pairs {
            match values.last() {
                Some(&last) if last == v => *probs.last_mut().expect("non-empty") += p,
                _ => {
                    values.push(v);
                    probs.push(p);
                }
            }
        }
        let total: f64 = probs.iter().sum();
        if (total - 1.0).abs() > PROB_SUM_TOL {
            return Err(UncertainError::InvalidProbabilities { total });
        }
        // Rescale only a measurably-off mass: an already-normalized pmf
        // must re-enter construction bit-exactly, or wire codecs have
        // no fixed point (see [`PROB_RENORM_TOL`]).
        if (total - 1.0).abs() > PROB_RENORM_TOL {
            for p in &mut probs {
                *p /= total;
            }
        }
        Ok(Self { values, probs })
    }

    /// Builds a distribution from parallel `values` / `probs` slices.
    pub fn from_parts(values: &[f64], probs: &[f64]) -> Result<Self> {
        if values.len() != probs.len() {
            return Err(UncertainError::LengthMismatch {
                values: values.len(),
                probs: probs.len(),
            });
        }
        Self::new(values.iter().copied().zip(probs.iter().copied()))
    }

    /// Builds an *unnormalized* distribution, rescaling arbitrary
    /// non-negative weights to a pmf. Used by the `URx`/`SMx` generators,
    /// which assign probabilities "in proportion to" random weights.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // !(x > 0) is the NaN-safe check
    pub fn from_weights(pairs: impl IntoIterator<Item = (f64, f64)>) -> Result<Self> {
        let pairs: Vec<(f64, f64)> = pairs.into_iter().collect();
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        if !(total > 0.0) || !total.is_finite() {
            return Err(UncertainError::InvalidProbabilities { total });
        }
        Self::new(pairs.into_iter().map(|(v, w)| (v, w / total)))
    }

    /// A degenerate (point-mass) distribution: the object is certain.
    pub fn point(value: f64) -> Self {
        Self {
            values: vec![value],
            probs: vec![1.0],
        }
    }

    /// A Bernoulli distribution on `{0, 1}` with success probability `p`.
    ///
    /// Used by the paper's Example 3 (indicator claims over binary data).
    pub fn bernoulli(p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(UncertainError::InvalidProbabilities { total: p });
        }
        Self::new([(0.0, 1.0 - p), (1.0, p)])
    }

    /// The uniform distribution over the given support values.
    pub fn uniform_over(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(UncertainError::EmptySupport);
        }
        let p = 1.0 / values.len() as f64;
        Self::new(values.iter().map(|&v| (v, p)))
    }

    /// Support values, sorted strictly increasing.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Probability masses aligned with [`Self::values`].
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of support points (`|V_i|` in the paper).
    #[inline]
    pub fn support_size(&self) -> usize {
        self.values.len()
    }

    /// `true` when the value is certain (single support point).
    #[inline]
    pub fn is_certain(&self) -> bool {
        self.values.len() == 1
    }

    /// Iterates `(value, probability)` pairs.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values.iter().copied().zip(self.probs.iter().copied())
    }

    /// Exact mean `E[X]`.
    pub fn mean(&self) -> f64 {
        self.iter().map(|(v, p)| v * p).sum()
    }

    /// Exact raw second moment `E[X²]`.
    pub fn second_moment(&self) -> f64 {
        self.iter().map(|(v, p)| v * v * p).sum()
    }

    /// Exact variance `Var[X]`, computed in the numerically stable
    /// centered form `Σ p (v − μ)²` (the naive `E[X²] − E[X]²` loses all
    /// precision for large supports like CDC injury counts ~1e5).
    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        self.iter().map(|(v, p)| p * (v - mu) * (v - mu)).sum()
    }

    /// Standard deviation `sqrt(Var[X])`.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// `Pr[X < t]` (strict).
    pub fn prob_below(&self, t: f64) -> f64 {
        self.iter()
            .take_while(|&(v, _)| v < t)
            .map(|(_, p)| p)
            .sum()
    }

    /// `Pr[X <= t]`.
    pub fn prob_at_most(&self, t: f64) -> f64 {
        self.iter()
            .take_while(|&(v, _)| v <= t)
            .map(|(_, p)| p)
            .sum()
    }

    /// `Pr[X >= t]`.
    pub fn prob_at_least(&self, t: f64) -> f64 {
        1.0 - self.prob_below(t)
    }

    /// Expectation of an arbitrary function: `E[g(X)]`.
    pub fn expect(&self, mut g: impl FnMut(f64) -> f64) -> f64 {
        self.iter().map(|(v, p)| p * g(v)).sum()
    }

    /// Variance of an arbitrary function: `Var[g(X)]`.
    pub fn variance_of(&self, mut g: impl FnMut(f64) -> f64) -> f64 {
        let vals: Vec<f64> = self.values.iter().map(|&v| g(v)).collect();
        let mu: f64 = vals.iter().zip(&self.probs).map(|(v, p)| v * p).sum();
        vals.iter()
            .zip(&self.probs)
            .map(|(v, p)| p * (v - mu) * (v - mu))
            .sum()
    }

    /// Draws one sample using inverse-CDF lookup over the support.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x: f64 = rng.gen();
        let mut acc = 0.0;
        for (v, p) in self.iter() {
            acc += p;
            if x < acc {
                return v;
            }
        }
        *self.values.last().expect("non-empty support")
    }

    /// Smallest support value.
    pub fn min_value(&self) -> f64 {
        self.values[0]
    }

    /// Largest support value.
    pub fn max_value(&self) -> f64 {
        *self.values.last().expect("non-empty support")
    }

    /// Returns a new distribution with every support value mapped through
    /// `g` (mass at colliding images is merged). `g` must be finite on the
    /// support.
    pub fn map(&self, mut g: impl FnMut(f64) -> f64) -> Self {
        Self::new(self.iter().map(|(v, p)| (g(v), p)))
            .expect("mapping a valid distribution stays valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_support() {
        assert_eq!(
            DiscreteDist::new(std::iter::empty()).unwrap_err(),
            UncertainError::EmptySupport
        );
    }

    #[test]
    fn rejects_bad_mass() {
        let err = DiscreteDist::new([(0.0, 0.4), (1.0, 0.4)]).unwrap_err();
        assert!(matches!(err, UncertainError::InvalidProbabilities { .. }));
    }

    #[test]
    fn rejects_negative_probability() {
        let err = DiscreteDist::new([(0.0, -0.5), (1.0, 1.5)]).unwrap_err();
        assert!(matches!(err, UncertainError::InvalidProbabilities { .. }));
    }

    #[test]
    fn merges_duplicate_support_points() {
        let d = DiscreteDist::new([(1.0, 0.25), (1.0, 0.25), (2.0, 0.5)]).unwrap();
        assert_eq!(d.support_size(), 2);
        assert!((d.probs()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sorts_support() {
        let d = DiscreteDist::new([(3.0, 0.5), (1.0, 0.5)]).unwrap();
        assert_eq!(d.values(), &[1.0, 3.0]);
    }

    #[test]
    fn example5_x1_variance() {
        // Paper Example 5: X1 uniform over {0, 1/2, 1, 3/2, 2} has Var 1/2.
        let d = DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap();
        assert!((d.variance() - 0.5).abs() < 1e-12);
        assert!((d.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn example5_x2_variance() {
        // X2 uniform over {1/3, 1, 5/3} has Var 8/27.
        let d = DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap();
        assert!((d.variance() - 8.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_moments() {
        let d = DiscreteDist::bernoulli(0.25).unwrap();
        assert!((d.mean() - 0.25).abs() < 1e-12);
        assert!((d.variance() - 0.25 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn probability_queries() {
        let d = DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap();
        // Example 5: Pr[X1 < 5/12] = 1/5 (only 0 qualifies).
        assert!((d.prob_below(5.0 / 12.0) - 0.2).abs() < 1e-12);
        assert!((d.prob_at_most(1.0) - 0.6).abs() < 1e-12);
        assert!((d.prob_at_least(1.0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn point_mass_is_certain() {
        let d = DiscreteDist::point(42.0);
        assert!(d.is_certain());
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.mean(), 42.0);
    }

    #[test]
    fn from_weights_normalizes() {
        let d = DiscreteDist::from_weights([(1.0, 2.0), (2.0, 6.0)]).unwrap();
        assert!((d.probs()[0] - 0.25).abs() < 1e-12);
        assert!((d.probs()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn variance_of_indicator() {
        // Var of 1[X < 11/12] for X uniform over {0,.5,1,1.5,2}: p = 2/5.
        let d = DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap();
        let var = d.variance_of(|x| if x < 11.0 / 12.0 { 1.0 } else { 0.0 });
        assert!((var - 0.4 * 0.6).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_pmf() {
        let d = DiscreteDist::new([(0.0, 0.8), (1.0, 0.2)]).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let n = 20_000;
        let ones: usize = (0..n).filter(|_| d.sample(&mut rng) == 1.0).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn map_merges_collisions() {
        let d = DiscreteDist::uniform_over(&[-1.0, 0.0, 1.0]).unwrap();
        let sq = d.map(|x| x * x);
        assert_eq!(sq.support_size(), 2);
        assert!((sq.prob_at_most(0.0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stable_variance_at_large_magnitude() {
        // CDC-scale values: mean ~1e5, sd 10. Centered computation keeps
        // full precision.
        let d = DiscreteDist::new([(100_000.0 - 10.0, 0.5), (100_000.0 + 10.0, 0.5)]).unwrap();
        assert!((d.variance() - 100.0).abs() < 1e-9);
    }
}
