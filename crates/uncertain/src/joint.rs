//! Independent joint distributions over a set of objects.
//!
//! The paper's exact algorithms repeatedly enumerate the joint support of a
//! *scope* — a small subset of objects referenced by one or two claims
//! (Theorem 3.8). The hot path is [`IndependentJoint::for_each_outcome`], a
//! zero-allocation odometer over the cartesian product of per-object
//! supports with running products of probabilities.

use crate::discrete::DiscreteDist;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A partial assignment of concrete values to object indices, representing
/// a cleaning outcome `X_T = v` (objects not present remain random).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    pairs: Vec<(usize, f64)>,
}

impl Assignment {
    /// Empty assignment (no object pinned).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds from `(object index, value)` pairs; keeps them sorted by
    /// index for binary-search lookup. Later duplicates overwrite earlier.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (usize, f64)>) -> Self {
        let mut a = Self::default();
        for (i, v) in pairs {
            a.set(i, v);
        }
        a
    }

    /// Pins object `i` to `value`.
    pub fn set(&mut self, i: usize, value: f64) {
        match self.pairs.binary_search_by_key(&i, |&(j, _)| j) {
            Ok(pos) => self.pairs[pos].1 = value,
            Err(pos) => self.pairs.insert(pos, (i, value)),
        }
    }

    /// The pinned value of object `i`, if any.
    pub fn get(&self, i: usize) -> Option<f64> {
        self.pairs
            .binary_search_by_key(&i, |&(j, _)| j)
            .ok()
            .map(|pos| self.pairs[pos].1)
    }

    /// Whether object `i` is pinned.
    pub fn contains(&self, i: usize) -> bool {
        self.get(i).is_some()
    }

    /// Number of pinned objects.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no object is pinned.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates `(object index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.pairs.iter().copied()
    }
}

/// A product distribution `X = (X_1, …, X_n)` of mutually independent
/// discrete components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndependentJoint {
    dists: Vec<DiscreteDist>,
}

impl IndependentJoint {
    /// Wraps per-object marginals into a product joint.
    pub fn new(dists: Vec<DiscreteDist>) -> Self {
        Self { dists }
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.dists.len()
    }

    /// Whether the joint has no components.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dists.is_empty()
    }

    /// Marginal of object `i`.
    #[inline]
    pub fn dist(&self, i: usize) -> &DiscreteDist {
        &self.dists[i]
    }

    /// All marginals.
    #[inline]
    pub fn dists(&self) -> &[DiscreteDist] {
        &self.dists
    }

    /// Size of the joint support restricted to `indices`
    /// (`Π |V_i|`, saturating to `usize::MAX` on overflow).
    pub fn scope_size(&self, indices: &[usize]) -> usize {
        indices
            .iter()
            .map(|&i| self.dists[i].support_size())
            .try_fold(1usize, |acc, s| acc.checked_mul(s))
            .unwrap_or(usize::MAX)
    }

    /// Enumerates every outcome of the objects in `indices`, invoking
    /// `f(values, prob)` where `values[k]` is the value taken by object
    /// `indices[k]` and `prob` is the product probability. The `values`
    /// buffer is reused across invocations (no per-outcome allocation).
    pub fn for_each_outcome(&self, indices: &[usize], mut f: impl FnMut(&[f64], f64)) {
        if indices.is_empty() {
            f(&[], 1.0);
            return;
        }
        let supports: Vec<&DiscreteDist> = indices.iter().map(|&i| &self.dists[i]).collect();
        let k = indices.len();
        let mut pos = vec![0usize; k];
        let mut values = vec![0.0f64; k];
        let mut probs = vec![0.0f64; k + 1];
        probs[0] = 1.0;
        // Initialize prefix products and values.
        for j in 0..k {
            values[j] = supports[j].values()[0];
            probs[j + 1] = probs[j] * supports[j].probs()[0];
        }
        loop {
            f(&values, probs[k]);
            // Odometer increment from the last digit.
            let mut j = k;
            loop {
                if j == 0 {
                    return;
                }
                j -= 1;
                pos[j] += 1;
                if pos[j] < supports[j].support_size() {
                    break;
                }
                pos[j] = 0;
            }
            // Refresh digits j..k.
            for t in j..k {
                values[t] = supports[t].values()[pos[t]];
                probs[t + 1] = probs[t] * supports[t].probs()[pos[t]];
            }
        }
    }

    /// Allocation-per-item iterator over the outcomes of `indices`
    /// (convenient for tests; use [`Self::for_each_outcome`] in hot paths).
    pub fn outcomes<'a>(&'a self, indices: &'a [usize]) -> JointOutcomeIter<'a> {
        JointOutcomeIter::new(self, indices)
    }

    /// Draws a full joint sample (one value per object).
    pub fn sample_all<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.dists.iter().map(|d| d.sample(rng)).collect()
    }

    /// Draws samples only for `indices`, returning values aligned with it.
    pub fn sample_subset<R: Rng + ?Sized>(&self, indices: &[usize], rng: &mut R) -> Vec<f64> {
        indices.iter().map(|&i| self.dists[i].sample(rng)).collect()
    }

    /// Per-object means.
    pub fn means(&self) -> Vec<f64> {
        self.dists.iter().map(DiscreteDist::mean).collect()
    }

    /// Per-object variances.
    pub fn variances(&self) -> Vec<f64> {
        self.dists.iter().map(DiscreteDist::variance).collect()
    }
}

/// Iterator form of [`IndependentJoint::for_each_outcome`].
pub struct JointOutcomeIter<'a> {
    joint: &'a IndependentJoint,
    indices: &'a [usize],
    pos: Vec<usize>,
    done: bool,
    first: bool,
}

impl<'a> JointOutcomeIter<'a> {
    fn new(joint: &'a IndependentJoint, indices: &'a [usize]) -> Self {
        Self {
            joint,
            indices,
            pos: vec![0; indices.len()],
            done: false,
            first: true,
        }
    }
}

impl Iterator for JointOutcomeIter<'_> {
    type Item = (Vec<f64>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.first {
            self.first = false;
        } else {
            let mut j = self.indices.len();
            loop {
                if j == 0 {
                    self.done = true;
                    return None;
                }
                j -= 1;
                self.pos[j] += 1;
                if self.pos[j] < self.joint.dist(self.indices[j]).support_size() {
                    break;
                }
                self.pos[j] = 0;
            }
        }
        if self.indices.is_empty() {
            self.done = true;
            return Some((Vec::new(), 1.0));
        }
        let mut values = Vec::with_capacity(self.indices.len());
        let mut prob = 1.0;
        for (j, &i) in self.indices.iter().enumerate() {
            let d = self.joint.dist(i);
            values.push(d.values()[self.pos[j]]);
            prob *= d.probs()[self.pos[j]];
        }
        Some((values, prob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn example_joint() -> IndependentJoint {
        IndependentJoint::new(vec![
            DiscreteDist::uniform_over(&[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap(),
            DiscreteDist::uniform_over(&[1.0 / 3.0, 1.0, 5.0 / 3.0]).unwrap(),
        ])
    }

    #[test]
    fn outcome_count_and_mass() {
        let j = example_joint();
        let mut count = 0usize;
        let mut mass = 0.0;
        j.for_each_outcome(&[0, 1], |_, p| {
            count += 1;
            mass += p;
        });
        assert_eq!(count, 15);
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_scope_single_outcome() {
        let j = example_joint();
        let mut seen = Vec::new();
        j.for_each_outcome(&[], |v, p| seen.push((v.to_vec(), p)));
        assert_eq!(seen, vec![(vec![], 1.0)]);
    }

    #[test]
    fn iterator_matches_callback() {
        let j = example_joint();
        let via_iter: Vec<(Vec<f64>, f64)> = j.outcomes(&[1, 0]).collect();
        let mut via_cb = Vec::new();
        j.for_each_outcome(&[1, 0], |v, p| via_cb.push((v.to_vec(), p)));
        assert_eq!(via_iter, via_cb);
        assert_eq!(via_iter.len(), 15);
    }

    #[test]
    fn example5_counterargument_probabilities() {
        // Example 5: clean X1 (X2 = 1 pinned): Pr[X1 + 1 < 17/12] = 1/5.
        let j = example_joint();
        let mut p_clean_x1 = 0.0;
        j.for_each_outcome(&[0], |v, p| {
            if v[0] + 1.0 < 17.0 / 12.0 {
                p_clean_x1 += p;
            }
        });
        assert!((p_clean_x1 - 0.2).abs() < 1e-12);
        // Clean X2 (X1 = 1 pinned): Pr[1 + X2 < 17/12] = 1/3.
        let mut p_clean_x2 = 0.0;
        j.for_each_outcome(&[1], |v, p| {
            if 1.0 + v[0] < 17.0 / 12.0 {
                p_clean_x2 += p;
            }
        });
        assert!((p_clean_x2 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scope_size() {
        let j = example_joint();
        assert_eq!(j.scope_size(&[0]), 5);
        assert_eq!(j.scope_size(&[0, 1]), 15);
        assert_eq!(j.scope_size(&[]), 1);
    }

    #[test]
    fn assignment_semantics() {
        let mut a = Assignment::empty();
        assert!(a.is_empty());
        a.set(5, 1.0);
        a.set(2, 3.0);
        a.set(5, 2.0); // overwrite
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(5), Some(2.0));
        assert_eq!(a.get(2), Some(3.0));
        assert_eq!(a.get(0), None);
        let order: Vec<usize> = a.iter().map(|(i, _)| i).collect();
        assert_eq!(order, vec![2, 5]);
    }

    #[test]
    fn sampling_subset() {
        let j = example_joint();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let s = j.sample_subset(&[1], &mut rng);
        assert_eq!(s.len(), 1);
        assert!(j.dist(1).values().contains(&s[0]));
    }

    #[test]
    fn means_and_variances() {
        let j = example_joint();
        let m = j.means();
        assert!((m[0] - 1.0).abs() < 1e-12);
        let v = j.variances();
        assert!((v[0] - 0.5).abs() < 1e-12);
        assert!((v[1] - 8.0 / 27.0).abs() < 1e-12);
    }
}
