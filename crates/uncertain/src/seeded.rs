//! Deterministic RNG plumbing.
//!
//! Every experiment in the reproduction must be repeatable: dataset
//! generation, Monte Carlo estimation, and simulation draws all derive
//! their randomness from explicit `u64` seeds through this module. Streams
//! are split with [`split_seed`] (SplitMix64 finalization) so distinct
//! components never share a stream even when built from the same root seed.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds a deterministic [`SmallRng`] from a `u64` seed.
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a child seed for stream `stream` from a root seed, using the
/// SplitMix64 finalizer (full avalanche, so adjacent streams decorrelate).
pub fn split_seed(root: u64, stream: u64) -> u64 {
    let mut z = root ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience: a child RNG for `(root, stream)`.
pub fn child_rng(root: u64, stream: u64) -> SmallRng {
    rng_from_seed(split_seed(root, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = (0..8).map(|_| rng_from_seed(5).gen()).collect();
        let b: Vec<u32> = (0..8).map(|_| rng_from_seed(5).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn split_streams_differ() {
        assert_ne!(split_seed(1, 0), split_seed(1, 1));
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        let mut r0 = child_rng(1, 0);
        let mut r1 = child_rng(1, 1);
        let a: u64 = r0.gen();
        let b: u64 = r1.gen();
        assert_ne!(a, b);
    }
}
