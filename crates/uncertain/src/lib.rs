//! # fc-uncertain — the uncertain-value substrate
//!
//! This crate models *uncertain database values* as used by the
//! cleaning-selection problems of Sintos, Agarwal & Yang,
//! "Selecting Data to Clean for Fact Checking: Minimizing Uncertainty vs.
//! Maximizing Surprise" (VLDB 2019).
//!
//! Each database object `o_i` has a current (possibly dirty) value `u_i`
//! and a *true* value modeled as a random variable `X_i`. This crate
//! provides:
//!
//! * [`DiscreteDist`] — finite-support distributions (the paper's `V_i`),
//!   with exact moments, conditioning-free evaluation, and sampling;
//! * [`Normal`] and [`LogNormal`] — continuous error models used by the
//!   CDC / Adoptions datasets and the `LNx` generator, including an exact
//!   `erf`-based CDF, quantile function, and equi-probability
//!   discretization;
//! * [`IndependentJoint`] — product joints over objects with iteration over
//!   the full outcome space (used by the exact `EV` engine);
//! * [`MultivariateNormal`] — correlated error models (Theorem 3.9 and the
//!   §4.5 dependency experiments), backed by a small dense
//!   [`linalg`] module (Cholesky, Schur complements) written in-crate so the
//!   workspace needs no external linear-algebra dependency;
//! * [`seeded`] — deterministic RNG plumbing so every experiment in the
//!   reproduction is bit-for-bit repeatable.

pub mod discrete;
pub mod joint;
pub mod linalg;
pub mod lognormal;
pub mod mvn;
pub mod normal;
pub mod seeded;

pub use discrete::DiscreteDist;
pub use joint::{Assignment, IndependentJoint, JointOutcomeIter};
pub use linalg::SymMatrix;
pub use lognormal::LogNormal;
pub use mvn::MultivariateNormal;
pub use normal::Normal;
pub use seeded::rng_from_seed;

use std::fmt;

/// Errors produced while constructing or manipulating uncertain values.
#[derive(Debug, Clone, PartialEq)]
pub enum UncertainError {
    /// A discrete distribution was given an empty support.
    EmptySupport,
    /// Probabilities were negative, non-finite, or did not sum to ~1.
    InvalidProbabilities {
        /// The offending probability mass total.
        total: f64,
    },
    /// Support values and probability vectors had mismatched lengths.
    LengthMismatch {
        /// Number of support values supplied.
        values: usize,
        /// Number of probabilities supplied.
        probs: usize,
    },
    /// A scale parameter (standard deviation, σ) was not strictly positive.
    NonPositiveScale {
        /// The offending scale value.
        scale: f64,
    },
    /// A covariance matrix was not symmetric positive definite.
    NotPositiveDefinite {
        /// Index of the pivot where the Cholesky factorization failed.
        pivot: usize,
    },
    /// Matrix dimensions did not match the operation.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        got: usize,
    },
    /// A requested discretization had zero points.
    ZeroPoints,
}

impl fmt::Display for UncertainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySupport => write!(f, "discrete distribution support is empty"),
            Self::InvalidProbabilities { total } => {
                write!(f, "probabilities invalid (sum = {total})")
            }
            Self::LengthMismatch { values, probs } => {
                write!(f, "{values} support values but {probs} probabilities")
            }
            Self::NonPositiveScale { scale } => {
                write!(f, "scale parameter must be > 0, got {scale}")
            }
            Self::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            Self::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            Self::ZeroPoints => write!(f, "discretization needs at least one point"),
        }
    }
}

impl std::error::Error for UncertainError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, UncertainError>;

/// Tolerance used when validating that probability masses sum to one.
pub(crate) const PROB_SUM_TOL: f64 = 1e-9;

/// Mass error below which a pmf counts as *already* normalized and is
/// stored bit-exactly. One rescale leaves `Σp` within a few ulps of 1
/// (far under this bound), so normalization is idempotent: a pmf that
/// round-trips through a wire codec re-enters construction unchanged.
/// Without the cutoff every encode∘decode cycle divides the masses by
/// a total ≠ 1.0 and perturbs them, so no two trips agree bit-for-bit.
pub(crate) const PROB_RENORM_TOL: f64 = 1e-12;
