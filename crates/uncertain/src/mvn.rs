//! Multivariate normal error models.
//!
//! Used in two places of the reproduction:
//!
//! * **Theorem 3.9** — when `X ~ N(u, Σ)` (centered at the current values)
//!   and all claims are linear, MinVar and MaxPr share an optimal solution.
//! * **§4.5 dependency experiments** — CDC-firearms with injected
//!   covariance `Cov[X_i, X_j] = γ^{j−i} σ_i σ_j`, where `OPT`/`GreedyDep`
//!   are given the covariance matrix while the independence-assuming
//!   algorithms are not.
//!
//! Two posterior semantics are provided (see DESIGN.md §1):
//! [`MvnSemantics::Marginal`] follows the paper's Lemma 3.1/Theorem 3.9
//! algebra (remaining uncertainty measured by the marginal covariance of
//! the uncleaned coordinates), and [`MvnSemantics::Conditional`] is the
//! exact Gaussian posterior via Schur complement.

use crate::linalg::{Cholesky, SymMatrix};
use crate::normal::standard_normal_sample;
use crate::{Result, UncertainError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How post-cleaning uncertainty is measured for a correlated Gaussian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MvnSemantics {
    /// Paper semantics (Lemma 3.1 / Theorem 3.9): cleaning `T` removes the
    /// rows/columns of `T` and the residual variance of a linear query is
    /// the quadratic form over the *marginal* covariance of `O \ T`.
    Marginal,
    /// Exact Gaussian posterior: the residual covariance of `O \ T` after
    /// observing `X_T` is the Schur complement `Σ_{T̄T̄} − Σ_{T̄T} Σ_TT⁻¹ Σ_{TT̄}`.
    Conditional,
}

/// A multivariate normal `N(mean, cov)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    cov: SymMatrix,
}

impl MultivariateNormal {
    /// Creates `N(mean, cov)`; validates dimensions and positive
    /// definiteness (via a trial Cholesky factorization).
    pub fn new(mean: Vec<f64>, cov: SymMatrix) -> Result<Self> {
        if mean.len() != cov.n() {
            return Err(UncertainError::DimensionMismatch {
                expected: mean.len(),
                got: cov.n(),
            });
        }
        cov.cholesky()?;
        Ok(Self { mean, cov })
    }

    /// Builds an independent (diagonal) Gaussian.
    pub fn independent(mean: Vec<f64>, variances: &[f64]) -> Result<Self> {
        if mean.len() != variances.len() {
            return Err(UncertainError::DimensionMismatch {
                expected: mean.len(),
                got: variances.len(),
            });
        }
        Self::new(mean, SymMatrix::from_diagonal(variances))
    }

    /// Builds the §4.5 injected-dependency covariance
    /// `Cov[X_i, X_j] = γ^{|j−i|} σ_i σ_j` over the given mean vector and
    /// per-object standard deviations. `γ ∈ [0, 1)`; `γ = 0` recovers the
    /// independent model (`0^0 = 1` on the diagonal).
    pub fn with_geometric_dependency(mean: Vec<f64>, sds: &[f64], gamma: f64) -> Result<Self> {
        if mean.len() != sds.len() {
            return Err(UncertainError::DimensionMismatch {
                expected: mean.len(),
                got: sds.len(),
            });
        }
        let n = sds.len();
        let mut cov = SymMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                let rho = if i == j {
                    1.0
                } else {
                    gamma.powi((j - i) as i32)
                };
                cov.set(i, j, rho * sds[i] * sds[j]);
            }
        }
        Self::new(mean, cov)
    }

    /// Dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.mean.len()
    }

    /// Mean vector.
    #[inline]
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Covariance matrix.
    #[inline]
    pub fn cov(&self) -> &SymMatrix {
        &self.cov
    }

    /// Marginal variance of coordinate `i`.
    #[inline]
    pub fn var(&self, i: usize) -> f64 {
        self.cov.get(i, i)
    }

    /// Variance of the linear form `wᵀX`.
    pub fn linear_form_variance(&self, w: &[f64]) -> f64 {
        self.cov.quadratic_form(w)
    }

    /// Residual variance of the linear query `wᵀX` after cleaning the
    /// objects in `cleaned` (strictly increasing indices), under the given
    /// semantics. This *is* the `EV(T)` of MinVar for a linear query over a
    /// Gaussian: for [`MvnSemantics::Conditional`] the posterior covariance
    /// of a Gaussian does not depend on the observed values, so the
    /// expectation over outcomes is the Schur-complement quadratic form
    /// itself; for [`MvnSemantics::Marginal`] it is the paper's
    /// `Σ_{i,j ∉ T} w_i w_j Cov[X_i, X_j]`.
    pub fn residual_variance(
        &self,
        w: &[f64],
        cleaned: &[usize],
        semantics: MvnSemantics,
    ) -> Result<f64> {
        if w.len() != self.n() {
            return Err(UncertainError::DimensionMismatch {
                expected: self.n(),
                got: w.len(),
            });
        }
        match semantics {
            MvnSemantics::Marginal => {
                let mut w_masked = w.to_vec();
                for &i in cleaned {
                    w_masked[i] = 0.0;
                }
                Ok(self.cov.quadratic_form(&w_masked))
            }
            MvnSemantics::Conditional => {
                let (hidden, sc) = self.cov.schur_complement(cleaned)?;
                let w_hidden: Vec<f64> = hidden.iter().map(|&i| w[i]).collect();
                Ok(sc.quadratic_form(&w_hidden))
            }
        }
    }

    /// Variance of the *cleaned* part of a linear query: for MaxPr under a
    /// Gaussian centered at the current values, the deviation
    /// `f(X) − f(u) | X_{O\T} = u_{O\T}` is a centered normal whose
    /// variance this returns (marginal semantics: `w_T Σ_TT w_T`;
    /// conditional semantics: `w_T Σ_{T|T̄} w_T`).
    pub fn cleaned_part_variance(
        &self,
        w: &[f64],
        cleaned: &[usize],
        semantics: MvnSemantics,
    ) -> Result<f64> {
        match semantics {
            MvnSemantics::Marginal => {
                let sub = self.cov.principal_submatrix(cleaned);
                let w_t: Vec<f64> = cleaned.iter().map(|&i| w[i]).collect();
                Ok(sub.quadratic_form(&w_t))
            }
            MvnSemantics::Conditional => {
                let uncleaned: Vec<usize> =
                    (0..self.n()).filter(|i| !cleaned.contains(i)).collect();
                let (hidden, sc) = self.cov.schur_complement(&uncleaned)?;
                let w_t: Vec<f64> = hidden.iter().map(|&i| w[i]).collect();
                Ok(sc.quadratic_form(&w_t))
            }
        }
    }

    /// Full Gaussian conditioning: given `X_obs = vals`, returns the
    /// hidden coordinate indices, their posterior mean
    /// `μ_h + Σ_ho Σ_oo⁻¹ (vals − μ_o)`, and posterior covariance (the
    /// Schur complement).
    pub fn conditional(
        &self,
        observed: &[usize],
        vals: &[f64],
    ) -> Result<(Vec<usize>, Vec<f64>, SymMatrix)> {
        let mut obs = observed.to_vec();
        obs.sort_unstable();
        obs.dedup();
        if obs.len() != vals.len() {
            return Err(UncertainError::DimensionMismatch {
                expected: obs.len(),
                got: vals.len(),
            });
        }
        let (hidden, sc) = self.cov.schur_complement(&obs)?;
        if obs.is_empty() {
            let mean = hidden.iter().map(|&i| self.mean[i]).collect();
            return Ok((hidden, mean, sc));
        }
        let sigma_oo = self.cov.principal_submatrix(&obs);
        let chol = sigma_oo.cholesky()?;
        let resid: Vec<f64> = obs
            .iter()
            .zip(vals)
            .map(|(&i, &v)| v - self.mean[i])
            .collect();
        let alpha = chol.solve(&resid); // Σ_oo⁻¹ (vals − μ_o)
        let mean = hidden
            .iter()
            .map(|&i| {
                let mut m = self.mean[i];
                for (j, &o) in obs.iter().enumerate() {
                    m += self.cov.get(i, o) * alpha[j];
                }
                m
            })
            .collect();
        Ok((hidden, mean, sc))
    }

    /// Draws one sample (`mean + L z` with `z` i.i.d. standard normal).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let chol = self.cov.cholesky().expect("validated at construction");
        self.sample_with(&chol, rng)
    }

    /// Sampling with a pre-computed Cholesky factor (avoids refactorizing
    /// inside Monte Carlo loops).
    pub fn sample_with<R: Rng + ?Sized>(&self, chol: &Cholesky, rng: &mut R) -> Vec<f64> {
        let z: Vec<f64> = (0..self.n()).map(|_| standard_normal_sample(rng)).collect();
        let lz = chol.lower_times(&z);
        lz.iter().zip(&self.mean).map(|(a, m)| a + m).collect()
    }

    /// Pre-computes the Cholesky factor for repeated sampling.
    pub fn cholesky(&self) -> Cholesky {
        self.cov.cholesky().expect("validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn example() -> MultivariateNormal {
        MultivariateNormal::with_geometric_dependency(vec![10.0, 20.0, 30.0], &[1.0, 2.0, 3.0], 0.5)
            .unwrap()
    }

    #[test]
    fn geometric_dependency_structure() {
        let m = example();
        assert!((m.cov().get(0, 0) - 1.0).abs() < 1e-12);
        assert!((m.cov().get(0, 1) - 0.5 * 1.0 * 2.0).abs() < 1e-12);
        assert!((m.cov().get(0, 2) - 0.25 * 1.0 * 3.0).abs() < 1e-12);
        assert!((m.cov().get(1, 2) - 0.5 * 2.0 * 3.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_zero_is_diagonal() {
        let m = MultivariateNormal::with_geometric_dependency(vec![0.0, 0.0], &[2.0, 3.0], 0.0)
            .unwrap();
        assert_eq!(m.cov().get(0, 1), 0.0);
        assert!((m.cov().get(1, 1) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        assert!(MultivariateNormal::independent(vec![0.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn residual_variance_marginal_vs_conditional() {
        let m = example();
        let w = [1.0, -1.0, 0.5];
        // No cleaning: both equal the full quadratic form.
        let full = m.linear_form_variance(&w);
        for sem in [MvnSemantics::Marginal, MvnSemantics::Conditional] {
            let r = m.residual_variance(&w, &[], sem).unwrap();
            assert!((r - full).abs() < 1e-10, "{sem:?}");
        }
        // Cleaning everything: zero either way.
        for sem in [MvnSemantics::Marginal, MvnSemantics::Conditional] {
            let r = m.residual_variance(&w, &[0, 1, 2], sem).unwrap();
            assert!(r.abs() < 1e-10, "{sem:?}");
        }
        // Partial cleaning: conditional ≤ marginal (conditioning can only
        // shrink Gaussian uncertainty).
        let rm = m
            .residual_variance(&w, &[1], MvnSemantics::Marginal)
            .unwrap();
        let rc = m
            .residual_variance(&w, &[1], MvnSemantics::Conditional)
            .unwrap();
        assert!(rc <= rm + 1e-12, "rc = {rc}, rm = {rm}");
    }

    #[test]
    fn residual_variance_independent_matches_modular() {
        // With a diagonal covariance, both semantics reduce to
        // Σ_{i∉T} w_i² σ_i² (Lemma 3.1).
        let m = MultivariateNormal::independent(vec![0.0; 3], &[4.0, 9.0, 16.0]).unwrap();
        let w = [1.0, 2.0, 3.0];
        let want = 4.0 * 1.0 + 16.0 * 9.0; // cleaning object 1
        for sem in [MvnSemantics::Marginal, MvnSemantics::Conditional] {
            let r = m.residual_variance(&w, &[1], sem).unwrap();
            assert!((r - want).abs() < 1e-10, "{sem:?}: {r}");
        }
    }

    #[test]
    fn cleaned_part_variance_complements_residual_marginal() {
        // Marginal semantics: w_TΣ_TTw_T + w_T̄Σ_T̄T̄w_T̄ + cross = full.
        // For diagonal Σ the cross term vanishes and the two parts add up.
        let m = MultivariateNormal::independent(vec![0.0; 3], &[4.0, 9.0, 16.0]).unwrap();
        let w = [1.0, 2.0, 3.0];
        let full = m.linear_form_variance(&w);
        let a = m
            .cleaned_part_variance(&w, &[1], MvnSemantics::Marginal)
            .unwrap();
        let b = m
            .residual_variance(&w, &[1], MvnSemantics::Marginal)
            .unwrap();
        assert!((a + b - full).abs() < 1e-10);
    }

    #[test]
    fn conditional_mean_bivariate() {
        // X = (X0, X1) with Cov = [[1, .5·1·2],[.5·1·2, 4]], mean (10, 20).
        // E[X0 | X1 = 22] = 10 + (1·0.5·2/4)·2 = 10.5;
        // Var[X0 | X1] = 1 − 1²·0.25·4/4 … = 1 − (1·0.5·2)²/4 = 0.75.
        let m = MultivariateNormal::with_geometric_dependency(vec![10.0, 20.0], &[1.0, 2.0], 0.5)
            .unwrap();
        let (hidden, mean, cov) = m.conditional(&[1], &[22.0]).unwrap();
        assert_eq!(hidden, vec![0]);
        assert!((mean[0] - 10.5).abs() < 1e-12, "mean {}", mean[0]);
        assert!((cov.get(0, 0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn conditional_with_nothing_observed() {
        let m = example();
        let (hidden, mean, cov) = m.conditional(&[], &[]).unwrap();
        assert_eq!(hidden, vec![0, 1, 2]);
        assert_eq!(mean, m.mean().to_vec());
        assert_eq!(&cov, m.cov());
    }

    #[test]
    fn conditional_rejects_mismatched_vals() {
        let m = example();
        assert!(m.conditional(&[0, 1], &[1.0]).is_err());
    }

    #[test]
    fn sample_moments() {
        let m = example();
        let chol = m.cholesky();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let k = 60_000;
        let mut mean = [0.0f64; 3];
        let mut cov01 = 0.0f64;
        let samples: Vec<Vec<f64>> = (0..k).map(|_| m.sample_with(&chol, &mut rng)).collect();
        for s in &samples {
            for i in 0..3 {
                mean[i] += s[i];
            }
        }
        for v in &mut mean {
            *v /= k as f64;
        }
        for s in &samples {
            cov01 += (s[0] - mean[0]) * (s[1] - mean[1]);
        }
        cov01 /= k as f64;
        assert!((mean[0] - 10.0).abs() < 0.05, "mean0 {}", mean[0]);
        assert!((mean[2] - 30.0).abs() < 0.1, "mean2 {}", mean[2]);
        assert!((cov01 - 1.0).abs() < 0.1, "cov01 {cov01}");
    }
}
