//! Ablations for the design choices called out in DESIGN.md §5:
//!
//! * `ablate_incremental_ev` — GreedyMinVar with incremental benefit
//!   maintenance (versioned heap + local deltas) vs the paper's
//!   `O(n²γ)` from-scratch greedy;
//! * `ablate_greedy_fixup` — Algorithm 1 with and without the lines 5–8
//!   2-approximation fix-up, on the §3.1 pathological knapsack instance
//!   (quality, measured as achieved value, plus the runtime cost);
//! * `ablate_best_iters` — the `Best` majorization–minimization loop at
//!   different iteration caps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_core::algo::{
    best_min_var_with_engine, greedy_min_var_from_scratch, greedy_min_var_with_engine,
    greedy_static, BestConfig, GreedyConfig,
};
use fc_core::ev::ScopedEv;
use fc_core::Budget;
use fc_datasets::workloads::synthetic_uniqueness;
use fc_datasets::SyntheticKind;
use std::hint::black_box;

fn ablate_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_incremental_ev");
    group.sample_size(10);
    for n in [40usize, 120, 400] {
        let w = synthetic_uniqueness(SyntheticKind::Urx, n, 100.0, 5).unwrap();
        let eng = ScopedEv::new(&w.instance, &w.query);
        let budget = Budget::fraction(w.instance.total_cost(), 0.3);
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| black_box(greedy_min_var_with_engine(&w.instance, &eng, budget).len()))
        });
        if n <= 120 {
            group.bench_with_input(BenchmarkId::new("from_scratch", n), &n, |b, _| {
                b.iter(|| {
                    black_box(greedy_min_var_from_scratch(&w.instance, &w.query, budget).len())
                })
            });
        }
    }
    group.finish();
}

fn ablate_fixup(c: &mut Criterion) {
    // The §3.1 instance scaled to 2k items so the sort dominates; the
    // fix-up adds one extra scan.
    let n = 2_000usize;
    let mut benefits: Vec<f64> = (0..n).map(|i| 0.1 + (i % 7) as f64 * 0.01).collect();
    let mut costs: Vec<u64> = (0..n).map(|i| 1 + (i % 5) as u64).collect();
    benefits.push(10_000.0);
    costs.push(2_000);
    let budget = Budget::absolute(2_000);
    let mut group = c.benchmark_group("ablate_greedy_fixup");
    for (label, fixup) in [("with_fixup", true), ("without_fixup", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let sel = greedy_static(
                    &benefits,
                    &costs,
                    budget,
                    GreedyConfig {
                        fixup,
                        ..Default::default()
                    },
                );
                black_box(sel.len())
            })
        });
    }
    group.finish();
}

fn ablate_best_iters(c: &mut Criterion) {
    let w = synthetic_uniqueness(SyntheticKind::Urx, 40, 150.0, 5).unwrap();
    let eng = ScopedEv::new(&w.instance, &w.query);
    let budget = Budget::fraction(w.instance.total_cost(), 0.3);
    let mut group = c.benchmark_group("ablate_best_iters");
    group.sample_size(10);
    for iters in [1usize, 5, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            b.iter(|| {
                let sel = best_min_var_with_engine(
                    &w.instance,
                    &eng,
                    budget,
                    BestConfig { max_iters: iters },
                );
                black_box(eng.ev_of(sel.objects()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablate_incremental, ablate_fixup, ablate_best_iters);
criterion_main!(benches);
