//! Surprise-probability engine comparison: exact enumeration vs binned
//! convolution vs Monte Carlo vs the Gaussian closed form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_core::maxpr::{
    surprise_prob_convolution, surprise_prob_exact, surprise_prob_gaussian, surprise_prob_mc,
};
use fc_datasets::workloads::{competing_objectives, counters_urx};
use fc_uncertain::mvn::MvnSemantics;
use fc_uncertain::rng_from_seed;
use std::hint::black_box;

fn bench_maxpr(c: &mut Criterion) {
    let w = counters_urx(7).unwrap();
    let cleaned: Vec<usize> = (0..6).collect();
    let tau = w.tau;
    let mut group = c.benchmark_group("maxpr_discrete");
    group.sample_size(20);
    group.bench_function("exact_enumeration", |b| {
        b.iter(|| {
            black_box(surprise_prob_exact(&w.instance, &w.query, &cleaned, tau, None).unwrap())
        })
    });
    for bins in [1usize << 10, 1 << 14] {
        group.bench_with_input(BenchmarkId::new("convolution", bins), &bins, |b, &bins| {
            b.iter(|| {
                black_box(
                    surprise_prob_convolution(&w.instance, &w.query, &cleaned, tau, Some(bins))
                        .unwrap(),
                )
            })
        });
    }
    group.bench_function("monte_carlo_10k", |b| {
        let mut rng = rng_from_seed(5);
        b.iter(|| {
            black_box(surprise_prob_mc(
                &w.instance,
                &w.query,
                &cleaned,
                tau,
                10_000,
                &mut rng,
            ))
        })
    });
    group.finish();

    let g = competing_objectives(7).unwrap();
    let cleaned: Vec<usize> = (0..10).collect();
    let mut group = c.benchmark_group("maxpr_gaussian");
    for sem in [MvnSemantics::Marginal, MvnSemantics::Conditional] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sem:?}")),
            &sem,
            |b, &sem| {
                b.iter(|| {
                    black_box(
                        surprise_prob_gaussian(&g.instance, &g.weights, &cleaned, 25.0, sem)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maxpr);
criterion_main!(benches);
