//! EV-engine comparison: exact joint enumeration vs the scoped
//! Theorem 3.8 engine vs the modular closed form vs Monte Carlo, on a
//! small workload where all four apply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_claims::{BiasQuery, DupQuery};
use fc_core::ev::{ev_exact, ev_modular, ev_monte_carlo, modular_benefits, ScopedEv};
use fc_datasets::workloads::synthetic_uniqueness;
use fc_datasets::SyntheticKind;
use fc_uncertain::rng_from_seed;
use std::hint::black_box;

fn bench_ev_engines(c: &mut Criterion) {
    // 8 objects, 2 tiled claims: small enough for exact enumeration
    // (the exact engine walks the full joint support).
    let w = synthetic_uniqueness(SyntheticKind::Urx, 8, 100.0, 7).unwrap();
    let cleaned = vec![1usize, 4, 6];
    let mut group = c.benchmark_group("ev_engines_dup");
    group.sample_size(20);
    group.bench_function("exact", |b| {
        b.iter(|| ev_exact(&w.instance, &w.query, black_box(&cleaned)))
    });
    let eng = ScopedEv::new(&w.instance, &w.query);
    group.bench_function("scoped", |b| b.iter(|| eng.ev_of(black_box(&cleaned))));
    group.bench_function("scoped_incremental_delta", |b| {
        let st = eng.state_for(&cleaned);
        b.iter(|| eng.delta(black_box(&st), black_box(7)))
    });
    group.bench_function("monte_carlo_200x100", |b| {
        let mut rng = rng_from_seed(3);
        b.iter(|| {
            ev_monte_carlo(
                &w.instance,
                &w.query,
                black_box(&cleaned),
                200,
                100,
                &mut rng,
            )
        })
    });
    group.finish();

    // Modular fast path for the affine bias query on the same data.
    let bias = BiasQuery::new(w.query.claims().clone(), 100.0);
    let benefits = modular_benefits(&w.instance, &bias).unwrap();
    let mut group = c.benchmark_group("ev_engines_bias");
    group.sample_size(20);
    group.bench_function("modular", |b| {
        b.iter(|| ev_modular(black_box(&benefits), black_box(&cleaned)))
    });
    group.bench_function("exact", |b| {
        b.iter(|| ev_exact(&w.instance, &bias, black_box(&cleaned)))
    });
    group.finish();

    // Scoped engine build cost vs claim-family size.
    let mut group = c.benchmark_group("scoped_build");
    for n in [40usize, 200, 1000] {
        let w = synthetic_uniqueness(SyntheticKind::Urx, n, 100.0, 7).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| {
                let eng = ScopedEv::new(&w.instance, &w.query);
                black_box(eng.num_terms())
            })
        });
    }
    group.finish();

    // Overlapping-scope engine (pair machinery exercised).
    let w = synthetic_uniqueness(SyntheticKind::Urx, 8, 100.0, 7).unwrap();
    let q = DupQuery::relative_to_original(w.query.claims().clone());
    let mut group = c.benchmark_group("scoped_with_pairs");
    group.bench_function("build", |b| {
        b.iter(|| {
            let eng = ScopedEv::new(&w.instance, &q);
            black_box(eng.num_sharing_pairs())
        })
    });
    let eng = ScopedEv::new(&w.instance, &q);
    group.bench_function("ev_of", |b| b.iter(|| eng.ev_of(black_box(&cleaned))));
    group.finish();
}

criterion_group!(benches, bench_ev_engines);
criterion_main!(benches);
