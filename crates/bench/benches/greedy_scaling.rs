//! GreedyMinVar scaling (the Criterion micro-version of Fig. 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_core::algo::greedy_min_var_with_engine;
use fc_core::ev::ScopedEv;
use fc_core::Budget;
use fc_datasets::workloads::scaling_uniqueness;
use std::hint::black_box;

fn bench_greedy_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_min_var_scaling");
    group.sample_size(10);
    for n in [1_000usize, 5_000, 20_000] {
        let w = scaling_uniqueness(n, 42).unwrap();
        let eng = ScopedEv::new(&w.instance, &w.query);
        let budget = Budget::fraction(w.instance.total_cost(), 0.1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(greedy_min_var_with_engine(&w.instance, &eng, budget).len()))
        });
    }
    group.finish();

    // Budget sensitivity at fixed n (Fig. 10a shape).
    let w = scaling_uniqueness(5_000, 42).unwrap();
    let eng = ScopedEv::new(&w.instance, &w.query);
    let total = w.instance.total_cost();
    let mut group = c.benchmark_group("greedy_min_var_budget");
    group.sample_size(10);
    for pct in [1u64, 10, 30] {
        let budget = Budget::fraction(total, pct as f64 / 100.0);
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, _| {
            b.iter(|| black_box(greedy_min_var_with_engine(&w.instance, &eng, budget).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy_scaling);
criterion_main!(benches);
