//! Knapsack solver comparison (Lemma 3.2/3.3 machinery): exact DP vs
//! FPTAS vs the greedy 2-approximation, and the min-cover DP used inside
//! `Best`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_core::algo::{fptas_max_knapsack, greedy_knapsack, max_knapsack_dp, min_knapsack_cover_dp};
use fc_uncertain::rng_from_seed;
use rand::Rng;
use std::hint::black_box;

fn workload(n: usize, seed: u64) -> (Vec<f64>, Vec<u64>, u64) {
    let mut rng = rng_from_seed(seed);
    let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..1000.0)).collect();
    let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(1..200)).collect();
    let capacity = costs.iter().sum::<u64>() / 3;
    (values, costs, capacity)
}

fn bench_knapsack(c: &mut Criterion) {
    for n in [26usize, 68] {
        let (values, costs, capacity) = workload(n, 9);
        let mut group = c.benchmark_group(format!("knapsack_n{n}"));
        group.bench_function("dp_exact", |b| {
            b.iter(|| black_box(max_knapsack_dp(&values, &costs, capacity).1))
        });
        group.bench_function("greedy_2approx", |b| {
            b.iter(|| black_box(greedy_knapsack(&values, &costs, capacity).cost()))
        });
        for eps in [0.5, 0.1] {
            group.bench_with_input(
                BenchmarkId::new("fptas", format!("eps{eps}")),
                &eps,
                |b, &eps| {
                    b.iter(|| black_box(fptas_max_knapsack(&values, &costs, capacity, eps).1))
                },
            );
        }
        group.bench_function("min_cover_dp", |b| {
            let required = costs.iter().sum::<u64>() - capacity;
            b.iter(|| black_box(min_knapsack_cover_dp(&values, &costs, required).1))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_knapsack);
criterion_main!(benches);
