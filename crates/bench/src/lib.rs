//! # fc-bench — the experiment harness
//!
//! One binary per figure of the paper's evaluation (`fig01` … `fig12`,
//! plus `counters` for the §4.3 text results). Each binary prints the
//! figure's series as an aligned table and writes
//! `bench_out/<figure>.csv`. Pass `--quick` for a reduced sweep (CI
//! speed) and `--seed <u64>` to change the workload seed.
//!
//! The shared pieces live here: [`Figure`]/[`Series`] (collection +
//! emission), CLI parsing, gaussian-instance algorithm wrappers used by
//! the modular figures, and the in-action duplicity posterior used by
//! Figs. 8/9.

use fc_claims::DecomposableQuery;
use fc_claims::DupQuery;
use fc_core::algo::{greedy_static, GreedyConfig};
use fc_core::ev::modular::modular_benefits_gaussian;
use fc_core::{Budget, GaussianInstance, Instance, Selection};
use serde::Serialize;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One plotted line: label + (x, y) points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label (algorithm name, Γ value, …).
    pub label: String,
    /// X coordinates (budget fraction, γ, n, …).
    pub x: Vec<f64>,
    /// Y values (remaining variance, probability, seconds, …).
    pub y: Vec<f64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.x.push(x);
        self.y.push(y);
    }
}

/// A figure: id, axis labels, and its series.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Identifier (`fig01a`, `fig10b`, …) — also the CSV stem.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
        }
    }

    /// Renders an aligned text table (x column + one column per series).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = write!(out, "{:>12}", self.xlabel);
        for s in &self.series {
            let _ = write!(out, " {:>16}", truncate(&s.label, 16));
        }
        let _ = writeln!(out);
        let rows = self.series.iter().map(|s| s.x.len()).max().unwrap_or(0);
        for r in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.x.get(r))
                .copied()
                .unwrap_or(f64::NAN);
            let _ = write!(out, "{x:>12.4}");
            for s in &self.series {
                match s.y.get(r) {
                    Some(v) => {
                        let _ = write!(out, " {v:>16.6}");
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes `<dir>/<id>.csv` with header `x,<label...>`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut body = String::new();
        let _ = write!(body, "{}", self.xlabel.replace(',', ";"));
        for s in &self.series {
            let _ = write!(body, ",{}", s.label.replace(',', ";"));
        }
        let _ = writeln!(body);
        let rows = self.series.iter().map(|s| s.x.len()).max().unwrap_or(0);
        for r in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.x.get(r))
                .copied()
                .unwrap_or(f64::NAN);
            let _ = write!(body, "{x}");
            for s in &self.series {
                match s.y.get(r) {
                    Some(v) => {
                        let _ = write!(body, ",{v}");
                    }
                    None => body.push(','),
                }
            }
            let _ = writeln!(body);
        }
        std::fs::write(&path, body)?;
        Ok(path)
    }

    /// Prints the table and writes the CSV, reporting the path.
    pub fn emit(&self, cfg: &HarnessCfg) {
        println!("{}", self.render());
        match self.write_csv(&cfg.out_dir) {
            Ok(p) => println!("[csv] {}\n", p.display()),
            Err(e) => eprintln!("[csv] failed: {e}\n"),
        }
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n - 1).collect::<String>() + "…"
    }
}

/// Harness configuration parsed from argv.
#[derive(Debug, Clone)]
pub struct HarnessCfg {
    /// Reduced sweeps for CI.
    pub quick: bool,
    /// Root workload seed.
    pub seed: u64,
    /// CSV output directory.
    pub out_dir: PathBuf,
}

impl HarnessCfg {
    /// Parses `--quick`, `--seed <u64>`, `--out <dir>` from `std::env`.
    pub fn from_args() -> Self {
        let mut cfg = Self {
            quick: false,
            seed: 42,
            out_dir: PathBuf::from("bench_out"),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cfg.quick = true,
                "--seed" => {
                    if let Some(v) = args.next() {
                        cfg.seed = v.parse().unwrap_or(cfg.seed);
                    }
                }
                "--out" => {
                    if let Some(v) = args.next() {
                        cfg.out_dir = PathBuf::from(v);
                    }
                }
                _ => {}
            }
        }
        cfg
    }

    /// Budget fractions for the x-axis sweeps.
    pub fn budget_fracs(&self) -> Vec<f64> {
        if self.quick {
            vec![0.0, 0.1, 0.25, 0.5, 0.75, 1.0]
        } else {
            (0..=20).map(|i| i as f64 / 20.0).collect()
        }
    }
}

/// Gaussian-instance baselines for the modular (fairness) figures.
/// All return the remaining variance `EV(T) = Σ_{i∉T} wᵢ²σᵢ²`.
pub mod gaussian_algos {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::Rng;

    /// Remaining fairness variance for a selection.
    pub fn remaining(benefits: &[f64], sel: &Selection) -> f64 {
        let total: f64 = benefits.iter().sum();
        let removed: f64 = sel.objects().iter().map(|&i| benefits[i]).sum();
        (total - removed).max(0.0)
    }

    /// `Random` on a Gaussian instance.
    pub fn random<R: Rng + ?Sized>(
        inst: &GaussianInstance,
        budget: Budget,
        rng: &mut R,
    ) -> Selection {
        let mut order: Vec<usize> = (0..inst.len()).collect();
        order.shuffle(rng);
        let mut sel = Selection::empty();
        for i in order {
            if budget.fits(sel.cost(), inst.cost(i)) {
                sel.insert(i, inst.cost(i));
            }
        }
        sel
    }

    /// `GreedyNaiveCostBlind`: descending marginal variance.
    pub fn naive_cost_blind(inst: &GaussianInstance, weights: &[f64], budget: Budget) -> Selection {
        let mut order: Vec<usize> = (0..inst.len()).filter(|&i| weights[i] != 0.0).collect();
        order.sort_by(|&a, &b| inst.variance(b).total_cmp(&inst.variance(a)));
        let mut sel = Selection::empty();
        for i in order {
            if budget.fits(sel.cost(), inst.cost(i)) {
                sel.insert(i, inst.cost(i));
            }
        }
        sel
    }

    /// `GreedyNaive`: marginal variance per unit cost.
    pub fn naive(inst: &GaussianInstance, weights: &[f64], budget: Budget) -> Selection {
        let benefits: Vec<f64> = (0..inst.len())
            .map(|i| {
                if weights[i] != 0.0 {
                    inst.variance(i)
                } else {
                    0.0
                }
            })
            .collect();
        greedy_static(&benefits, inst.costs(), budget, GreedyConfig::default())
    }

    /// The Lemma 3.1 benefits for a linear query.
    pub fn benefits(inst: &GaussianInstance, weights: &[f64]) -> Vec<f64> {
        modular_benefits_gaussian(inst, weights)
    }
}

/// Posterior mean / standard deviation of the duplicity measure after a
/// cleaning outcome is revealed (Figs. 8/9): with independent objects
/// and the revealed ones pinned, `dup = Σ_k Bernoulli(p_k)` with
/// independent terms whenever claim scopes are disjoint (tiled windows).
pub fn dup_posterior(
    instance: &Instance,
    query: &DupQuery,
    revealed: &[(usize, f64)],
) -> (f64, f64) {
    let mut dists = instance.joint().dists().to_vec();
    for &(i, v) in revealed {
        dists[i] = fc_uncertain::DiscreteDist::point(v);
    }
    let pinned = fc_uncertain::IndependentJoint::new(dists);
    let mut mean = 0.0;
    let mut var = 0.0;
    for k in 0..query.num_terms() {
        let scope = query.term_objects(k);
        let mut p = 0.0;
        pinned.for_each_outcome(scope, |vals, pr| {
            if query.eval_term(k, vals) > 0.5 {
                p += pr;
            }
        });
        mean += p;
        var += p * (1.0 - p);
    }
    (mean, var.sqrt())
}

/// One [`SolverRegistry`](fc_core::SolverRegistry) `solve_batch` of
/// `strategies × budgets` jobs over a single problem — the shared
/// shape of every panel figure (jobs on one problem share one engine
/// build). Plans come back strategy-major: decode with
/// `chunks(budgets.len())`.
pub fn strategy_budget_batch(
    registry: &fc_core::SolverRegistry,
    problem: &fc_core::Problem,
    strategies: &[&str],
    budgets: &[Budget],
) -> Vec<fc_core::Plan> {
    use fc_core::{BatchJob, ExecOptions};
    let jobs: Vec<BatchJob<'_>> = strategies
        .iter()
        .flat_map(|&strategy| {
            budgets.iter().map(move |&budget| BatchJob {
                strategy,
                problem,
                budget,
                key: None,
            })
        })
        .collect();
    registry
        .solve_batch(&jobs, &ExecOptions::default())
        .expect("every panel strategy supports its problem")
}

/// The Γ-sweep shared by Figs. 3/4/5: for each Γ, expected duplicity
/// variance vs budget for GreedyNaive / GreedyMinVar / Best on the
/// given synthetic generator. Served through the planner registry like
/// fig02: one discrete MinVar [`fc_core::Problem`] per panel and one
/// batch of strategy × budget jobs over it — jobs on one problem share
/// a single engine cache, so the scoped-EV tables are built once per
/// panel (per Γ), not once per strategy.
pub fn synthetic_uniqueness_sweep(kind: fc_datasets::SyntheticKind, fig_no: u8, cfg: &HarnessCfg) {
    use fc_core::SolverRegistry;
    use fc_datasets::SyntheticKind;
    use std::sync::Arc;
    const STRATEGIES: [(&str, &str); 3] = [
        ("GreedyNaive", "greedy-naive"),
        ("GreedyMinVar", "greedy"),
        ("Best", "best"),
    ];
    let registry = SolverRegistry::with_defaults();
    let gammas: Vec<f64> = match kind {
        SyntheticKind::Lnx => vec![3.0, 3.5, 4.0, 4.5, 5.0, 5.5],
        _ => vec![50.0, 100.0, 150.0, 200.0, 250.0, 300.0],
    };
    let n = if cfg.quick { 20 } else { 40 };
    for (panel_idx, &gamma) in gammas.iter().enumerate() {
        let w = fc_datasets::workloads::synthetic_uniqueness(kind, n, gamma, cfg.seed).unwrap();
        let problem =
            fc_core::Problem::discrete_min_var(w.instance.clone(), Arc::new(w.query.clone()))
                .expect("uniqueness workloads lower onto discrete MinVar");
        let total = w.instance.total_cost();
        let fracs = cfg.budget_fracs();
        let budgets: Vec<Budget> = fracs.iter().map(|&f| Budget::fraction(total, f)).collect();
        let letter = (b'a' + panel_idx as u8) as char;
        let mut fig = Figure::new(
            format!("fig{fig_no:02}{letter}"),
            format!("{} uniqueness, Γ = {gamma}", kind.name()),
            "budget_frac",
            "expected variance after cleaning",
        );
        let plans =
            strategy_budget_batch(&registry, &problem, &STRATEGIES.map(|(_, s)| s), &budgets);
        for ((label, _), plans) in STRATEGIES.iter().zip(plans.chunks(budgets.len())) {
            let mut series = Series::new(*label);
            for (&frac, plan) in fracs.iter().zip(plans) {
                series.push(frac, plan.after);
            }
            fig.series.push(series);
        }
        fig.emit(cfg);
    }
}

/// The "effectiveness in action" simulation shared by Figs. 8/9 (§4.3):
/// fix hidden truths, let each algorithm pick its set per budget, reveal
/// the truth for the chosen objects, and report the posterior mean /
/// standard deviation of the duplicity estimate.
///
/// Selections come from the planner registry (one discrete MinVar
/// [`fc_core::Problem`], one `solve_batch` of strategy × budget jobs
/// sharing a single scoped-engine build) — the same strategies the
/// legacy `*_with_engine` free functions wrapped, so the revealed sets
/// (and therefore the posterior CSVs) are byte-identical.
pub fn in_action_sweep(
    fig_no: u8,
    title: &str,
    w: &fc_datasets::workloads::UniquenessWorkload,
    cfg: &HarnessCfg,
) {
    use fc_core::SolverRegistry;
    use fc_uncertain::seeded::child_rng;
    use std::sync::Arc;
    let total = w.instance.total_cost();
    let mut rng = child_rng(cfg.seed, 0x1AC7 + fig_no as u64);
    let truth: Vec<f64> = (0..w.instance.len())
        .map(|i| w.instance.dist(i).sample(&mut rng))
        .collect();
    let all_revealed: Vec<(usize, f64)> = (0..w.instance.len()).map(|i| (i, truth[i])).collect();
    let true_dup = dup_posterior(&w.instance, &w.query, &all_revealed).0;
    println!("(true duplicity under the hidden values: {true_dup})\n");

    let mut mean_fig = Figure::new(
        format!("fig{fig_no:02}a"),
        format!("{title} — posterior mean of duplicity (true = {true_dup})"),
        "budget_frac",
        "mean",
    );
    let mut sd_fig = Figure::new(
        format!("fig{fig_no:02}b"),
        format!("{title} — posterior sd of duplicity"),
        "budget_frac",
        "standard deviation",
    );
    const STRATEGIES: [(&str, &str); 3] = [
        ("GreedyNaive", "greedy-naive"),
        ("GreedyMinVar", "greedy"),
        ("Best", "best"),
    ];
    let registry = SolverRegistry::with_defaults();
    let problem = fc_core::Problem::discrete_min_var(w.instance.clone(), Arc::new(w.query.clone()))
        .expect("uniqueness workloads lower onto discrete MinVar");
    let fracs = cfg.budget_fracs();
    let budgets: Vec<Budget> = fracs.iter().map(|&f| Budget::fraction(total, f)).collect();
    let plans = strategy_budget_batch(&registry, &problem, &STRATEGIES.map(|(_, s)| s), &budgets);
    for ((label, _), plans) in STRATEGIES.iter().zip(plans.chunks(budgets.len())) {
        let mut mean_s = Series::new(*label);
        let mut sd_s = Series::new(*label);
        for (&frac, plan) in fracs.iter().zip(plans) {
            let revealed: Vec<(usize, f64)> = plan
                .selection
                .objects()
                .iter()
                .map(|&i| (i, truth[i]))
                .collect();
            let (m, s) = dup_posterior(&w.instance, &w.query, &revealed);
            mean_s.push(frac, m);
            sd_s.push(frac, s);
        }
        mean_fig.series.push(mean_s);
        sd_fig.series.push(sd_s);
    }
    mean_fig.emit(cfg);
    sd_fig.emit(cfg);
}

/// Wall-clock helper returning seconds.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_render_and_csv() {
        let mut fig = Figure::new("t1", "demo", "x", "val");
        let mut s = Series::new("alg");
        s.push(0.0, 1.0);
        s.push(0.5, 0.25);
        fig.series.push(s);
        let text = fig.render();
        assert!(text.contains("demo") && text.contains("alg"));
        let dir = std::env::temp_dir().join("fc_bench_test");
        let p = fig.write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(p).unwrap();
        assert!(body.starts_with("x,alg"));
        assert!(body.contains("0.5,0.25"));
    }

    #[test]
    fn dup_posterior_pins_values() {
        use fc_claims::{ClaimSet, Direction, LinearClaim};
        use fc_uncertain::DiscreteDist;
        let inst = Instance::new(
            vec![
                DiscreteDist::uniform_over(&[0.0, 10.0]).unwrap(),
                DiscreteDist::uniform_over(&[0.0, 10.0]).unwrap(),
            ],
            vec![5.0, 5.0],
            vec![1, 1],
        )
        .unwrap();
        let cs = ClaimSet::new(
            LinearClaim::window_sum(0, 1).unwrap(),
            vec![
                LinearClaim::window_sum(0, 1).unwrap(),
                LinearClaim::window_sum(1, 1).unwrap(),
            ],
            vec![1.0, 1.0],
            Direction::HigherIsStronger,
        )
        .unwrap();
        let q = DupQuery::new(cs, 5.0);
        // Unrevealed: each term fires w.p. 1/2 ⇒ mean 1, var 0.5.
        let (m, s) = dup_posterior(&inst, &q, &[]);
        assert!((m - 1.0).abs() < 1e-12);
        assert!((s - 0.5f64.sqrt()).abs() < 1e-12);
        // Reveal object 0 at 10 ⇒ its term certain ⇒ mean 1.5, var 0.25.
        let (m, s) = dup_posterior(&inst, &q, &[(0, 10.0)]);
        assert!((m - 1.5).abs() < 1e-12);
        assert!((s - 0.5).abs() < 1e-12);
    }
}
