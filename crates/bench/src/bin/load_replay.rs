//! `load_replay` — the trace-driven load harness: boots the HTTP/1.1
//! front over three real streams, replays a seeded multi-tenant trace
//! through it (mixed recommend/sweep/clean ops plus a deterministic
//! streamed-sweep tail, per-request deadlines, a mid-flight
//! abandonment mix), and records the run as `BENCH_serve.json` —
//! including a `time_to_first_point` section for the streamed op.
//!
//! The binary **fails (exit 1)** if
//!
//! * trace generation is not a pure function of (spec, seed), or the
//!   `--smoke` trace at the default seed diverges from the checked-in
//!   fixture `crates/load/fixtures/smoke.trace` (byte identity — the
//!   workload the recorded trajectory describes must be pinned), or
//! * the post-drain invariants drift: every submitted request must
//!   resolve (completed + cancelled = submitted), every gauge
//!   (`in_flight`, running/queued per lane) must read zero, every
//!   tenant ledger must read zero, and client-observed outcomes must
//!   not exceed the server's counters, or
//! * a `BENCH_budget.json` is present and the run exceeds its latency
//!   ceilings (deliberately loose — the gate catches order-of-magnitude
//!   regressions, not jitter).
//!
//! The recorded document also carries a `sweep_resume` section: an
//! in-process budget-ladder benchmark of independent per-point solves
//! vs the sweep-delta resume chain (byte-identity checked per point;
//! the run fails on any divergence).
//!
//! `--router` replays through a two-backend replicated front
//! (`replication_factor(2)`) and appends a post-drain `failover`
//! section: a repair pass syncs warm residency, one backend is killed,
//! and the document records how long until every stream answers again
//! through the survivor (gated by the budget's
//! `max_failover_recovery_ms`; the run fails if any stream stays
//! unserved for 10s).
//!
//! Run `--smoke` for the CI-sized trace; `--write-fixture` regenerates
//! the checked-in smoke fixture after a deliberate workload change;
//! `--compare <baseline.json>` prints a per-op p50/p95/p99 delta table
//! against a previously recorded bench document.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_clean::net::api::{BudgetSpec, RecommendRequest};
use fact_clean::net::client;
use fact_clean::net::json::Json;
use fact_clean::net::{PlannerServer, RouterConfig, RouterServer, ServerConfig, ServerHandle};
use fact_clean::prelude::*;
use fc_claims::window_sum_family;
use fc_core::{EngineCache, Result as CoreResult, SolverRegistry};
use fc_datasets::adoptions::adoptions_gaussian;
use fc_datasets::cdc::cdc_firearms_gaussian;
use fc_datasets::synthetic::urx;
use fc_datasets::workloads::LAMBDA;
use fc_load::gen::{generate, Arrival, OpTemplate, TenantProfile, TraceSpec};
use fc_load::replay::{fnv64, replay, ReplayConfig, StreamTarget};
use fc_load::report::{bench_json, budget_violations, invariant_violations, RunFingerprint};
use fc_load::trace::{Op, Trace, TraceEvent};

/// The checked-in smoke trace (regenerate with `--write-fixture`).
const SMOKE_FIXTURE: &str = include_str!("../../../load/fixtures/smoke.trace");
const SMOKE_FIXTURE_PATH: &str = "crates/load/fixtures/smoke.trace";
const DEFAULT_SEED: u64 = 42;

// ---------------------------------------------------------------- args

struct Args {
    smoke: bool,
    seed: u64,
    bench_out: Option<PathBuf>,
    budget: PathBuf,
    write_fixture: bool,
    router: bool,
    compare: Option<PathBuf>,
}

impl Args {
    fn parse() -> Self {
        let mut parsed = Self {
            smoke: false,
            seed: DEFAULT_SEED,
            bench_out: None,
            budget: PathBuf::from("BENCH_budget.json"),
            write_fixture: false,
            router: false,
            compare: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                // `--quick` is the other smoke binaries' spelling.
                "--smoke" | "--quick" => parsed.smoke = true,
                "--write-fixture" => parsed.write_fixture = true,
                "--router" => parsed.router = true,
                "--seed" => {
                    if let Some(v) = args.next() {
                        parsed.seed = v.parse().unwrap_or(parsed.seed);
                    }
                }
                "--bench-out" => {
                    if let Some(v) = args.next() {
                        parsed.bench_out = Some(PathBuf::from(v));
                    }
                }
                "--budget" => {
                    if let Some(v) = args.next() {
                        parsed.budget = PathBuf::from(v);
                    }
                }
                "--compare" => {
                    if let Some(v) = args.next() {
                        parsed.compare = Some(PathBuf::from(v));
                    }
                }
                other => {
                    eprintln!("load_replay: unknown argument {other:?}");
                }
            }
        }
        parsed
    }
}

/// Sleeps before delegating to greedy, so abandoned requests are still
/// mid-solve when the server's disconnect probe fires — without it
/// every solve finishes inside the probe interval and the recorded
/// cancellation rate reads zero.
struct SlowSolver {
    delegate: Arc<dyn Solver>,
    delay: Duration,
}

impl std::fmt::Debug for SlowSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowSolver").finish()
    }
}

impl Solver for SlowSolver {
    fn name(&self) -> &'static str {
        "slow"
    }
    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> CoreResult<Plan> {
        std::thread::sleep(self.delay);
        self.delegate.solve_with_cache(problem, budget, cache)
    }
}

// ------------------------------------------------------------ workload

/// The replayed workload: three tenants with distinct arrival shapes
/// over the shared op vocabulary (every op template must be valid on
/// every stream — stream assignment hashes tenant and event index).
fn trace_spec(smoke: bool) -> TraceSpec {
    TraceSpec {
        duration_ms: if smoke { 1_500 } else { 4_000 },
        tenants: vec![
            TenantProfile {
                tenant: "newsroom".to_string(),
                arrival: Arrival::Poisson { rate_per_sec: 24.0 },
                mix: vec![
                    OpTemplate::new(3, Op::Recommend, "dup", "f0.2"),
                    OpTemplate::new(2, Op::Recommend, "bias", "f0.15"),
                    OpTemplate::new(1, Op::Recommend, "bias@maxpr5", "a3"),
                    OpTemplate::new(2, Op::Recommend, "dup~slow", "a3"),
                ],
            },
            TenantProfile {
                tenant: "api".to_string(),
                arrival: Arrival::Bursty {
                    on_rate_per_sec: 60.0,
                    p_exit_on: 0.02,
                    p_enter_on: 0.01,
                },
                mix: vec![
                    OpTemplate::new(3, Op::Recommend, "frag", "f0.1"),
                    OpTemplate::new(1, Op::Sweep, "dup", "f0.05,f0.1,f0.15"),
                    OpTemplate::new(1, Op::Recommend, "frag~slow", "a3"),
                ],
            },
            TenantProfile {
                tenant: "batch".to_string(),
                arrival: Arrival::Diurnal {
                    trough_per_sec: 4.0,
                    peak_per_sec: 30.0,
                    period_ms: 1_000,
                },
                mix: vec![
                    OpTemplate::new(2, Op::Recommend, "dup", "a4"),
                    OpTemplate::new(1, Op::Clean, "-", "k2"),
                ],
            },
        ],
    }
}

/// A serving session over `instance` with a window-sum claim family
/// (the one family all three measures and `maxpr` solve quickly on).
fn stream_session(instance: &Instance, window: usize) -> CleaningSession {
    let n = instance.len();
    let claims = window_sum_family(n, window, n - window, Direction::LowerIsStronger, LAMBDA)
        .expect("window fits the instance");
    SessionBuilder::new()
        .discrete(instance.clone())
        .claims(claims)
        .parallelism(Parallelism::Sequential)
        .build()
        .expect("data and claims are set")
}

/// Instance → replay target: cleans reveal the distribution means.
fn target(id: &str, instance: &Instance) -> StreamTarget {
    StreamTarget {
        id: id.to_string(),
        revealed: (0..instance.len())
            .map(|i| instance.dist(i).mean())
            .collect(),
    }
}

/// In-process ladder benchmark: one dup/MinVar problem swept over
/// `points` budget points with independent per-point solves vs the
/// sweep-delta resume chain, byte-identity checked per point. Returns
/// the `sweep_resume` section of the bench document, or an error
/// string if any point diverges.
fn sweep_resume_bench(instance: &Instance, smoke: bool) -> Result<Json, String> {
    use fc_core::planner::exec::{self, ExecOptions, SweepMode};

    let session = stream_session(instance, 4);
    let spec = ObjectiveSpec::ascertain(Measure::Dup);
    let problem = session
        .build_problem(&spec)
        .map_err(|e| format!("sweep_resume: lowering failed: {e}"))?;
    let points = if smoke { 8 } else { 12 };
    let total = instance.total_cost();
    let budgets: Vec<Budget> = (1..=points)
        .map(|i| Budget::fraction(total, i as f64 / (2 * points) as f64))
        .collect();
    let reps = if smoke { 1 } else { 3 };
    // Both modes run sequentially on a private ephemeral store, so the
    // timing difference is exactly the greedy-resumption saving — the
    // scoped-table prefix build is paid once by each side.
    let time_mode = |mode: SweepMode| -> Result<(Vec<Plan>, f64), String> {
        let opts = ExecOptions::new(Parallelism::Sequential).with_sweep_mode(mode);
        let mut best_ms = f64::INFINITY;
        let mut plans = None;
        for _ in 0..reps {
            let t = Instant::now();
            let run = exec::sweep(
                session.registry(),
                spec.strategy.key(),
                &problem,
                &budgets,
                &opts,
                None,
            )
            .map_err(|e| format!("sweep_resume: {mode:?} sweep failed: {e}"))?;
            best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1000.0);
            plans = Some(run);
        }
        Ok((plans.expect("reps >= 1"), best_ms))
    };
    let (independent, independent_ms) = time_mode(SweepMode::Independent)?;
    let (resumed, resume_ms) = time_mode(SweepMode::ResumeChain)?;
    for (i, (a, b)) in independent.iter().zip(&resumed).enumerate() {
        if let Some(why) = a.divergence(b) {
            return Err(format!("sweep_resume: point {i} diverges: {why}"));
        }
    }
    let speedup = independent_ms / resume_ms.max(1e-9);
    println!(
        "sweep_resume: {points} points, independent {independent_ms:.1}ms vs \
         resume-chain {resume_ms:.1}ms ({speedup:.2}x), plans byte-identical"
    );
    Ok(Json::obj([
        ("points", Json::Num(points as f64)),
        ("independent_ms", Json::Num(independent_ms)),
        ("resume_ms", Json::Num(resume_ms)),
        ("speedup", Json::Num(speedup)),
    ]))
}

/// Numeric field at `path` inside a bench document.
fn bench_stat(doc: &Json, path: &[&str]) -> Option<f64> {
    let mut node = doc;
    for key in path {
        node = node.get(key)?;
    }
    node.as_f64()
}

/// Prints the before/after per-op latency delta table against a
/// baseline bench document (`--compare <path>`).
fn print_compare(baseline: &Json, bench: &Json, path: &std::path::Path) {
    println!("compare: per-op latency vs {} (ms)", path.display());
    println!("  {:<10} {:>24} {:>24} {:>24}", "op", "p50", "p95", "p99");
    let Some(Json::Obj(ops)) = bench.get("per_op") else {
        return;
    };
    for (op, _) in ops {
        let cell = |q: &str| {
            let before = bench_stat(baseline, &["per_op", op, "latency", q]);
            let now = bench_stat(bench, &["per_op", op, "latency", q]);
            match (before, now) {
                (Some(b), Some(n)) if b > 0.0 => {
                    format!("{b:.1} -> {n:.1} ({:+.0}%)", (n - b) / b * 100.0)
                }
                (_, Some(n)) => format!("-> {n:.1}"),
                _ => "-".to_string(),
            }
        };
        println!(
            "  {op:<10} {:>24} {:>24} {:>24}",
            cell("p50_ms"),
            cell("p95_ms"),
            cell("p99_ms")
        );
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let spec = trace_spec(args.smoke);

    // --- determinism gates ------------------------------------------
    let trace = generate(&spec, args.seed);
    if generate(&spec, args.seed).to_string() != trace.to_string() {
        eprintln!(
            "FAIL generation is not deterministic for seed {}",
            args.seed
        );
        return ExitCode::FAILURE;
    }
    let trace_text = trace.to_string();
    if args.write_fixture {
        let smoke_text = generate(&trace_spec(true), DEFAULT_SEED).to_string();
        std::fs::write(SMOKE_FIXTURE_PATH, &smoke_text).expect("write fixture");
        println!(
            "wrote {SMOKE_FIXTURE_PATH} ({} events, fnv64 {:016x})",
            generate(&trace_spec(true), DEFAULT_SEED).len(),
            fnv64(smoke_text.as_bytes())
        );
        return ExitCode::SUCCESS;
    }
    if args.smoke && args.seed == DEFAULT_SEED && trace_text != SMOKE_FIXTURE {
        eprintln!(
            "FAIL smoke trace diverged from {SMOKE_FIXTURE_PATH} \
             (fnv64 {:016x}, fixture {:016x}); if the workload change is \
             deliberate, regenerate with --write-fixture",
            fnv64(trace_text.as_bytes()),
            fnv64(SMOKE_FIXTURE.as_bytes())
        );
        return ExitCode::FAILURE;
    }
    // Streamed sweeps ride a deterministic tail appended *after* the
    // fixture gate: the committed fixture stays byte-stable while every
    // replay still covers the chunked `?stream=1` path (and so records
    // a `time_to_first_point` section for the budget gate to check).
    // Smoke packs the tail into a 10ms-spaced burst so the CI gate
    // exercises queue-stacked streaming; the full trace ends with a
    // ~2s-deep backlog of abandoned slow solves and closed-loop workers
    // running seconds behind schedule, so its tail starts after a drain
    // gap wide enough (post time_scale) for both to clear and spreads
    // out — otherwise time-to-first-point would measure backlog depth,
    // not streaming.
    let trace = {
        let mut events = trace.events().to_vec();
        let start = events.last().map_or(0, |e| e.timestamp_ms);
        let (count, gap_ms, spacing_ms) = if args.smoke {
            (12, 0, 10)
        } else {
            (24, 12_000, 200)
        };
        for i in 0..count {
            events.push(TraceEvent {
                timestamp_ms: start + gap_ms + spacing_ms * (i + 1),
                tenant: "api".to_string(),
                op: Op::SweepStream,
                spec: if i % 3 == 0 { "bias@maxpr5" } else { "dup" }.to_string(),
                budget: "f0.05,f0.1,f0.15".to_string(),
            });
        }
        Trace::new(events).expect("the tail keeps timestamps non-decreasing")
    };
    let trace_text = trace.to_string();
    println!(
        "trace: {} events over {}ms ({} streamed-sweep tail), fnv64 {:016x}",
        trace.len(),
        spec.duration_ms,
        if args.smoke { 12 } else { 24 },
        fnv64(trace_text.as_bytes())
    );

    // --- server(s) over three real streams ---------------------------
    let cdc = cdc_firearms_gaussian(args.seed)
        .and_then(|g| g.discretize(6))
        .expect("cdc instance");
    let adoptions = adoptions_gaussian(args.seed)
        .and_then(|g| g.discretize(6))
        .expect("adoptions instance");
    let synthetic = urx(if args.smoke { 60 } else { 120 }, args.seed ^ 0xA).expect("urx instance");

    // One backend: its own service + registry over the shared session
    // definitions, so every replica computes byte-identical plans.
    let boot_backend = || -> (PlannerService, ServerHandle) {
        let mut registry = SolverRegistry::with_defaults();
        registry.register_solver(Arc::new(SlowSolver {
            delegate: registry.get("greedy").expect("greedy exists"),
            delay: Duration::from_millis(150),
        }));
        let service = PlannerService::new(
            Arc::new(registry),
            ServiceOptions::new().with_inline_threshold(0),
        );
        // A tight cap on the bursty tenant so the run exercises 429s.
        service.set_quota(
            TenantId::new("api"),
            QuotaPolicy::default().with_max_in_flight(3),
        );
        let server = PlannerServer::new(service.clone())
            .with_config(
                ServerConfig::new()
                    .with_disconnect_poll(Duration::from_millis(25))
                    .with_read_timeout(Duration::from_millis(2_000))
                    // Repair-pass snapshot transfers carry a stream's
                    // dataset plus its warm cache slice in one body.
                    .with_max_body_bytes(8 * 1024 * 1024),
            )
            .with_stream(
                "cdc",
                ClaimStream::open(stream_session(&cdc, 2), service.clone()),
            )
            .with_stream(
                "adoptions",
                ClaimStream::open(stream_session(&adoptions, 2), service.clone()),
            )
            .with_stream(
                "urx",
                ClaimStream::open(stream_session(&synthetic, 4), service.clone()),
            )
            .serve("127.0.0.1:0")
            .expect("bind ephemeral port");
        (service, server)
    };

    let mut services = Vec::new();
    let mut backends = Vec::new();
    let mut router = None;
    let addr;
    if args.router {
        // Two replicas behind the consistent-hash front: the replay
        // drives the router, cleans broadcast, stats aggregate. With
        // R=2 both backends are every stream's replica set, so the
        // post-drain failover phase can kill either one and time how
        // long the front takes to serve the next read warm.
        let (service_a, server_a) = boot_backend();
        let (service_b, server_b) = boot_backend();
        let front = RouterServer::new()
            .with_backend("a", server_a.addr().to_string())
            .with_backend("b", server_b.addr().to_string())
            .with_config(
                RouterConfig::new()
                    .with_disconnect_poll(Duration::from_millis(25))
                    .with_probe_interval(Duration::from_millis(100))
                    .with_read_timeout(Duration::from_millis(2_000))
                    .with_replication_factor(2)
                    // Repairs run on demand (RouterHandle::repair) so
                    // the replay's latency tails stay deterministic.
                    .with_repair_interval(Duration::from_secs(600)),
            )
            .serve("127.0.0.1:0")
            .expect("bind router port");
        addr = front.addr();
        services.extend([service_a, service_b]);
        backends.extend([server_a, server_b]);
        router = Some(front);
        println!("router: fronting 2 backends at {addr}");
    } else {
        let (service, server) = boot_backend();
        addr = server.addr();
        services.push(service);
        backends.push(server);
    }
    let targets = [
        target("cdc", &cdc),
        target("adoptions", &adoptions),
        target("urx", &synthetic),
    ];

    // --- replay ------------------------------------------------------
    let config = ReplayConfig {
        addr,
        client_threads: 4,
        // Smoke runs closed-loop (as fast as the server answers); the
        // full run paces arrivals at half the modeled rate.
        time_scale: if args.smoke { 0.0 } else { 0.5 },
        abandon_permille: 120,
        request_timeout: Duration::from_secs(30),
        seed: args.seed,
    };
    let report = match replay(&config, &trace, &targets) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("FAIL replay: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replay: {} issued ({} ok, {} rejected, {} abandoned, {} transport errors) in {}ms",
        report.issued(),
        report.ok(),
        report.rejected(),
        report.abandoned(),
        report.transport_errors(),
        report.wall_ms
    );

    // --- drain: abandoned requests must resolve via cancellation -----
    // The lane gauges must also settle: cancelling a sweep resolves its
    // aggregate immediately, but the budget point being solved at that
    // moment runs to completion first — its RunningGuard is still held
    // for up to one solve after `cancelled` ticks. A genuine gauge leak
    // never settles and trips the deadline.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let drained = services.iter().all(|service| {
            let stats = service.stats();
            stats.completed + stats.cancelled == stats.submitted
                && stats.in_flight == 0
                && stats.running_interactive == 0
                && stats.running_bulk == 0
        });
        if drained {
            break;
        }
        if Instant::now() >= deadline {
            for (i, service) in services.iter().enumerate() {
                let stats = service.stats();
                eprintln!(
                    "FAIL drain: backend {i}: {} submitted but {} resolved after 60s",
                    stats.submitted,
                    stats.completed + stats.cancelled
                );
            }
            return ExitCode::FAILURE;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // --- scrape, record, validate ------------------------------------
    let stats_body = match client::get(addr, "/v1/stats") {
        Ok((200, body)) => body,
        Ok((status, body)) => {
            eprintln!("FAIL stats scrape: status {status}: {body}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("FAIL stats scrape: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server_stats = Json::parse(&stats_body).expect("stats JSON");

    // --- failover: kill a replica, time recovery through the front ---
    // Router runs measure the tentpole's promise: with R=2 and warm
    // residency synced by a repair pass, losing a backend must be
    // invisible beyond a transient — the survivors serve the next read
    // of *every* stream with no recreate round-trip. Recovery is the
    // time from the kill until all three streams have answered again
    // (so the measurement covers ring positions fronted by the victim,
    // wherever it hashed).
    let mut failover_section = None;
    let mut failover_failed = false;
    if let Some(front) = &router {
        let transfers = front
            .repair()
            .get("transfers")
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len);
        let victim = backends.pop().expect("router mode boots two backends");
        victim.shutdown();
        let killed_at = Instant::now();
        let deadline = killed_at + Duration::from_secs(10);
        let mut attempts = 0u64;
        let mut recovery_ms = None;
        'streams: for stream in ["cdc", "adoptions", "urx"] {
            let probe = RecommendRequest {
                stream: stream.to_string(),
                spec: ObjectiveSpec::ascertain(Measure::Dup),
                budget: BudgetSpec::Fraction(0.2),
            }
            .encode();
            loop {
                attempts += 1;
                match client::post(addr, "/v1/recommend", &probe, &[]) {
                    Ok((200, _)) => {
                        recovery_ms = Some(killed_at.elapsed().as_secs_f64() * 1000.0);
                        break;
                    }
                    _ if Instant::now() >= deadline => {
                        recovery_ms = None;
                        break 'streams;
                    }
                    _ => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        }
        match recovery_ms {
            Some(ms) => {
                println!(
                    "failover: backend b killed, all streams answering after {ms:.1}ms \
                     ({attempts} reads, {transfers} repair transfers beforehand)"
                );
                failover_section = Some(Json::obj([
                    ("killed_backend", Json::Str("b".to_string())),
                    ("recovery_ms", Json::Num(ms)),
                    ("attempts", Json::Num(attempts as f64)),
                    ("repair_transfers", Json::Num(transfers as f64)),
                ]));
            }
            None => {
                eprintln!("FAIL failover: a stream stayed unserved for 10s after the kill");
                failover_failed = true;
            }
        }
    }

    // Front first (it holds pooled connections into the backends).
    if let Some(front) = router.take() {
        front.shutdown();
    }
    for server in backends {
        server.shutdown();
    }

    let fingerprint = RunFingerprint {
        seed: args.seed,
        events: trace.len(),
        trace_fnv64: fnv64(trace_text.as_bytes()),
        client_threads: config.client_threads,
        abandon_permille: config.abandon_permille,
        smoke: args.smoke,
        router: args.router,
    };
    let mut failed = failover_failed;
    let mut bench = bench_json(&fingerprint, &report, &server_stats);
    if let Some(section) = failover_section {
        if let Json::Obj(fields) = &mut bench {
            fields.push(("failover".to_string(), section));
        }
    }
    // In-process ladder benchmark: runs after the servers shut down so
    // the two timed sweeps have the machine to themselves.
    match sweep_resume_bench(&synthetic, args.smoke) {
        Ok(section) => {
            if let Json::Obj(fields) = &mut bench {
                fields.push(("sweep_resume".to_string(), section));
            }
        }
        Err(why) => {
            eprintln!("FAIL {why}");
            failed = true;
        }
    }
    let bench_out = args.bench_out.unwrap_or_else(|| {
        PathBuf::from(if args.router {
            "BENCH_serve_router.json"
        } else {
            "BENCH_serve.json"
        })
    });
    // Read the --compare baseline before writing: pointing both flags
    // at the recorded file ("how does this run compare to the last
    // committed one?") is the primary use.
    let baseline = args
        .compare
        .as_ref()
        .map(|path| (path.clone(), std::fs::read_to_string(path)));
    std::fs::write(&bench_out, format!("{bench}\n")).expect("write bench output");
    println!("wrote {}", bench_out.display());

    for violation in invariant_violations(&report, &server_stats) {
        eprintln!("FAIL invariant {violation}");
        failed = true;
    }
    match std::fs::read_to_string(&args.budget) {
        Ok(text) => {
            let budget = Json::parse(&text).expect("budget JSON");
            for violation in budget_violations(&bench, &budget) {
                eprintln!("FAIL {violation}");
                failed = true;
            }
        }
        Err(_) => {
            eprintln!(
                "note: no {} — skipping the latency-budget gate",
                args.budget.display()
            );
        }
    }
    if let Some((path, read)) = baseline {
        match read {
            Ok(text) => match Json::parse(&text) {
                Ok(baseline) => print_compare(&baseline, &bench, &path),
                Err(e) => eprintln!("note: compare baseline {} is not JSON: {e}", path.display()),
            },
            Err(e) => eprintln!("note: cannot read compare baseline {}: {e}", path.display()),
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        for (op, m) in &report.per_op {
            println!(
                "  {op}: {} issued, p50 {:.1}ms p99 {:.1}ms",
                m.issued(),
                m.latency_us.quantile(0.50) as f64 / 1000.0,
                m.latency_us.quantile(0.99) as f64 / 1000.0
            );
            if m.first_point_us.count() > 0 {
                println!(
                    "  {op}: time-to-first-point p50 {:.1}ms p95 {:.1}ms",
                    m.first_point_us.quantile(0.50) as f64 / 1000.0,
                    m.first_point_us.quantile(0.95) as f64 / 1000.0
                );
            }
        }
        println!("OK: trace pinned; invariants hold; run recorded");
        ExitCode::SUCCESS
    }
}
