//! `par_sweep` — parallel vs. sequential executor comparison (the
//! serving-path counterpart of the figure binaries).
//!
//! Builds a large synthetic uniqueness workload (10k objects by
//! default, 400 with `--quick`), then runs the same work through the
//! façade twice — once with `Parallelism::Sequential`, once with
//! `Parallelism::Auto` — and reports wall-clock plus speedup for
//!
//! 1. `recommend_sweep` over 8 budget fractions (budget points sharded
//!    across workers, scoped-EV tables shared through the store), and
//! 2. `recommend_many` over the three measures at one budget
//!    (independent lowered problems sharded across workers).
//!
//! The binary **fails (exit 1) if any parallel plan diverges from its
//! sequential twin** — plans must be byte-identical by construction —
//! which is what the CI `bench-smoke` job asserts on a small instance.
//! It also demonstrates the fingerprint-keyed engine store: a second
//! session over the same dataset reports zero scoped-table rebuilds.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use fact_clean::prelude::*;
use fc_bench::HarnessCfg;
use fc_claims::window_sum_family;
use fc_core::planner::cache::CacheStore as Store;
use fc_datasets::synthetic::urx;
use fc_datasets::workloads::LAMBDA;

const BUDGET_FRACS: [f64; 8] = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40];

fn session(
    instance: &Instance,
    claims: &ClaimSet,
    parallelism: Parallelism,
    store: Option<Arc<Store>>,
) -> CleaningSession {
    let mut b = SessionBuilder::new()
        .discrete(instance.clone())
        .claims(claims.clone())
        .parallelism(parallelism);
    if let Some(store) = store {
        b = b.cache_store(store);
    }
    b.build().expect("data and claims are set")
}

/// Byte-level plan comparison ([`Plan::divergence`]); returns a
/// description of the first divergence, if any.
fn diverges(seq: &[Plan], par: &[Plan]) -> Option<String> {
    if seq.len() != par.len() {
        return Some(format!("plan count {} vs {}", seq.len(), par.len()));
    }
    seq.iter()
        .zip(par)
        .enumerate()
        .find_map(|(i, (s, p))| s.divergence(p).map(|why| format!("plan {i}: {why}")))
}

fn main() -> ExitCode {
    let cfg = HarnessCfg::from_args();
    let n = if cfg.quick { 400 } else { 10_000 };
    let instance = urx(n, cfg.seed).expect("synthetic instance");
    let claims =
        window_sum_family(n, 4, n - 4, Direction::LowerIsStronger, LAMBDA).expect("claim family");
    let total = instance.total_cost();
    let budgets: Vec<Budget> = BUDGET_FRACS
        .iter()
        .map(|&f| Budget::fraction(total, f))
        .collect();
    let spec = ObjectiveSpec::ascertain(Measure::Dup);

    // Guard against a vacuous gate: the lowered problem must clear the
    // executor's inline-admission threshold, or `Auto` silently takes
    // the caller-thread path and "parallel vs sequential" compares the
    // sequential path against itself.
    let estimate = fc_core::Problem::discrete_min_var(
        instance.clone(),
        Arc::new(fc_claims::DupQuery::new(claims.clone(), 0.0)),
    )
    .expect("lowered dup problem")
    .estimated_engine_evals();
    println!(
        "par_sweep: n = {n}, {} budgets, total cost {total}, seed {}, est. engine evals {estimate}",
        budgets.len(),
        cfg.seed
    );
    if estimate < fc_core::ExecOptions::DEFAULT_INLINE_THRESHOLD {
        eprintln!(
            "FAIL workload: estimated engine evals {estimate} below inline threshold {} — \
             the comparison would never reach the worker pool",
            fc_core::ExecOptions::DEFAULT_INLINE_THRESHOLD
        );
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    let mut check = |what: &str, seq: &[Plan], par: &[Plan]| {
        if let Some(why) = diverges(seq, par) {
            eprintln!("FAIL {what}: parallel plans diverge from sequential: {why}");
            failed = true;
        }
    };

    // --- 1. recommend_sweep: budget points sharded across workers ---
    let seq_session = session(&instance, &claims, Parallelism::Sequential, None);
    // Warm-up: pay one-time costs (allocator growth, page faults, lazy
    // dataset setup) outside the timed sections so the sequential /
    // parallel comparison is apples to apples.
    let batch = [
        ObjectiveSpec::ascertain(Measure::Bias),
        ObjectiveSpec::ascertain(Measure::Dup),
        ObjectiveSpec::ascertain(Measure::Frag),
    ];
    let batch_budget = budgets[budgets.len() / 2];
    seq_session
        .recommend_many(&batch, batch_budget)
        .expect("warm-up batch");
    let t = Instant::now();
    let seq_plans = seq_session
        .recommend_sweep(&spec, &budgets)
        .expect("sequential sweep");
    let seq_time = t.elapsed();

    let par_session = session(&instance, &claims, Parallelism::Auto, None);
    let t = Instant::now();
    let par_plans = par_session
        .recommend_sweep(&spec, &budgets)
        .expect("parallel sweep");
    let par_time = t.elapsed();
    check("recommend_sweep", &seq_plans, &par_plans);
    println!(
        "recommend_sweep   sequential {:>8.3}s   auto {:>8.3}s   speedup {:>5.2}x",
        seq_time.as_secs_f64(),
        par_time.as_secs_f64(),
        seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9),
    );

    // --- 2. recommend_many: independent problems sharded ---
    let t = Instant::now();
    let seq_batch = seq_session
        .recommend_many(&batch, batch_budget)
        .expect("sequential batch");
    let seq_time = t.elapsed();
    let t = Instant::now();
    let par_batch = par_session
        .recommend_many(&batch, batch_budget)
        .expect("parallel batch");
    let par_time = t.elapsed();
    check("recommend_many", &seq_batch, &par_batch);
    println!(
        "recommend_many    sequential {:>8.3}s   auto {:>8.3}s   speedup {:>5.2}x",
        seq_time.as_secs_f64(),
        par_time.as_secs_f64(),
        seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9),
    );

    // --- 3. fingerprint-keyed store: warm sessions rebuild nothing ---
    let store = Arc::new(Store::new(16));
    let first = session(
        &instance,
        &claims,
        Parallelism::Auto,
        Some(Arc::clone(&store)),
    );
    let t = Instant::now();
    let cold_plans = first.recommend_sweep(&spec, &budgets).expect("cold sweep");
    let cold = t.elapsed();
    let builds_after_cold = store.stats().scoped_builds;
    drop(first);
    let second = session(
        &instance,
        &claims,
        Parallelism::Auto,
        Some(Arc::clone(&store)),
    );
    let t = Instant::now();
    let warm_plans = second.recommend_sweep(&spec, &budgets).expect("warm sweep");
    let warm = t.elapsed();
    check("cached sweep", &seq_plans, &cold_plans);
    check("warm sweep", &seq_plans, &warm_plans);
    let stats = store.stats();
    println!(
        "cache store       cold {:>8.3}s   warm {:>8.3}s   scoped builds {} -> {} (hits {})",
        cold.as_secs_f64(),
        warm.as_secs_f64(),
        builds_after_cold,
        stats.scoped_builds,
        stats.hits,
    );
    if stats.scoped_builds != builds_after_cold {
        eprintln!(
            "FAIL cache store: warm session rebuilt scoped tables ({} -> {})",
            builds_after_cold, stats.scoped_builds
        );
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("OK: all parallel plans byte-identical to sequential");
        ExitCode::SUCCESS
    }
}
