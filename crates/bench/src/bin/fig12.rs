//! Fig. 12 — competing objectives (§4.6): when the current values are
//! redrawn from the error model (so Theorem 3.9's centering assumption
//! fails), Optimum-for-MinVar and GreedyMaxPr pursue different goals.
//! Served through the planner: one Gaussian [`Problem`] per goal
//! (marginal covariance semantics, the paper's algebra), registry
//! sweeps across the budget fractions, and cross-scoring through
//! [`Problem::objective_value`].
//!
//! (a) both algorithms scored on the MinVar objective (expected
//!     variance); current values don't matter for it, so one workload
//!     draw suffices;
//! (b) both scored on the MaxPr objective (surprise probability),
//!     averaged over 100 redraws of the current values (10 in --quick).

use fc_bench::{Figure, HarnessCfg, Series};
use fc_core::ev::gaussian::MvnSemantics;
use fc_core::planner::Problem;
use fc_core::{Budget, EngineCache, SolverRegistry};
use fc_datasets::workloads::{competing_objectives, CompetingWorkload};

const TAU: f64 = 25.0;

/// The two Fig. 12 problems for one workload draw.
fn problems(w: &CompetingWorkload) -> (Problem, Problem) {
    (
        Problem::gaussian_min_var(w.instance.clone(), w.weights.clone())
            .unwrap()
            .with_semantics(MvnSemantics::Marginal),
        Problem::gaussian_max_pr(w.instance.clone(), w.weights.clone(), TAU)
            .unwrap()
            .with_semantics(MvnSemantics::Marginal),
    )
}

fn main() {
    let cfg = HarnessCfg::from_args();
    let reps = if cfg.quick { 10 } else { 100 };
    let fracs = cfg.budget_fracs();
    let registry = SolverRegistry::with_defaults();

    // (a) MinVar objective, single draw.
    let w = competing_objectives(cfg.seed).unwrap();
    let total = w.instance.total_cost();
    let budgets: Vec<Budget> = fracs.iter().map(|&f| Budget::fraction(total, f)).collect();
    let (minvar_problem, maxpr_problem) = problems(&w);
    let minvar_plans = registry
        .sweep("optimum-knapsack", &minvar_problem, &budgets)
        .unwrap();
    let maxpr_plans = registry.sweep("greedy", &maxpr_problem, &budgets).unwrap();

    let mut fig_a = Figure::new(
        "fig12a",
        "expected variance (MinVar objective)",
        "budget_frac",
        "expected variance",
    );
    let mut a_minvar = Series::new("MinVar");
    let mut a_maxpr = Series::new("MaxPr");
    let ev_cache = EngineCache::new();
    for ((&frac, mv), mp) in fracs.iter().zip(&minvar_plans).zip(&maxpr_plans) {
        a_minvar.push(frac, mv.after);
        // Score the MaxPr selection under the MinVar objective.
        a_maxpr.push(
            frac,
            minvar_problem
                .objective_value(&ev_cache, mp.selection.objects())
                .unwrap(),
        );
    }
    fig_a.series.extend([a_minvar, a_maxpr]);
    fig_a.emit(&cfg);

    // (b) MaxPr objective, averaged over redraws of the current values.
    let mut fig_b = Figure::new(
        "fig12b",
        format!("probability of countering (MaxPr objective, τ = {TAU}, {reps} redraws)"),
        "budget_frac",
        "probability",
    );
    let mut p_minvar = vec![0.0f64; fracs.len()];
    let mut p_maxpr = vec![0.0f64; fracs.len()];
    for rep in 0..reps {
        let w = competing_objectives(cfg.seed.wrapping_add(rep as u64)).unwrap();
        let budgets: Vec<Budget> = fracs
            .iter()
            .map(|&f| Budget::fraction(w.instance.total_cost(), f))
            .collect();
        let (minvar_problem, maxpr_problem) = problems(&w);
        let minvar_plans = registry
            .sweep("optimum-knapsack", &minvar_problem, &budgets)
            .unwrap();
        let maxpr_plans = registry.sweep("greedy", &maxpr_problem, &budgets).unwrap();
        let pr_cache = EngineCache::new();
        for (i, (mv, mp)) in minvar_plans.iter().zip(&maxpr_plans).enumerate() {
            // Score the MinVar selection under the MaxPr objective.
            p_minvar[i] += maxpr_problem
                .objective_value(&pr_cache, mv.selection.objects())
                .unwrap();
            p_maxpr[i] += mp.after;
        }
    }
    let mut b_minvar = Series::new("MinVar");
    let mut b_maxpr = Series::new("MaxPr");
    for (i, &frac) in fracs.iter().enumerate() {
        b_minvar.push(frac, p_minvar[i] / f64::from(reps));
        b_maxpr.push(frac, p_maxpr[i] / f64::from(reps));
    }
    fig_b.series.extend([b_minvar, b_maxpr]);
    fig_b.emit(&cfg);
}
