//! Fig. 12 — competing objectives (§4.6): when the current values are
//! redrawn from the error model (so Theorem 3.9's centering assumption
//! fails), Optimum-for-MinVar and GreedyMaxPr pursue different goals.
//!
//! (a) both algorithms scored on the MinVar objective (expected
//!     variance); current values don't matter for it, so one workload
//!     draw suffices;
//! (b) both scored on the MaxPr objective (surprise probability),
//!     averaged over 100 redraws of the current values (10 in --quick).

use fc_bench::{Figure, HarnessCfg, Series};
use fc_core::algo::{greedy_max_pr, knapsack_optimum_min_var_gaussian};
use fc_core::ev::ev_gaussian_linear;
use fc_core::ev::gaussian::MvnSemantics;
use fc_core::maxpr::surprise_prob_gaussian;
use fc_core::{Budget, Selection};
use fc_datasets::workloads::competing_objectives;

fn main() {
    let cfg = HarnessCfg::from_args();
    let tau = 25.0;
    let reps = if cfg.quick { 10 } else { 100 };
    let fracs = cfg.budget_fracs();

    // (a) MinVar objective, single draw.
    let w = competing_objectives(cfg.seed).unwrap();
    let total = w.instance.total_cost();
    let ev = |sel: &Selection| {
        ev_gaussian_linear(&w.instance, &w.weights, sel.objects(), MvnSemantics::Marginal)
            .unwrap()
    };
    let mut fig_a = Figure::new(
        "fig12a",
        "expected variance (MinVar objective)",
        "budget_frac",
        "expected variance",
    );
    let mut a_minvar = Series::new("MinVar");
    let mut a_maxpr = Series::new("MaxPr");
    for &frac in &fracs {
        let budget = Budget::fraction(total, frac);
        let sel_minvar = knapsack_optimum_min_var_gaussian(&w.instance, &w.weights, budget);
        let sel_maxpr = greedy_max_pr(&w.instance, &w.weights, budget, tau, MvnSemantics::Marginal);
        a_minvar.push(frac, ev(&sel_minvar));
        a_maxpr.push(frac, ev(&sel_maxpr));
    }
    fig_a.series.extend([a_minvar, a_maxpr]);
    fig_a.emit(&cfg);

    // (b) MaxPr objective, averaged over redraws of the current values.
    let mut fig_b = Figure::new(
        "fig12b",
        format!("probability of countering (MaxPr objective, τ = {tau}, {reps} redraws)"),
        "budget_frac",
        "probability",
    );
    let mut b_minvar = Series::new("MinVar");
    let mut b_maxpr = Series::new("MaxPr");
    for &frac in &fracs {
        let mut p_minvar = 0.0;
        let mut p_maxpr = 0.0;
        for rep in 0..reps {
            let w = competing_objectives(cfg.seed.wrapping_add(rep as u64)).unwrap();
            let budget = Budget::fraction(w.instance.total_cost(), frac);
            let sel_minvar =
                knapsack_optimum_min_var_gaussian(&w.instance, &w.weights, budget);
            let sel_maxpr =
                greedy_max_pr(&w.instance, &w.weights, budget, tau, MvnSemantics::Marginal);
            p_minvar += surprise_prob_gaussian(
                &w.instance,
                &w.weights,
                sel_minvar.objects(),
                tau,
                MvnSemantics::Marginal,
            )
            .unwrap();
            p_maxpr += surprise_prob_gaussian(
                &w.instance,
                &w.weights,
                sel_maxpr.objects(),
                tau,
                MvnSemantics::Marginal,
            )
            .unwrap();
        }
        b_minvar.push(frac, p_minvar / reps as f64);
        b_maxpr.push(frac, p_maxpr / reps as f64);
    }
    fig_b.series.extend([b_minvar, b_maxpr]);
    fig_b.emit(&cfg);
}
