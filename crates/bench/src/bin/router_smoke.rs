//! `router_smoke` — the scale-out CI gate: boots two `PlannerServer`
//! backends behind the consistent-hash `RouterServer` front and proves
//! the topology changes nothing the paper's workload can observe.
//!
//! The binary **fails (exit 1)** if
//!
//! * any plan served through the router diverges byte-wise (on the
//!   wire encoding of exactly the fields [`Plan::divergence`] covers)
//!   from the same request against a single box, or
//! * a backend restarted from its `CacheStore` snapshot does not serve
//!   its first repeat request fully warm (`store_misses == 0` in the
//!   response diagnostics, plan bytes unchanged), or
//! * draining a backend on the router fails to rehash new work away
//!   from it (its `submitted` counter must not move) or perturbs plan
//!   bytes, or
//! * killing one of the two backends mid-run fails **any** idempotent
//!   request — every recommend/sweep must complete on the surviving
//!   replica with plan bytes identical to single-box, or
//! * a clean broadcast through the router leaves the fleet diverged
//!   from a single box that applied the same clean, or
//! * the router's aggregated `/v1/stats` disagrees with the sum of the
//!   per-backend services, or `/v1/topology` misreports the fleet.
//!
//! Run `--quick` for the CI-sized instances.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use fact_clean::net::api::{BudgetSpec, CleanRequest, RecommendRequest, SweepRequest};
use fact_clean::net::client::ApiClient;
use fact_clean::net::json::Json;
use fact_clean::net::{
    client, PlannerServer, RouterConfig, RouterServer, ServerConfig, ServerHandle,
};
use fact_clean::prelude::*;
use fc_claims::window_sum_family;
use fc_core::SolverRegistry;
use fc_datasets::synthetic::urx;
use fc_datasets::workloads::LAMBDA;

// ---------------------------------------------------------------- fleet

/// The shared stream definitions: every backend (and the single-box
/// reference) registers identical sessions, so equal requests must
/// produce byte-identical plans anywhere in the fleet.
fn instances(quick: bool) -> Vec<(String, Instance)> {
    let n = if quick { 36 } else { 72 };
    (0..6)
        .map(|i| {
            let id = format!("s{i}");
            let instance = urx(n, 0xC0FFEE ^ i).expect("synthetic instance");
            (id, instance)
        })
        .collect()
}

fn session(instance: &Instance) -> CleaningSession {
    let n = instance.len();
    let claims = window_sum_family(n, 4, n - 4, Direction::LowerIsStronger, LAMBDA)
        .expect("window fits the instance");
    SessionBuilder::new()
        .discrete(instance.clone())
        .claims(claims)
        .parallelism(Parallelism::Sequential)
        .build()
        .expect("data and claims are set")
}

/// Boots one backend over the shared streams. A short read timeout
/// keeps graceful shutdown snappy (idle keep-alive connections from
/// router pools are reaped fast) and exercises the client's
/// stale-keep-alive retry.
fn boot(
    streams: &[(String, Instance)],
    snapshot: Option<PathBuf>,
) -> (PlannerService, ServerHandle) {
    let service = PlannerService::new(
        Arc::new(SolverRegistry::with_defaults()),
        ServiceOptions::new(),
    );
    let mut config = ServerConfig::new().with_read_timeout(Duration::from_millis(400));
    if let Some(path) = snapshot {
        config = config.with_snapshot_path(path);
    }
    let mut server = PlannerServer::new(service.clone()).with_config(config);
    for (id, instance) in streams {
        server = server.with_stream(
            id.clone(),
            ClaimStream::open(session(instance), service.clone()),
        );
    }
    let handle = server.serve("127.0.0.1:0").expect("bind ephemeral port");
    (service, handle)
}

// ------------------------------------------------------------- workload

fn recommend_dup(id: &str) -> RecommendRequest {
    RecommendRequest {
        stream: id.to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Fraction(0.25),
    }
}

/// The per-stream mixed workload: (label, identity bytes) per plan.
fn stream_requests(client: &ApiClient, id: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let plan = client
        .recommend(&recommend_dup(id), None)
        .map_err(|e| format!("recommend dup on {id}: {e}"))?;
    out.push((format!("{id}/dup"), plan.identity_json().to_string()));
    let bias = RecommendRequest {
        stream: id.to_string(),
        spec: ObjectiveSpec::find_counter(5.0),
        budget: BudgetSpec::Absolute(3),
    };
    let plan = client
        .recommend(&bias, None)
        .map_err(|e| format!("recommend maxpr on {id}: {e}"))?;
    out.push((format!("{id}/maxpr"), plan.identity_json().to_string()));
    let sweep = SweepRequest {
        stream: id.to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Frag),
        budgets: vec![BudgetSpec::Absolute(2), BudgetSpec::Absolute(4)],
    };
    let plans = client
        .sweep(&sweep, None)
        .map_err(|e| format!("sweep on {id}: {e}"))?;
    for (i, plan) in plans.iter().enumerate() {
        out.push((format!("{id}/frag/{i}"), plan.identity_json().to_string()));
    }
    Ok(out)
}

fn run_workload(client: &ApiClient, ids: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for id in ids {
        out.extend(stream_requests(client, id)?);
    }
    Ok(out)
}

fn diff(label: &str, got: &[(String, String)], want: &[(String, String)]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "{label}: {} plans, expected {}",
            got.len(),
            want.len()
        ));
    }
    for ((key, bytes), (want_key, want_bytes)) in got.iter().zip(want) {
        if key != want_key || bytes != want_bytes {
            return Err(format!(
                "{label}: plan {key} diverged from single-box {want_key}:\n  got  {bytes}\n  want {want_bytes}"
            ));
        }
    }
    Ok(())
}

// ----------------------------------------------------------------- main

fn run(quick: bool) -> Result<(), String> {
    let streams = instances(quick);
    let ids: Vec<String> = streams.iter().map(|(id, _)| id.clone()).collect();

    // --- phase 1: single-box baseline -------------------------------
    let (_box_service, box_server) = boot(&streams, None);
    let box_client =
        ApiClient::connect(box_server.addr()).map_err(|e| format!("connect single box: {e}"))?;
    let baseline = run_workload(&box_client, &ids)?;
    println!("baseline: {} plans on a single box", baseline.len());

    // --- phase 2: snapshot → warm restart (before any cleans) -------
    let snapdir = std::env::temp_dir().join(format!("fc-router-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&snapdir).map_err(|e| format!("mkdir {}: {e}", snapdir.display()))?;
    let snapshot = snapdir.join("backend.fcsnap");
    {
        let (_service, server) = boot(&streams, Some(snapshot.clone()));
        let warmup =
            ApiClient::connect(server.addr()).map_err(|e| format!("connect snapshot box: {e}"))?;
        let first = run_workload(&warmup, &ids)?;
        diff("snapshot warm-up", &first, &baseline)?;
        // Graceful shutdown persists the settled store.
        server.shutdown();
    }
    let (_service, warm_server) = boot(&streams, Some(snapshot.clone()));
    let (status, health) = client::get(warm_server.addr(), "/v1/health")
        .map_err(|e| format!("health on warm restart: {e}"))?;
    let restored = Json::parse(&health)
        .ok()
        .and_then(|j| j.get("restored_entries").and_then(Json::as_u64))
        .filter(|_| status == 200)
        .ok_or_else(|| format!("warm restart health unreadable: {status} {health}"))?;
    if restored == 0 {
        return Err("warm restart reports zero restored entries".to_string());
    }
    let warm_client =
        ApiClient::connect(warm_server.addr()).map_err(|e| format!("connect warm restart: {e}"))?;
    let plan = warm_client
        .recommend(&recommend_dup(&ids[0]), None)
        .map_err(|e| format!("first warm request: {e}"))?;
    if plan.diagnostics.store_misses != 0 {
        return Err(format!(
            "first request after warm restart paid {} store misses",
            plan.diagnostics.store_misses
        ));
    }
    if plan.identity_json().to_string() != baseline[0].1 {
        return Err("warm-restart plan diverged from single-box bytes".to_string());
    }
    warm_server.shutdown();
    let _ = std::fs::remove_dir_all(&snapdir);
    println!("snapshot: restart restored {restored} entries, first request fully warm");

    // --- phase 3: router byte-identity, aggregation, drain ----------
    let (service_a, server_a) = boot(&streams, None);
    let (service_b, server_b) = boot(&streams, None);
    let router = RouterServer::new()
        .with_backend("a", server_a.addr().to_string())
        .with_backend("b", server_b.addr().to_string())
        .with_config(RouterConfig::new().with_probe_interval(Duration::from_millis(50)))
        .serve("127.0.0.1:0")
        .map_err(|e| format!("bind router: {e}"))?;
    let routed_client =
        ApiClient::connect(router.addr()).map_err(|e| format!("connect router: {e}"))?;
    let routed = run_workload(&routed_client, &ids)?;
    diff("router", &routed, &baseline)?;
    println!(
        "router: {} plans byte-identical across 2 backends (split {}/{})",
        routed.len(),
        service_a.stats().submitted,
        service_b.stats().submitted
    );

    let aggregated = routed_client
        .stats()
        .map_err(|e| format!("aggregated stats: {e}"))?;
    let sum = service_a.stats().submitted + service_b.stats().submitted;
    if aggregated.service.submitted != sum {
        return Err(format!(
            "aggregated stats report {} submitted, backends sum to {sum}",
            aggregated.service.submitted
        ));
    }
    let (status, topo) =
        client::get(router.addr(), "/v1/topology").map_err(|e| format!("topology: {e}"))?;
    let backends_listed = Json::parse(&topo)
        .ok()
        .and_then(|j| {
            j.get("backends")
                .and_then(|b| b.as_array().map(<[Json]>::len))
        })
        .filter(|_| status == 200)
        .ok_or_else(|| format!("topology unreadable: {status} {topo}"))?;
    if backends_listed != 2 {
        return Err(format!(
            "topology lists {backends_listed} backends, expected 2"
        ));
    }

    // Drain backend a: new work must rehash to b, bytes unchanged.
    let submitted_before_drain = service_a.stats().submitted;
    let (status, _) = client::post(router.addr(), "/v1/admin/backends/a/drain", "", &[])
        .map_err(|e| format!("drain admin: {e}"))?;
    if status != 200 {
        return Err(format!("drain admin returned {status}"));
    }
    let drained = run_workload(&routed_client, &ids)?;
    diff("drained fleet", &drained, &baseline)?;
    if service_a.stats().submitted != submitted_before_drain {
        return Err("drained backend still received new work".to_string());
    }
    let (status, _) = client::post(router.addr(), "/v1/admin/backends/a/undrain", "", &[])
        .map_err(|e| format!("undrain admin: {e}"))?;
    if status != 200 {
        return Err(format!("undrain admin returned {status}"));
    }
    println!("drain: rotated all new work off backend a and back");

    // --- phase 4: kill backend b mid-run ----------------------------
    let mut server_b = Some(server_b);
    let mut survived = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        if i == ids.len() / 2 {
            // "Power failure" on b: stop serving. In-pool router
            // connections go stale; the next request over them must
            // fail over to a with zero client-visible errors.
            server_b.take().expect("b still running").shutdown();
        }
        survived.extend(stream_requests(&routed_client, id)?);
    }
    diff("one-backend fleet", &survived, &baseline)?;
    println!(
        "failover: backend b killed mid-run, {} idempotent requests all served",
        survived.len()
    );

    // --- phase 5: broadcast clean, post-clean identity --------------
    let target = &streams[0];
    let clean = CleanRequest {
        objects: vec![0, 1],
        revealed: vec![target.1.dist(0).mean(), target.1.dist(1).mean()],
    };
    routed_client
        .clean(&ids[0], &clean, None)
        .map_err(|e| format!("clean through router: {e}"))?;
    box_client
        .clean(&ids[0], &clean, None)
        .map_err(|e| format!("clean on single box: {e}"))?;
    let routed_plan = routed_client
        .recommend(&recommend_dup(&ids[0]), None)
        .map_err(|e| format!("post-clean recommend through router: {e}"))?;
    let box_plan = box_client
        .recommend(&recommend_dup(&ids[0]), None)
        .map_err(|e| format!("post-clean recommend on single box: {e}"))?;
    if routed_plan.identity_json().to_string() != box_plan.identity_json().to_string() {
        return Err("post-clean plans diverged between fleet and single box".to_string());
    }
    println!("clean: broadcast applied, post-clean plans byte-identical");

    router.shutdown();
    server_a.shutdown();
    box_server.shutdown();
    Ok(())
}

fn main() -> ExitCode {
    let quick = std::env::args()
        .skip(1)
        .any(|a| a == "--quick" || a == "--smoke");
    match run(quick) {
        Ok(()) => {
            println!("OK: topology is invisible to the workload");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("FAIL {e}");
            ExitCode::FAILURE
        }
    }
}
