//! `router_smoke` — the scale-out CI gate: boots two `PlannerServer`
//! backends behind the consistent-hash `RouterServer` front and proves
//! the topology changes nothing the paper's workload can observe.
//!
//! The binary **fails (exit 1)** if
//!
//! * any plan served through the router diverges byte-wise (on the
//!   wire encoding of exactly the fields [`Plan::divergence`] covers)
//!   from the same request against a single box, or
//! * a backend restarted from its `CacheStore` snapshot does not serve
//!   its first repeat request fully warm (`store_misses == 0` in the
//!   response diagnostics, plan bytes unchanged), or
//! * draining a backend on the router fails to rehash new work away
//!   from it (its `submitted` counter must not move) or perturbs plan
//!   bytes, or
//! * killing one of the two backends mid-run fails **any** idempotent
//!   request — every recommend/sweep must complete on the surviving
//!   replica with plan bytes identical to single-box, or
//! * a clean broadcast through the router leaves the fleet diverged
//!   from a single box that applied the same clean, or
//! * the router's aggregated `/v1/stats` disagrees with the sum of the
//!   per-backend services, or `/v1/topology` misreports the fleet, or
//! * a streamed sweep relayed through the router (`/v1/sweep?stream=1`)
//!   is not byte-identical to the buffered single-box response
//!   (cold-for-cold: fresh servers, each body on its own stream), or
//! * the wire-native stream lifecycle breaks under failover: a stream
//!   created over `POST /v1/streams` must land on exactly one replica,
//!   solve there, answer 404 once its host dies, and recreate on the
//!   next replica with plan bytes unchanged, or
//! * the replication gate fails: with `replication_factor(2)` a
//!   created stream must land on both replica-set members, the repair
//!   pass must warm the secondary via snapshot transfer (and converge
//!   — a second pass moves nothing), and killing the primary mid-run
//!   must leave every subsequent read served by the secondary with
//!   identical plan bytes, `store_misses == 0`, and **zero** recreate
//!   round-trips, after which a repair restores two-replica residency
//!   on the survivors.
//!
//! Run `--quick` for the CI-sized instances.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_clean::net::api::{
    BudgetSpec, CleanRequest, CreateStreamRequest, RecommendRequest, SweepRequest,
};
use fact_clean::net::client::{ApiClient, ClientError};
use fact_clean::net::json::Json;
use fact_clean::net::{
    client, PlannerServer, RouterConfig, RouterHandle, RouterServer, ServerConfig, ServerHandle,
};
use fact_clean::prelude::*;
use fc_claims::window_sum_family;
use fc_core::SolverRegistry;
use fc_datasets::synthetic::urx;
use fc_datasets::workloads::LAMBDA;

// ---------------------------------------------------------------- fleet

/// The shared stream definitions: every backend (and the single-box
/// reference) registers identical sessions, so equal requests must
/// produce byte-identical plans anywhere in the fleet.
fn instances(quick: bool) -> Vec<(String, Instance)> {
    let n = if quick { 36 } else { 72 };
    (0..6)
        .map(|i| {
            let id = format!("s{i}");
            let instance = urx(n, 0xC0FFEE ^ i).expect("synthetic instance");
            (id, instance)
        })
        .collect()
}

fn session(instance: &Instance) -> CleaningSession {
    let n = instance.len();
    let claims = window_sum_family(n, 4, n - 4, Direction::LowerIsStronger, LAMBDA)
        .expect("window fits the instance");
    SessionBuilder::new()
        .discrete(instance.clone())
        .claims(claims)
        .parallelism(Parallelism::Sequential)
        .build()
        .expect("data and claims are set")
}

/// Boots one backend over the shared streams. A short read timeout
/// keeps graceful shutdown snappy (idle keep-alive connections from
/// router pools are reaped fast) and exercises the client's
/// stale-keep-alive retry.
fn boot(
    streams: &[(String, Instance)],
    snapshot: Option<PathBuf>,
) -> (PlannerService, ServerHandle) {
    let service = PlannerService::new(
        Arc::new(SolverRegistry::with_defaults()),
        ServiceOptions::new(),
    );
    // Snapshot-transfer bodies carry a stream's dataset plus its warm
    // cache slice — size the body cap for them, not just for requests.
    let mut config = ServerConfig::new()
        .with_read_timeout(Duration::from_millis(400))
        .with_max_body_bytes(8 * 1024 * 1024);
    if let Some(path) = snapshot {
        config = config.with_snapshot_path(path);
    }
    let mut server = PlannerServer::new(service.clone()).with_config(config);
    for (id, instance) in streams {
        server = server.with_stream(
            id.clone(),
            ClaimStream::open(session(instance), service.clone()),
        );
    }
    let handle = server.serve("127.0.0.1:0").expect("bind ephemeral port");
    (service, handle)
}

// ------------------------------------------------------------- workload

fn recommend_dup(id: &str) -> RecommendRequest {
    RecommendRequest {
        stream: id.to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup),
        budget: BudgetSpec::Fraction(0.25),
    }
}

/// The per-stream mixed workload: (label, identity bytes) per plan.
fn stream_requests(client: &ApiClient, id: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let plan = client
        .recommend(&recommend_dup(id), None)
        .map_err(|e| format!("recommend dup on {id}: {e}"))?;
    out.push((format!("{id}/dup"), plan.identity_json().to_string()));
    let bias = RecommendRequest {
        stream: id.to_string(),
        spec: ObjectiveSpec::find_counter(5.0),
        budget: BudgetSpec::Absolute(3),
    };
    let plan = client
        .recommend(&bias, None)
        .map_err(|e| format!("recommend maxpr on {id}: {e}"))?;
    out.push((format!("{id}/maxpr"), plan.identity_json().to_string()));
    let sweep = SweepRequest {
        stream: id.to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Frag),
        budgets: vec![BudgetSpec::Absolute(2), BudgetSpec::Absolute(4)],
    };
    let plans = client
        .sweep(&sweep, None)
        .map_err(|e| format!("sweep on {id}: {e}"))?;
    for (i, plan) in plans.iter().enumerate() {
        out.push((format!("{id}/frag/{i}"), plan.identity_json().to_string()));
    }
    Ok(out)
}

fn run_workload(client: &ApiClient, ids: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for id in ids {
        out.extend(stream_requests(client, id)?);
    }
    Ok(out)
}

/// Polls the router's `/v1/topology` until `name` reports unhealthy.
fn wait_unhealthy(router: &RouterHandle, name: &str) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = client::get(router.addr(), "/v1/topology")
            .map_err(|e| format!("topology while waiting on {name}: {e}"))?;
        let down = Json::parse(&body)
            .ok()
            .and_then(|json| {
                json.get("backends")
                    .and_then(Json::as_array)
                    .and_then(|backends| {
                        backends
                            .iter()
                            .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
                    })
                    .and_then(|b| b.get("healthy").and_then(Json::as_bool))
            })
            .is_some_and(|healthy| !healthy);
        if status == 200 && down {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(format!("backend {name} never went unhealthy"));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn diff(label: &str, got: &[(String, String)], want: &[(String, String)]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "{label}: {} plans, expected {}",
            got.len(),
            want.len()
        ));
    }
    for ((key, bytes), (want_key, want_bytes)) in got.iter().zip(want) {
        if key != want_key || bytes != want_bytes {
            return Err(format!(
                "{label}: plan {key} diverged from single-box {want_key}:\n  got  {bytes}\n  want {want_bytes}"
            ));
        }
    }
    Ok(())
}

// ----------------------------------------------------------------- main

fn run(quick: bool) -> Result<(), String> {
    let streams = instances(quick);
    let ids: Vec<String> = streams.iter().map(|(id, _)| id.clone()).collect();

    // --- phase 1: single-box baseline -------------------------------
    let (_box_service, box_server) = boot(&streams, None);
    let box_client =
        ApiClient::connect(box_server.addr()).map_err(|e| format!("connect single box: {e}"))?;
    let baseline = run_workload(&box_client, &ids)?;
    println!("baseline: {} plans on a single box", baseline.len());

    // --- phase 2: snapshot → warm restart (before any cleans) -------
    let snapdir = std::env::temp_dir().join(format!("fc-router-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&snapdir).map_err(|e| format!("mkdir {}: {e}", snapdir.display()))?;
    let snapshot = snapdir.join("backend.fcsnap");
    {
        let (_service, server) = boot(&streams, Some(snapshot.clone()));
        let warmup =
            ApiClient::connect(server.addr()).map_err(|e| format!("connect snapshot box: {e}"))?;
        let first = run_workload(&warmup, &ids)?;
        diff("snapshot warm-up", &first, &baseline)?;
        // Graceful shutdown persists the settled store.
        server.shutdown();
    }
    let (_service, warm_server) = boot(&streams, Some(snapshot.clone()));
    let (status, health) = client::get(warm_server.addr(), "/v1/health")
        .map_err(|e| format!("health on warm restart: {e}"))?;
    let restored = Json::parse(&health)
        .ok()
        .and_then(|j| j.get("restored_entries").and_then(Json::as_u64))
        .filter(|_| status == 200)
        .ok_or_else(|| format!("warm restart health unreadable: {status} {health}"))?;
    if restored == 0 {
        return Err("warm restart reports zero restored entries".to_string());
    }
    let warm_client =
        ApiClient::connect(warm_server.addr()).map_err(|e| format!("connect warm restart: {e}"))?;
    let plan = warm_client
        .recommend(&recommend_dup(&ids[0]), None)
        .map_err(|e| format!("first warm request: {e}"))?;
    if plan.diagnostics.store_misses != 0 {
        return Err(format!(
            "first request after warm restart paid {} store misses",
            plan.diagnostics.store_misses
        ));
    }
    if plan.identity_json().to_string() != baseline[0].1 {
        return Err("warm-restart plan diverged from single-box bytes".to_string());
    }
    warm_server.shutdown();
    let _ = std::fs::remove_dir_all(&snapdir);
    println!("snapshot: restart restored {restored} entries, first request fully warm");

    // --- phase 3: router byte-identity, aggregation, drain ----------
    let (service_a, server_a) = boot(&streams, None);
    let (service_b, server_b) = boot(&streams, None);
    let router = RouterServer::new()
        .with_backend("a", server_a.addr().to_string())
        .with_backend("b", server_b.addr().to_string())
        .with_config(RouterConfig::new().with_probe_interval(Duration::from_millis(50)))
        .serve("127.0.0.1:0")
        .map_err(|e| format!("bind router: {e}"))?;
    let routed_client =
        ApiClient::connect(router.addr()).map_err(|e| format!("connect router: {e}"))?;
    let routed = run_workload(&routed_client, &ids)?;
    diff("router", &routed, &baseline)?;
    println!(
        "router: {} plans byte-identical across 2 backends (split {}/{})",
        routed.len(),
        service_a.stats().submitted,
        service_b.stats().submitted
    );

    let aggregated = routed_client
        .stats()
        .map_err(|e| format!("aggregated stats: {e}"))?;
    let sum = service_a.stats().submitted + service_b.stats().submitted;
    if aggregated.service.submitted != sum {
        return Err(format!(
            "aggregated stats report {} submitted, backends sum to {sum}",
            aggregated.service.submitted
        ));
    }
    let (status, topo) =
        client::get(router.addr(), "/v1/topology").map_err(|e| format!("topology: {e}"))?;
    let backends_listed = Json::parse(&topo)
        .ok()
        .and_then(|j| {
            j.get("backends")
                .and_then(|b| b.as_array().map(<[Json]>::len))
        })
        .filter(|_| status == 200)
        .ok_or_else(|| format!("topology unreadable: {status} {topo}"))?;
    if backends_listed != 2 {
        return Err(format!(
            "topology lists {backends_listed} backends, expected 2"
        ));
    }

    // Drain backend a: new work must rehash to b, bytes unchanged.
    let submitted_before_drain = service_a.stats().submitted;
    let (status, _) = client::post(router.addr(), "/v1/admin/backends/a/drain", "", &[])
        .map_err(|e| format!("drain admin: {e}"))?;
    if status != 200 {
        return Err(format!("drain admin returned {status}"));
    }
    let drained = run_workload(&routed_client, &ids)?;
    diff("drained fleet", &drained, &baseline)?;
    if service_a.stats().submitted != submitted_before_drain {
        return Err("drained backend still received new work".to_string());
    }
    let (status, _) = client::post(router.addr(), "/v1/admin/backends/a/undrain", "", &[])
        .map_err(|e| format!("undrain admin: {e}"))?;
    if status != 200 {
        return Err(format!("undrain admin returned {status}"));
    }
    println!("drain: rotated all new work off backend a and back");

    // --- phase 4: kill backend b mid-run ----------------------------
    let mut server_b = Some(server_b);
    let mut survived = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        if i == ids.len() / 2 {
            // "Power failure" on b: stop serving. In-pool router
            // connections go stale; the next request over them must
            // fail over to a with zero client-visible errors.
            server_b.take().expect("b still running").shutdown();
        }
        survived.extend(stream_requests(&routed_client, id)?);
    }
    diff("one-backend fleet", &survived, &baseline)?;
    println!(
        "failover: backend b killed mid-run, {} idempotent requests all served",
        survived.len()
    );

    // --- phase 5: broadcast clean, post-clean identity --------------
    let target = &streams[0];
    let clean = CleanRequest {
        objects: vec![0, 1],
        revealed: vec![target.1.dist(0).mean(), target.1.dist(1).mean()],
    };
    routed_client
        .clean(&ids[0], &clean, None)
        .map_err(|e| format!("clean through router: {e}"))?;
    box_client
        .clean(&ids[0], &clean, None)
        .map_err(|e| format!("clean on single box: {e}"))?;
    let routed_plan = routed_client
        .recommend(&recommend_dup(&ids[0]), None)
        .map_err(|e| format!("post-clean recommend through router: {e}"))?;
    let box_plan = box_client
        .recommend(&recommend_dup(&ids[0]), None)
        .map_err(|e| format!("post-clean recommend on single box: {e}"))?;
    if routed_plan.identity_json().to_string() != box_plan.identity_json().to_string() {
        return Err("post-clean plans diverged between fleet and single box".to_string());
    }
    println!("clean: broadcast applied, post-clean plans byte-identical");

    router.shutdown();
    server_a.shutdown();
    box_server.shutdown();

    // --- phase 6: streamed sweeps relay byte-identically ------------
    // Cold-for-cold: plan diagnostics count store traffic, so the
    // streamed and buffered bodies only match when each request is the
    // first its server has seen. A fresh reference box and a fresh
    // fleet, with each body targeting its own stream, keep every
    // request cold on both sides.
    let (_ref_service, reference) = boot(&streams, None);
    let (_service_c, server_c) = boot(&streams, None);
    let (_service_d, server_d) = boot(&streams, None);
    let stream_router = RouterServer::new()
        .with_backend("c", server_c.addr().to_string())
        .with_backend("d", server_d.addr().to_string())
        .with_config(RouterConfig::new().with_probe_interval(Duration::from_millis(50)))
        .serve("127.0.0.1:0")
        .map_err(|e| format!("bind streaming router: {e}"))?;
    for body in [
        r#"{"stream":"s0","measure":"dup","budgets":[{"fraction":0.1},{"fraction":0.2},{"fraction":0.3}]}"#,
        r#"{"stream":"s1","measure":"bias","goal":{"maxpr":5},"budgets":[2,4]}"#,
    ] {
        let (buffered_status, buffered) = client::post(reference.addr(), "/v1/sweep", body, &[])
            .map_err(|e| format!("buffered sweep on the reference box: {e}"))?;
        let (streamed_status, streamed) =
            client::post(stream_router.addr(), "/v1/sweep?stream=1", body, &[])
                .map_err(|e| format!("streamed sweep through the router: {e}"))?;
        if buffered_status != 200 || streamed_status != 200 || buffered != streamed {
            return Err(format!(
                "streamed sweep through the router diverged from single-box buffered \
                 ({buffered_status}/{streamed_status}) for {body}"
            ));
        }
    }
    reference.shutdown();
    println!("streaming: chunked sweeps through the router byte-identical to single-box buffered");

    // --- phase 7: wire-native lifecycle under failover --------------
    let lifecycle_client = ApiClient::connect(stream_router.addr())
        .map_err(|e| format!("connect streaming router: {e}"))?;
    let base = session(&streams[0].1);
    let create = CreateStreamRequest {
        id: "wire".to_string(),
        tenant: None,
        theta: None,
        discretize_support: None,
        data: base.data().clone(),
        claims: base.claims().clone(),
    };
    lifecycle_client
        .create_stream(&create)
        .map_err(|e| format!("create stream over the wire: {e}"))?;
    let on_c = client::get(server_c.addr(), "/v1/streams")
        .map_err(|e| format!("list backend c: {e}"))?
        .1
        .contains("wire");
    let on_d = client::get(server_d.addr(), "/v1/streams")
        .map_err(|e| format!("list backend d: {e}"))?
        .1
        .contains("wire");
    if !(on_c ^ on_d) {
        return Err("a wire-created stream must live on exactly one replica".to_string());
    }
    let wire_request = recommend_dup("wire");
    let before = lifecycle_client
        .recommend(&wire_request, None)
        .map_err(|e| format!("solve on the wire-created stream: {e}"))?
        .identity_json()
        .to_string();

    // Kill the host: its stream dies with it, the ring fails the solve
    // over to the survivor, and the survivor answers the canonical 404
    // until the checker recreates the stream there.
    let (host, host_name, survivor) = if on_c {
        (server_c, "c", server_d)
    } else {
        (server_d, "d", server_c)
    };
    host.shutdown();
    wait_unhealthy(&stream_router, host_name)?;
    match lifecycle_client.recommend(&wire_request, None) {
        Err(ClientError::Api(e)) if e.status == 404 => {}
        Ok(_) => return Err("solve succeeded although the stream died with its host".to_string()),
        Err(e) => return Err(format!("expected a 404 after the host died, got {e}")),
    }
    lifecycle_client
        .create_stream(&create)
        .map_err(|e| format!("recreate after failover: {e}"))?;
    let (_, listing) = client::get(survivor.addr(), "/v1/streams")
        .map_err(|e| format!("list the survivor: {e}"))?;
    if !listing.contains("wire") {
        return Err(format!(
            "the survivor does not host the recreated stream: {listing}"
        ));
    }
    let after = lifecycle_client
        .recommend(&wire_request, None)
        .map_err(|e| format!("solve after the recreate: {e}"))?
        .identity_json()
        .to_string();
    if after != before {
        return Err("plans diverged across the lifecycle failover".to_string());
    }
    println!("lifecycle: stream created over the wire, host killed, recreated on the next replica");

    stream_router.shutdown();
    survivor.shutdown();

    // --- phase 8: replication gate ----------------------------------
    // Three empty backends, replication_factor(2): the stream lives on
    // two ring replicas at once, the repair pass keeps the secondary
    // warm, and losing the primary is invisible to reads — no recreate
    // round-trip, no cold solve.
    let no_streams: [(String, Instance); 0] = [];
    let fleet: Vec<(PlannerService, ServerHandle)> =
        (0..3).map(|_| boot(&no_streams, None)).collect();
    let names = ["e", "f", "g"];
    let mut builder = RouterServer::new().with_config(
        RouterConfig::new()
            .with_probe_interval(Duration::from_millis(50))
            .with_replication_factor(2)
            // Passes run on demand through the admin route, so the
            // gate's assertions are deterministic.
            .with_repair_interval(Duration::from_secs(600)),
    );
    for (name, (_, handle)) in names.iter().zip(&fleet) {
        builder = builder.with_backend(*name, handle.addr().to_string());
    }
    let repl_router = builder
        .serve("127.0.0.1:0")
        .map_err(|e| format!("bind replication router: {e}"))?;
    let repl_client = ApiClient::connect(repl_router.addr())
        .map_err(|e| format!("connect replication router: {e}"))?;
    repl_client
        .create_stream(&create)
        .map_err(|e| format!("replicated create: {e}"))?;
    let hosting = |fleet: &[(PlannerService, ServerHandle)]| -> Result<Vec<usize>, String> {
        let mut hosts = Vec::new();
        for (i, (_, handle)) in fleet.iter().enumerate() {
            let (_, listing) = client::get(handle.addr(), "/v1/streams")
                .map_err(|e| format!("list replica {i}: {e}"))?;
            if listing.contains("wire") {
                hosts.push(i);
            }
        }
        Ok(hosts)
    };
    let hosts = hosting(&fleet)?;
    if hosts.len() != 2 {
        return Err(format!(
            "a replicated create must land on both set members, found {hosts:?}"
        ));
    }
    let before = repl_client
        .recommend(&wire_request, None)
        .map_err(|e| format!("solve on the replicated stream: {e}"))?
        .identity_json()
        .to_string();
    let primary = *hosts
        .iter()
        .find(|&&i| fleet[i].0.stats().submitted > 0)
        .ok_or("no replica-set member served the solve")?;

    // Repair over the wire: the first pass warms the cold secondary
    // via snapshot transfer; a second finds the fleet converged.
    let repair = |label: &str| -> Result<(usize, String), String> {
        let (status, body) = client::post(repl_router.addr(), "/v1/admin/repair", "", &[])
            .map_err(|e| format!("{label}: {e}"))?;
        if status != 200 {
            return Err(format!("{label} returned {status}: {body}"));
        }
        Json::parse(&body)
            .ok()
            .and_then(|j| {
                j.get("transfers")
                    .and_then(|t| t.as_array().map(<[Json]>::len))
            })
            .map(|n| (n, body.clone()))
            .ok_or_else(|| format!("{label} report unreadable: {body}"))
    };
    let (warmed, report) = repair("warming repair")?;
    if warmed == 0 {
        return Err(format!(
            "the repair pass moved nothing onto the cold secondary; report: {report}"
        ));
    }
    let (converged, report) = repair("converged repair")?;
    if converged != 0 {
        return Err(format!(
            "a converged fleet must repair nothing; report: {report}"
        ));
    }

    // Kill the primary mid-run. The survivor host count pins "zero
    // recreate round-trips": no new stream installs happen after the
    // failover, reads are simply served by the secondary.
    let streams_before: usize = hosting(&fleet)?.len();
    let mut fleet: Vec<(PlannerService, Option<ServerHandle>)> = fleet
        .into_iter()
        .map(|(service, handle)| (service, Some(handle)))
        .collect();
    fleet[primary].1.take().expect("primary running").shutdown();
    wait_unhealthy(&repl_router, names[primary])?;
    for attempt in 0..3 {
        let plan = repl_client
            .recommend(&wire_request, None)
            .map_err(|e| format!("read {attempt} after primary loss: {e}"))?;
        if plan.identity_json().to_string() != before {
            return Err(format!("failover read {attempt} changed plan bytes"));
        }
        if plan.diagnostics.store_misses != 0 {
            return Err(format!(
                "failover read {attempt} paid {} store misses on the secondary",
                plan.diagnostics.store_misses
            ));
        }
    }
    let survivors_hosting = fleet
        .iter()
        .filter(|(_, handle)| {
            handle.as_ref().is_some_and(|h| {
                client::get(h.addr(), "/v1/streams")
                    .map(|(_, listing)| listing.contains("wire"))
                    .unwrap_or(false)
            })
        })
        .count();
    if survivors_hosting != streams_before - 1 {
        return Err(format!(
            "a recreate round-trip happened: {survivors_hosting} survivors host the stream"
        ));
    }

    // Repair restores two-replica residency on the survivor fleet.
    let (rereplicated, report) = repair("re-replication repair")?;
    if rereplicated == 0 {
        return Err(format!(
            "repair did not re-replicate onto the ring successor; report: {report}"
        ));
    }
    let rehosted = fleet
        .iter()
        .filter(|(_, handle)| {
            handle.as_ref().is_some_and(|h| {
                client::get(h.addr(), "/v1/streams")
                    .map(|(_, listing)| listing.contains("wire"))
                    .unwrap_or(false)
            })
        })
        .count();
    if rehosted != 2 {
        return Err(format!(
            "repair must restore R=2 residency, found {rehosted} hosts"
        ));
    }
    println!(
        "replication: primary killed, secondary served warm byte-identical plans, R=2 restored"
    );

    repl_router.shutdown();
    for (_, handle) in fleet {
        if let Some(handle) = handle {
            handle.shutdown();
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let quick = std::env::args()
        .skip(1)
        .any(|a| a == "--quick" || a == "--smoke");
    match run(quick) {
        Ok(()) => {
            println!("OK: topology is invisible to the workload");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("FAIL {e}");
            ExitCode::FAILURE
        }
    }
}
