//! Fig. 6 — *absolute* improvement of GreedyMinVar over GreedyNaive in
//! expected duplicity variance, as a function of budget, one curve per
//! Γ: (a) URx, (b) LNx. Larger initial uncertainty ⇒ larger absolute
//! improvement (§4.2's reading of the figure). Served through the
//! planner registry: one discrete MinVar [`Problem`] per Γ, both
//! strategies batched over it so they share one engine cache (the
//! scoped-EV tables build once per Γ, not once per strategy).

use std::sync::Arc;

use fc_bench::{Figure, HarnessCfg, Series};
use fc_core::planner::Problem;
use fc_core::{BatchJob, Budget, ExecOptions, SolverRegistry};
use fc_datasets::workloads::synthetic_uniqueness;
use fc_datasets::SyntheticKind;

fn panel(id: &str, kind: SyntheticKind, gammas: &[f64], cfg: &HarnessCfg) {
    let n = if cfg.quick { 20 } else { 40 };
    let registry = SolverRegistry::with_defaults();
    let mut fig = Figure::new(
        id,
        format!(
            "absolute improvement of GreedyMinVar over GreedyNaive ({})",
            kind.name()
        ),
        "budget_frac",
        "naive_EV - gmv_EV",
    );
    for &gamma in gammas {
        let w = synthetic_uniqueness(kind, n, gamma, cfg.seed).unwrap();
        let problem =
            Problem::discrete_min_var(w.instance.clone(), Arc::new(w.query.clone())).unwrap();
        let total = w.instance.total_cost();
        let fracs = cfg.budget_fracs();
        let budgets: Vec<Budget> = fracs.iter().map(|&f| Budget::fraction(total, f)).collect();
        let problem = &problem;
        let jobs: Vec<BatchJob<'_>> = ["greedy-naive", "greedy"]
            .into_iter()
            .flat_map(|strategy| {
                budgets.iter().map(move |&budget| BatchJob {
                    strategy,
                    problem,
                    budget,
                    key: None,
                })
            })
            .collect();
        let plans = registry
            .solve_batch(&jobs, &ExecOptions::default())
            .unwrap();
        let (naive, gmv) = plans.split_at(budgets.len());
        let mut s = Series::new(format!("Γ={gamma}"));
        for ((&frac, n_plan), g_plan) in fracs.iter().zip(naive).zip(gmv) {
            s.push(frac, (n_plan.after - g_plan.after).max(0.0));
        }
        fig.series.push(s);
    }
    fig.emit(cfg);
}

fn main() {
    let cfg = HarnessCfg::from_args();
    panel(
        "fig06a",
        SyntheticKind::Urx,
        &[50.0, 100.0, 150.0, 200.0, 250.0, 300.0],
        &cfg,
    );
    panel(
        "fig06b",
        SyntheticKind::Lnx,
        &[3.0, 3.5, 4.0, 4.5, 5.0, 5.5],
        &cfg,
    );
}
