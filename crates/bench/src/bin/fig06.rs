//! Fig. 6 — *absolute* improvement of GreedyMinVar over GreedyNaive in
//! expected duplicity variance, as a function of budget, one curve per
//! Γ: (a) URx, (b) LNx. Larger initial uncertainty ⇒ larger absolute
//! improvement (§4.2's reading of the figure).

use fc_bench::{Figure, HarnessCfg, Series};
use fc_core::algo::{greedy_min_var_with_engine, greedy_naive};
use fc_core::Budget;
use fc_datasets::workloads::synthetic_uniqueness;
use fc_datasets::SyntheticKind;

fn panel(id: &str, kind: SyntheticKind, gammas: &[f64], cfg: &HarnessCfg) {
    let n = if cfg.quick { 20 } else { 40 };
    let mut fig = Figure::new(
        id,
        format!(
            "absolute improvement of GreedyMinVar over GreedyNaive ({})",
            kind.name()
        ),
        "budget_frac",
        "naive_EV - gmv_EV",
    );
    for &gamma in gammas {
        let w = synthetic_uniqueness(kind, n, gamma, cfg.seed).unwrap();
        let eng = fc_core::ev::ScopedEv::new(&w.instance, &w.query);
        let total = w.instance.total_cost();
        let mut s = Series::new(format!("Γ={gamma}"));
        for frac in cfg.budget_fracs() {
            let budget = Budget::fraction(total, frac);
            let e_naive = eng.ev_of(greedy_naive(&w.instance, &w.query, budget).objects());
            let e_gmv = eng.ev_of(greedy_min_var_with_engine(&w.instance, &eng, budget).objects());
            s.push(frac, (e_naive - e_gmv).max(0.0));
        }
        fig.series.push(s);
    }
    fig.emit(cfg);
}

fn main() {
    let cfg = HarnessCfg::from_args();
    panel(
        "fig06a",
        SyntheticKind::Urx,
        &[50.0, 100.0, 150.0, 200.0, 250.0, 300.0],
        &cfg,
    );
    panel(
        "fig06b",
        SyntheticKind::Lnx,
        &[3.0, 3.5, 4.0, 4.5, 5.0, 5.5],
        &cfg,
    );
}
