//! Fig. 11 — handling dependency (§4.5): CDC-firearms with injected
//! covariance `Cov[Xᵢ, Xⱼ] = γ^{j−i} σᵢ σⱼ`.
//!
//! (a) γ = 0.7, budget sweep: the blind algorithms (CostBlind, Naive,
//!     GreedyMinVar, Optimum) vs the dependency-aware `GreedyDep` and
//!     the exhaustive `OPT`; the metric is the *conditional* residual
//!     variance in fairness (what a fully-informed observer would
//!     measure).
//! (b) budget fixed at 30%, γ ∈ {0, 0.1, …, 0.9}: GreedyMinVar vs OPT vs
//!     GreedyDep.

use fc_bench::gaussian_algos as ga;
use fc_bench::{Figure, HarnessCfg, Series};
use fc_core::algo::{
    greedy_dep, greedy_min_var_gaussian, knapsack_optimum_min_var_gaussian, opt_gaussian,
};
use fc_core::ev::ev_gaussian_linear;
use fc_core::ev::gaussian::MvnSemantics;
use fc_core::{Budget, Selection};
use fc_datasets::workloads::dependency_fairness;

fn main() {
    let cfg = HarnessCfg::from_args();

    // (a) γ = 0.7, varying budget.
    let w = dependency_fairness(cfg.seed, 0.7).unwrap();
    let total = w.instance.total_cost();
    let ev = |sel: &Selection| {
        ev_gaussian_linear(
            &w.instance,
            &w.weights,
            sel.objects(),
            MvnSemantics::Conditional,
        )
        .unwrap()
    };
    let mut fig_a = Figure::new(
        "fig11a",
        "CDC-firearms with γ = 0.7 dependency — conditional variance in fairness",
        "budget_frac",
        "variance after cleaning",
    );
    let mut blind = Series::new("GreedyNaiveCostBlind");
    let mut naive = Series::new("GreedyNaive");
    let mut gmv = Series::new("GreedyMinVar");
    let mut optimum = Series::new("Optimum");
    let mut opt_full = Series::new("OPT");
    let mut dep = Series::new("GreedyDep");
    for frac in cfg.budget_fracs() {
        let budget = Budget::fraction(total, frac);
        blind.push(
            frac,
            ev(&ga::naive_cost_blind(&w.instance, &w.weights, budget)),
        );
        naive.push(frac, ev(&ga::naive(&w.instance, &w.weights, budget)));
        gmv.push(
            frac,
            ev(&greedy_min_var_gaussian(&w.instance, &w.weights, budget)),
        );
        optimum.push(
            frac,
            ev(&knapsack_optimum_min_var_gaussian(
                &w.instance,
                &w.weights,
                budget,
            )),
        );
        opt_full.push(
            frac,
            ev(&opt_gaussian(&w.instance, &w.weights, budget).unwrap()),
        );
        dep.push(frac, ev(&greedy_dep(&w.instance, &w.weights, budget)));
    }
    fig_a
        .series
        .extend([blind, naive, gmv, optimum, opt_full, dep]);
    fig_a.emit(&cfg);

    // (b) budget 30%, varying γ.
    let gammas: Vec<f64> = if cfg.quick {
        vec![0.0, 0.3, 0.6, 0.9]
    } else {
        (0..=9).map(|i| i as f64 / 10.0).collect()
    };
    let mut fig_b = Figure::new(
        "fig11b",
        "varying dependency strength, budget = 30%",
        "gamma",
        "variance after cleaning",
    );
    let mut gmv = Series::new("GreedyMinVar");
    let mut opt_full = Series::new("OPT");
    let mut dep = Series::new("GreedyDep");
    for &gamma in &gammas {
        let w = dependency_fairness(cfg.seed, gamma).unwrap();
        let budget = Budget::fraction(w.instance.total_cost(), 0.3);
        let ev = |sel: &Selection| {
            ev_gaussian_linear(
                &w.instance,
                &w.weights,
                sel.objects(),
                MvnSemantics::Conditional,
            )
            .unwrap()
        };
        gmv.push(
            gamma,
            ev(&greedy_min_var_gaussian(&w.instance, &w.weights, budget)),
        );
        opt_full.push(
            gamma,
            ev(&opt_gaussian(&w.instance, &w.weights, budget).unwrap()),
        );
        dep.push(gamma, ev(&greedy_dep(&w.instance, &w.weights, budget)));
    }
    fig_b.series.extend([gmv, opt_full, dep]);
    fig_b.emit(&cfg);
}
