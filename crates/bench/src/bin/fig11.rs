//! Fig. 11 — handling dependency (§4.5): CDC-firearms with injected
//! covariance `Cov[Xᵢ, Xⱼ] = γ^{j−i} σᵢ σⱼ`.
//!
//! (a) γ = 0.7, budget sweep: the blind algorithms (CostBlind, Naive,
//!     GreedyMinVar, Optimum) vs the dependency-aware `GreedyDep` and
//!     the exhaustive `OPT`; the metric is the *conditional* residual
//!     variance in fairness (what a fully-informed observer would
//!     measure).
//! (b) budget fixed at 30%, γ ∈ {0, 0.1, …, 0.9}: GreedyMinVar vs OPT vs
//!     GreedyDep.
//!
//! Served through the planner registry: the correlated strategies run
//! as one `solve_batch` per panel on a Gaussian MinVar
//! [`fc_core::Problem`] (conditional semantics, so [`fc_core::Plan::after`] is
//! exactly the conditional EV the paper plots). The one deliberate
//! exception is `Optimum`, whose *blindness* is the point — the
//! registry's `optimum-knapsack` refuses non-diagonal covariance, so
//! its selection is solved on an independent twin instance (same
//! marginals, no covariance) and then evaluated on the true correlated
//! model, exactly as the legacy free-function path did.

use fc_bench::{strategy_budget_batch as batch, Figure, HarnessCfg, Series};
use fc_core::ev::ev_gaussian_linear;
use fc_core::ev::gaussian::MvnSemantics;
use fc_core::{Budget, GaussianInstance, Problem, Selection, SolverRegistry};
use fc_datasets::workloads::dependency_fairness;

/// The correlation-blind twin: same marginal sds / means / current /
/// costs, diagonal covariance — what the blind `Optimum` believes the
/// world looks like.
fn blind_twin(instance: &GaussianInstance) -> GaussianInstance {
    let n = instance.len();
    let means: Vec<f64> = (0..n).map(|i| instance.mean(i)).collect();
    let sds: Vec<f64> = (0..n).map(|i| instance.sd(i)).collect();
    GaussianInstance::independent(
        means,
        &sds,
        instance.current().to_vec(),
        instance.costs().to_vec(),
    )
    .expect("the twin copies a validated instance")
}

fn main() {
    let cfg = HarnessCfg::from_args();
    let registry = SolverRegistry::with_defaults();

    // (a) γ = 0.7, varying budget.
    let w = dependency_fairness(cfg.seed, 0.7).unwrap();
    let total = w.instance.total_cost();
    let ev = |sel: &Selection| {
        ev_gaussian_linear(
            &w.instance,
            &w.weights,
            sel.objects(),
            MvnSemantics::Conditional,
        )
        .unwrap()
    };
    let problem = Problem::gaussian_min_var(w.instance.clone(), w.weights.clone()).unwrap();
    let blind_problem =
        Problem::gaussian_min_var(blind_twin(&w.instance), w.weights.clone()).unwrap();
    let fracs = cfg.budget_fracs();
    let budgets: Vec<Budget> = fracs.iter().map(|&f| Budget::fraction(total, f)).collect();

    // Correlated model: Plan::after *is* the conditional EV.
    const PANEL_A: [(&str, &str); 5] = [
        ("GreedyNaiveCostBlind", "greedy-naive-cost-blind"),
        ("GreedyNaive", "greedy-naive"),
        ("GreedyMinVar", "greedy"),
        ("OPT", "brute"),
        ("GreedyDep", "greedy-dep"),
    ];
    let plans_a = batch(&registry, &problem, &PANEL_A.map(|(_, s)| s), &budgets);
    // Blind Optimum: selection from the independent twin, conditional
    // EV evaluated on the true correlated instance.
    let optimum_plans = batch(&registry, &blind_problem, &["optimum-knapsack"], &budgets);

    let mut fig_a = Figure::new(
        "fig11a",
        "CDC-firearms with γ = 0.7 dependency — conditional variance in fairness",
        "budget_frac",
        "variance after cleaning",
    );
    let mut by_label: Vec<Series> = Vec::new();
    for ((label, _), plans) in PANEL_A.iter().zip(plans_a.chunks(budgets.len())) {
        let mut series = Series::new(*label);
        for (&frac, plan) in fracs.iter().zip(plans) {
            series.push(frac, plan.after);
        }
        by_label.push(series);
    }
    let mut optimum = Series::new("Optimum");
    for (&frac, plan) in fracs.iter().zip(&optimum_plans) {
        optimum.push(frac, ev(&plan.selection));
    }
    // Paper order: blind, naive, gmv, Optimum, OPT, dep.
    let [blind, naive, gmv, opt_full, dep] =
        <[Series; 5]>::try_from(by_label).expect("one series per panel-a strategy");
    fig_a
        .series
        .extend([blind, naive, gmv, optimum, opt_full, dep]);
    fig_a.emit(&cfg);

    // (b) budget 30%, varying γ.
    let gammas: Vec<f64> = if cfg.quick {
        vec![0.0, 0.3, 0.6, 0.9]
    } else {
        (0..=9).map(|i| i as f64 / 10.0).collect()
    };
    let mut fig_b = Figure::new(
        "fig11b",
        "varying dependency strength, budget = 30%",
        "gamma",
        "variance after cleaning",
    );
    const PANEL_B: [(&str, &str); 3] = [
        ("GreedyMinVar", "greedy"),
        ("OPT", "brute"),
        ("GreedyDep", "greedy-dep"),
    ];
    let mut series_b: Vec<Series> = PANEL_B
        .iter()
        .map(|&(label, _)| Series::new(label))
        .collect();
    for &gamma in &gammas {
        let w = dependency_fairness(cfg.seed, gamma).unwrap();
        let budget = Budget::fraction(w.instance.total_cost(), 0.3);
        let problem = Problem::gaussian_min_var(w.instance.clone(), w.weights.clone()).unwrap();
        let plans = batch(&registry, &problem, &PANEL_B.map(|(_, s)| s), &[budget]);
        for (series, plan) in series_b.iter_mut().zip(&plans) {
            series.push(gamma, plan.after);
        }
    }
    fig_b.series.extend(series_b);
    fig_b.emit(&cfg);
}
