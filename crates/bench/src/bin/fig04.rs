//! Fig. 4 — uniqueness on LNx, Γ ∈ {3.0..5.5}, served through the
//! planner registry (see fig03).

use fc_bench::{synthetic_uniqueness_sweep, HarnessCfg};
use fc_datasets::SyntheticKind;

fn main() {
    let cfg = HarnessCfg::from_args();
    synthetic_uniqueness_sweep(SyntheticKind::Lnx, 4, &cfg);
}
