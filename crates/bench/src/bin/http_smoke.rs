//! `http_smoke` — the network-front counterpart of `serve_smoke`: a CI
//! gate that boots the hand-rolled HTTP/1.1 server on an ephemeral
//! port and replays the serving layer's mixed workload **over real
//! sockets**.
//!
//! The binary **fails (exit 1)** if
//!
//! * any plan served over HTTP diverges from its in-process
//!   `PlannerService`/sequential-session twin (compared on the wire
//!   encoding of exactly the fields [`Plan::divergence`] covers —
//!   floats shortest-round-trip, so equal bytes ⇔ no divergence), or
//! * a cleaning step posted over the wire leaves a stale serve (stream
//!   A must match a fresh session; stream B must report **zero** store
//!   misses in its own response diagnostics), or
//! * a client hanging up mid-solve does **not** cancel the request
//!   (observed via `ServiceStats::cancelled`), or
//! * the quota storm (concurrent submitters under a 2-in-flight tenant
//!   cap, some abandoning their sockets) drifts: client-observed 429s
//!   must equal `quota_rejected`, every submitted request must resolve
//!   (completed + cancelled), and the tenant ledger must read zero, or
//! * graceful shutdown drops an in-flight request's completed plan, or
//! * a streamed sweep (`POST /v1/sweep?stream=1`) misbehaves: the
//!   concatenated chunk bodies must reproduce the buffered `/v1/sweep`
//!   response byte-for-byte (cold-for-cold — fresh servers per
//!   comparison, since diagnostics count store traffic), the first
//!   budget point must arrive while later points are still solving
//!   (single slow worker, `completed == 0` at first yield), and
//!   hanging up mid-stream must cancel the remaining points.
//!
//! Run `--quick` for the CI-sized instance.

use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_clean::net::api::{plan_identity_json, BudgetSpec, SweepRequest};
use fact_clean::net::client::{self, ClientPool, SweepStream};
use fact_clean::net::json::Json;
use fact_clean::net::{PlannerServer, ServerConfig, ServerHandle};
use fact_clean::prelude::*;
use fc_bench::HarnessCfg;
use fc_claims::window_sum_family;
use fc_core::{EngineCache, Result as CoreResult, SolverRegistry, WorkerPool};
use fc_datasets::synthetic::urx;
use fc_datasets::workloads::LAMBDA;

// ---------------------------------------------------------------- data

fn dataset(n: usize, seed: u64) -> (Instance, ClaimSet) {
    let instance = urx(n, seed).expect("synthetic instance");
    let claims =
        window_sum_family(n, 4, n - 4, Direction::LowerIsStronger, LAMBDA).expect("claim family");
    (instance, claims)
}

fn sequential_session(instance: &Instance, claims: &ClaimSet) -> CleaningSession {
    SessionBuilder::new()
        .discrete(instance.clone())
        .claims(claims.clone())
        .parallelism(Parallelism::Sequential)
        .build()
        .expect("data and claims are set")
}

/// Boots a throwaway server over `instance` with default solvers —
/// the cold-for-cold twin used by the streamed-vs-buffered byte gate
/// (plan diagnostics count store traffic, so the two responses only
/// match when each request is its server's first).
fn boot_fresh(instance: &Instance, claims: &ClaimSet) -> ServerHandle {
    let service = PlannerService::new(
        Arc::new(SolverRegistry::with_defaults()),
        ServiceOptions::new(),
    );
    PlannerServer::new(service.clone())
        .with_config(ServerConfig::new().with_read_timeout(Duration::from_millis(200)))
        .with_stream(
            "a",
            ClaimStream::open(sequential_session(instance, claims), service),
        )
        .serve("127.0.0.1:0")
        .expect("bind ephemeral port")
}

fn specs() -> Vec<(ObjectiveSpec, &'static str)> {
    vec![
        (
            ObjectiveSpec::ascertain(Measure::Bias),
            r#""measure":"bias""#,
        ),
        (ObjectiveSpec::ascertain(Measure::Dup), r#""measure":"dup""#),
        (
            ObjectiveSpec::ascertain(Measure::Frag),
            r#""measure":"frag""#,
        ),
        (
            ObjectiveSpec::find_counter(5.0),
            r#""measure":"bias","goal":{"maxpr":5}"#,
        ),
    ]
}

/// Sleeps before delegating to greedy, so disconnects land mid-solve.
struct SlowSolver {
    delegate: Arc<dyn Solver>,
    delay: Duration,
}

impl std::fmt::Debug for SlowSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowSolver").finish()
    }
}

impl Solver for SlowSolver {
    fn name(&self) -> &'static str {
        "slow"
    }
    fn solve_with_cache<'p>(
        &self,
        problem: &'p Problem,
        budget: Budget,
        cache: &EngineCache<'p>,
    ) -> CoreResult<Plan> {
        std::thread::sleep(self.delay);
        self.delegate.solve_with_cache(problem, budget, cache)
    }
}

// ------------------------------------------------------------- client

/// [`ClientPool::post`] with an optional tenant header, panicking on
/// I/O failure (this gate treats transport errors as test failures).
/// Riding the pool keeps the keep-alive reuse path itself under test —
/// the server's 500ms read timeout reaps parked connections between
/// phases, so the pool's stale-retry fires for real here.
fn post(pool: &ClientPool, path: &str, json: &str, tenant: Option<&str>) -> (u16, String) {
    let headers: Vec<(&str, &str)> = tenant.map(|t| ("x-tenant", t)).into_iter().collect();
    pool.post(path, json, &headers).expect("response")
}

/// Sends a request and abandons the socket without reading the
/// response (the disconnect/churn cases).
fn send_and_hang_up(
    addr: SocketAddr,
    path: &str,
    json: &str,
    tenant: Option<&str>,
    linger: Duration,
) {
    let Ok(mut sock) = TcpStream::connect(addr) else {
        return;
    };
    let headers: Vec<(&str, &str)> = tenant.map(|t| ("x-tenant", t)).into_iter().collect();
    let _ = client::write_request(&mut sock, "POST", path, &headers, json);
    std::thread::sleep(linger);
    drop(sock);
}

// -------------------------------------------------------------- gates

/// In-process identity encoding (see `fc::net::api`).
fn identity(plan: &Plan) -> String {
    plan_identity_json(plan).to_string()
}

/// Served plan JSON → identity encoding (diagnostics stripped).
fn served_identity(plan: &Json) -> String {
    match plan {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "diagnostics")
                .cloned()
                .collect(),
        )
        .to_string(),
        other => other.to_string(),
    }
}

fn main() -> ExitCode {
    let cfg = HarnessCfg::from_args();
    let n = if cfg.quick { 100 } else { 400 };
    let (instance_a, claims_a) = dataset(n, cfg.seed);
    let (instance_b, claims_b) = dataset(n.saturating_sub(8), cfg.seed ^ 0xB);
    let total_cost = instance_a.total_cost();
    let budget = Budget::fraction(total_cost, 0.2);
    let budget_json = r#"{"fraction":0.2}"#;

    let mut registry = SolverRegistry::with_defaults();
    registry.register_solver(Arc::new(SlowSolver {
        delegate: registry.get("greedy").expect("greedy exists"),
        delay: Duration::from_millis(400),
    }));
    let service = PlannerService::new(
        Arc::new(registry),
        ServiceOptions::new().with_inline_threshold(0),
    );
    let storm_tenant = TenantId::new("storm");
    service.set_quota(
        storm_tenant.clone(),
        QuotaPolicy::default().with_max_in_flight(2),
    );
    let server = PlannerServer::new(service.clone())
        .with_config(
            ServerConfig::new()
                .with_disconnect_poll(Duration::from_millis(25))
                .with_read_timeout(Duration::from_millis(500)),
        )
        .with_stream(
            "a",
            ClaimStream::open(sequential_session(&instance_a, &claims_a), service.clone()),
        )
        .with_stream(
            "b",
            ClaimStream::open(sequential_session(&instance_b, &claims_b), service.clone()),
        )
        .serve("127.0.0.1:0")
        .expect("bind ephemeral port");
    let addr = server.addr();
    let pool = Arc::new(ClientPool::new(addr).expect("pool over bound address"));

    let failed = AtomicBool::new(false);
    let fail = |what: &str| {
        eprintln!("FAIL {what}");
        failed.store(true, Ordering::Relaxed);
    };

    // --- 1. mixed interactive + sweep workload over sockets ----------
    let seq_a = sequential_session(&instance_a, &claims_a);
    let expected_many: Vec<String> = specs()
        .iter()
        .map(|(spec, _)| {
            identity(
                &seq_a
                    .recommend(spec.clone(), budget)
                    .expect("sequential twin"),
            )
        })
        .collect();
    let sweep_spec = ObjectiveSpec::ascertain(Measure::Dup);
    let budgets: Vec<Budget> = (1..=4)
        .map(|i| Budget::fraction(total_cost, i as f64 / 20.0))
        .collect();
    let expected_sweep: Vec<String> = seq_a
        .recommend_sweep(&sweep_spec, &budgets)
        .expect("sequential sweep twin")
        .iter()
        .map(identity)
        .collect();

    let t = Instant::now();
    std::thread::scope(|s| {
        let failed = &failed;
        let expected_many = &expected_many;
        let expected_sweep = &expected_sweep;
        let pool = &pool;
        // One sweep rides along with the interactive submitters.
        s.spawn(move || {
            let body = r#"{"stream":"a","measure":"dup","budgets":[{"fraction":0.05},{"fraction":0.1},{"fraction":0.15},{"fraction":0.2}]}"#;
            let (status, text) = post(pool, "/v1/sweep", body, None);
            if status != 200 {
                eprintln!("FAIL sweep: status {status}: {text}");
                failed.store(true, Ordering::Relaxed);
                return;
            }
            let parsed = Json::parse(&text).expect("sweep JSON");
            let plans = parsed.get("plans").and_then(Json::as_array).unwrap_or(&[]);
            if plans.len() != expected_sweep.len() {
                eprintln!("FAIL sweep: {} plans, expected {}", plans.len(), expected_sweep.len());
                failed.store(true, Ordering::Relaxed);
                return;
            }
            for (i, (served, expected)) in plans.iter().zip(expected_sweep.iter()).enumerate() {
                if served_identity(served) != *expected {
                    eprintln!("FAIL sweep point {i}: served {} != expected {expected}",
                        served_identity(served));
                    failed.store(true, Ordering::Relaxed);
                }
            }
        });
        for _ in 0..3 {
            s.spawn(move || {
                for ((_, fields), expected) in specs().iter().zip(expected_many) {
                    let body = format!(r#"{{"stream":"a",{fields},"budget":{budget_json}}}"#);
                    let (status, text) = post(pool, "/v1/recommend", &body, None);
                    if status != 200 {
                        eprintln!("FAIL recommend: status {status}: {text}");
                        failed.store(true, Ordering::Relaxed);
                        continue;
                    }
                    let served = Json::parse(&text).expect("plan JSON");
                    if served_identity(&served) != *expected {
                        eprintln!(
                            "FAIL recommend ({fields}): served {} != expected {expected}",
                            served_identity(&served)
                        );
                        failed.store(true, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let stats = service.stats();
    println!(
        "http_smoke: n = {n}, mixed wire workload ({} requests, {} interactive / {} bulk) in {:.3}s",
        stats.submitted,
        stats.interactive,
        stats.bulk,
        t.elapsed().as_secs_f64()
    );

    // --- 2. cleaning over the wire: surgical invalidation ------------
    let (status, warm_b_text) = post(
        &pool,
        "/v1/recommend",
        &format!(r#"{{"stream":"b","measure":"dup","budget":{budget_json}}}"#),
        None,
    );
    if status != 200 {
        fail(&format!("stream B warm-up: status {status}"));
    }
    let warm_b = Json::parse(&warm_b_text).expect("warm B JSON");

    // Clean stream A's dup selection at the distribution means.
    let dup_plan = seq_a
        .recommend(specs()[1].0.clone(), budget)
        .expect("dup twin");
    let cleaned_objects = dup_plan.selection.objects().to_vec();
    let revealed: Vec<f64> = cleaned_objects
        .iter()
        .map(|&i| instance_a.dist(i).mean())
        .collect();
    let clean_body = format!(
        r#"{{"objects":{},"revealed":{}}}"#,
        Json::Arr(
            cleaned_objects
                .iter()
                .map(|&o| Json::Num(o as f64))
                .collect()
        ),
        Json::Arr(revealed.iter().map(|&v| Json::Num(v)).collect()),
    );
    let (status, text) = post(&pool, "/v1/streams/a/clean", &clean_body, None);
    let invalidated = Json::parse(&text)
        .ok()
        .and_then(|v| v.get("invalidated").and_then(Json::as_u64))
        .unwrap_or(0);
    if status != 200 || invalidated == 0 {
        fail(&format!(
            "clean endpoint: status {status}, invalidated {invalidated}: {text}"
        ));
    }

    // Post-clean serves must match a fresh session over cleaned data.
    let selection = Selection::from_objects(cleaned_objects.clone(), instance_a.costs());
    let fresh = seq_a
        .after_cleaning(&selection, &revealed)
        .expect("cleaned twin session");
    for (spec, fields) in &specs() {
        let expected = identity(&fresh.recommend(spec.clone(), budget).expect("fresh twin"));
        let body = format!(r#"{{"stream":"a",{fields},"budget":{budget_json}}}"#);
        let (status, text) = post(&pool, "/v1/recommend", &body, None);
        let served = Json::parse(&text).expect("post-clean JSON");
        if status != 200 || served_identity(&served) != expected {
            fail(&format!(
                "post-clean ({fields}): status {status}, served {} != expected {expected}",
                served_identity(&served)
            ));
        }
    }

    // Stream B must still be warm: identical plan, zero store misses
    // reported in its own response diagnostics.
    let (status, again_b_text) = post(
        &pool,
        "/v1/recommend",
        &format!(r#"{{"stream":"b","measure":"dup","budget":{budget_json}}}"#),
        None,
    );
    let again_b = Json::parse(&again_b_text).expect("warm B again JSON");
    if status != 200 || served_identity(&again_b) != served_identity(&warm_b) {
        fail("stale-cache gate: stream B diverged after an unrelated invalidation");
    }
    let b_misses = again_b
        .get("diagnostics")
        .and_then(|d| d.get("store_misses"))
        .and_then(Json::as_u64)
        .unwrap_or(u64::MAX);
    if b_misses != 0 {
        fail(&format!(
            "stale-cache gate: stream B rebuilt after an unrelated invalidation ({b_misses} misses)"
        ));
    }
    println!(
        "cleaning over the wire: {invalidated} entries invalidated, stream B misses {b_misses}"
    );

    // --- 3. client disconnect cancels the in-flight request ----------
    let cancelled_before = service.stats().cancelled;
    // The slow solve is mid-flight when the 120ms linger ends and the
    // socket drops: the checker walked away.
    send_and_hang_up(
        addr,
        "/v1/recommend",
        r#"{"stream":"a","measure":"dup","strategy":"slow","budget":2}"#,
        None,
        Duration::from_millis(120),
    );
    let deadline = Instant::now() + Duration::from_secs(15);
    while service.stats().cancelled == cancelled_before {
        if Instant::now() >= deadline {
            fail("disconnect did not cancel the in-flight request");
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // --- 4. quota storm over sockets ---------------------------------
    let rejected = AtomicU64::new(0);
    let t = Instant::now();
    std::thread::scope(|s| {
        let rejected = &rejected;
        let failed = &failed;
        let fresh = &fresh;
        let pool = &pool;
        for thread in 0..3usize {
            s.spawn(move || {
                for i in 0..6usize {
                    let (spec, fields) = &specs()[i % 4];
                    let expected =
                        identity(&fresh.recommend(spec.clone(), budget).expect("storm twin"));
                    let body = format!(r#"{{"stream":"a",{fields},"budget":{budget_json}}}"#);
                    if (thread + i) % 3 == 0 {
                        // Abandon: send and hang up without reading.
                        send_and_hang_up(
                            addr,
                            "/v1/recommend",
                            &body,
                            Some("storm"),
                            Duration::ZERO,
                        );
                    } else {
                        let (status, text) = post(pool, "/v1/recommend", &body, Some("storm"));
                        match status {
                            200 => {
                                let served = Json::parse(&text).expect("storm JSON");
                                if served_identity(&served) != expected {
                                    eprintln!("FAIL storm plan ({fields}) diverged");
                                    failed.store(true, Ordering::Relaxed);
                                }
                            }
                            429 => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            other => {
                                eprintln!("FAIL storm: unexpected status {other}: {text}");
                                failed.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    // Drain: every submitted request must resolve one way.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = service.stats();
        if stats.completed + stats.cancelled == stats.submitted {
            break;
        }
        if Instant::now() >= deadline {
            fail(&format!(
                "storm drain: {} submitted but {} resolved",
                stats.submitted,
                stats.completed + stats.cancelled
            ));
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let usage = service.quota_usage(&storm_tenant);
    if usage != QuotaUsage::default() {
        fail(&format!("storm: quota accounting drifted: {usage:?}"));
    }
    let stats = service.stats();
    let client_rejections = rejected.load(Ordering::Relaxed);
    // Abandoned sockets never read their 429s, but every server-side
    // rejection on this tenant was either read by a live client or
    // belonged to an abandoned one; the read ones must all be counted.
    if stats.quota_rejected < client_rejections {
        fail(&format!(
            "storm: clients saw {client_rejections} rejections but the server counted {}",
            stats.quota_rejected
        ));
    }
    println!(
        "quota storm: {} server-side rejections ({client_rejections} read by clients), {} cancelled total, in {:.3}s",
        stats.quota_rejected,
        stats.cancelled,
        t.elapsed().as_secs_f64()
    );

    // --- 5. graceful shutdown drains ---------------------------------
    let expected_slow = identity(
        &fresh
            .recommend(
                ObjectiveSpec::ascertain(Measure::Dup).with_strategy("greedy"),
                Budget::absolute(2),
            )
            .expect("greedy twin"),
    );
    let shutdown_pool = Arc::clone(&pool);
    let in_flight = std::thread::spawn(move || {
        post(
            &shutdown_pool,
            "/v1/recommend",
            r#"{"stream":"a","measure":"dup","strategy":"slow","budget":2}"#,
            None,
        )
    });
    std::thread::sleep(Duration::from_millis(120)); // request is mid-solve
    server.shutdown(); // must drain, not drop
    match in_flight.join() {
        Ok((200, text)) => {
            let served = Json::parse(&text).expect("drained plan JSON");
            // The slow solver delegates to greedy; identity must match
            // greedy's, except the strategy label it stamped.
            let served_objects = served.get("objects").map(Json::to_string);
            let expected_objects = Json::parse(&expected_slow)
                .ok()
                .and_then(|v| v.get("objects").map(Json::to_string));
            if served_objects.is_none() || served_objects != expected_objects {
                fail("graceful shutdown: drained plan diverged");
            }
        }
        Ok((status, text)) => fail(&format!("graceful shutdown: status {status}: {text}")),
        Err(_) => fail("graceful shutdown: client thread panicked"),
    }
    let stats = service.stats();
    if stats.completed + stats.cancelled != stats.submitted {
        fail(&format!(
            "final counter drift: {} submitted, {} resolved",
            stats.submitted,
            stats.completed + stats.cancelled
        ));
    }

    // --- 6. streamed sweeps: byte identity, cold-for-cold ------------
    for body in [
        r#"{"stream":"a","measure":"dup","budgets":[{"fraction":0.05},{"fraction":0.1},{"fraction":0.15}]}"#,
        r#"{"stream":"a","measure":"bias","goal":{"maxpr":5},"budgets":[1,3]}"#,
    ] {
        let buffered_server = boot_fresh(&instance_a, &claims_a);
        let streamed_server = boot_fresh(&instance_a, &claims_a);
        let (buffered_status, buffered) =
            client::post(buffered_server.addr(), "/v1/sweep", body, &[]).expect("buffered sweep");
        let (streamed_status, streamed) =
            client::post(streamed_server.addr(), "/v1/sweep?stream=1", body, &[])
                .expect("streamed sweep");
        if buffered_status != 200 || streamed_status != 200 || buffered != streamed {
            fail(&format!(
                "streamed sweep bytes diverged from buffered \
                 ({buffered_status}/{streamed_status}) for {body}"
            ));
        }
        buffered_server.shutdown();
        streamed_server.shutdown();
    }

    // --- 7. streamed sweeps: progressive delivery + hangup -----------
    // A single slow worker makes "later points still solving"
    // deterministic: the first chunk must land while the sweep's final
    // fold — the only thing that bumps `completed` — is three solves
    // away.
    let slow_service = {
        let mut registry = SolverRegistry::with_defaults();
        let delegate = registry.get("greedy").expect("greedy exists");
        registry.register_solver(Arc::new(SlowSolver {
            delegate,
            delay: Duration::from_millis(250),
        }));
        PlannerService::new(
            Arc::new(registry),
            ServiceOptions::new()
                .with_inline_threshold(0)
                .with_pool(Arc::new(WorkerPool::new(1))),
        )
    };
    let slow_server = PlannerServer::new(slow_service.clone())
        .with_config(
            ServerConfig::new()
                .with_disconnect_poll(Duration::from_millis(25))
                .with_read_timeout(Duration::from_millis(500)),
        )
        .with_stream(
            "a",
            ClaimStream::open(
                sequential_session(&instance_a, &claims_a),
                slow_service.clone(),
            ),
        )
        .serve("127.0.0.1:0")
        .expect("bind ephemeral port");
    let sweep = SweepRequest {
        stream: "a".to_string(),
        spec: ObjectiveSpec::ascertain(Measure::Dup).with_strategy("slow"),
        budgets: (1..=4).map(BudgetSpec::Absolute).collect(),
    };
    let t = Instant::now();
    let mut stream =
        SweepStream::open(slow_server.addr(), None, &sweep, None).expect("open streamed sweep");
    match stream.next() {
        Some(Ok(_)) => {
            let first_point = t.elapsed();
            if slow_service.stats().completed != 0 {
                fail("first chunk only arrived after the whole sweep had completed");
            }
            let rest = 1 + stream.by_ref().filter(|item| item.is_ok()).count();
            if rest != sweep.budgets.len() {
                fail(&format!(
                    "streamed sweep yielded {rest} points, expected {}",
                    sweep.budgets.len()
                ));
            }
            if slow_service.stats().completed != 1 {
                fail("a fully drained streamed sweep did not count as completed");
            }
            println!(
                "streamed sweep: first point after {:.3}s, all {rest} drained in {:.3}s",
                first_point.as_secs_f64(),
                t.elapsed().as_secs_f64()
            );
        }
        other => fail(&format!("streamed sweep yielded no first point: {other:?}")),
    }

    // Hang up after the first point: the disconnect probe must cancel
    // the three points still queued behind the slow worker. Fresh
    // budgets keep every point a cold (slow) solve.
    let cancelled_before = slow_service.stats().cancelled;
    let abandoned_sweep = SweepRequest {
        budgets: (5..=8).map(BudgetSpec::Absolute).collect(),
        ..sweep
    };
    let mut abandoned = SweepStream::open(slow_server.addr(), None, &abandoned_sweep, None)
        .expect("open abandoned sweep");
    if !matches!(abandoned.next(), Some(Ok(_))) {
        fail("abandoned sweep never yielded its first point");
    }
    drop(abandoned);
    let deadline = Instant::now() + Duration::from_secs(15);
    while slow_service.stats().cancelled == cancelled_before {
        if Instant::now() >= deadline {
            fail("mid-stream hangup did not cancel the remaining points");
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    slow_server.shutdown();

    if failed.load(Ordering::Relaxed) {
        ExitCode::FAILURE
    } else {
        println!(
            "OK: wire plans byte-identical to in-process; disconnect cancels; quota/counters clean; shutdown drains; streamed sweeps progressive and byte-identical"
        );
        ExitCode::SUCCESS
    }
}
