//! Fig. 10 — efficiency of GreedyMinVar on the scaling workload (§4.4):
//! URx with `n` values and `n/4` width-4 perturbations covering all
//! values, Γ = 100.
//!
//! (a) n = 10,000, budget 1%–30% of the total cost;
//! (b) budget fixed at 5,000, n from 5,000 up to 1,000,000
//!     (log₁₀ seconds, as in the paper).
//!
//! `--quick` shrinks to n = 2,000 / n ≤ 50,000. Runs through the
//! planner registry (`"greedy"` resolves to the same scoped-engine
//! greedy the legacy `greedy_min_var_with_engine` call wrapped): the
//! engine build ("preprocessing") is paid once into an [`EngineCache`]
//! and reported as its own series; the per-budget timing covers the
//! greedy run plus the plan's before/after EV finalization (two scoped
//! evaluations — noise at these scales).

use std::sync::Arc;

use fc_bench::{time_it, Figure, HarnessCfg, Series};
use fc_core::{Budget, EngineCache, Problem, SolverRegistry};

fn scaling_problem(n: usize, seed: u64) -> Problem {
    let w = fc_datasets::workloads::scaling_uniqueness(n, seed).unwrap();
    Problem::discrete_min_var(w.instance, Arc::new(w.query))
        .expect("the scaling workload lowers onto discrete MinVar")
}

fn main() {
    let cfg = HarnessCfg::from_args();
    let registry = SolverRegistry::with_defaults();
    let solver = registry.get("greedy").unwrap();

    // (a) fixed n, varying budget.
    let n = if cfg.quick { 2_000 } else { 10_000 };
    let problem = scaling_problem(n, cfg.seed);
    let total = problem.total_cost();
    let cache = EngineCache::new();
    let ((), build_s) = time_it(|| {
        cache.scoped(&problem).expect("discrete problem");
    });
    println!("engine build for n = {n}: {build_s:.3}s");
    let mut fig_a = Figure::new(
        "fig10a",
        format!("GreedyMinVar runtime, n = {n}, varying budget"),
        "budget_frac",
        "seconds",
    );
    let mut s = Series::new("GreedyMinVar");
    for pct in [0.01, 0.05, 0.10, 0.20, 0.30] {
        let budget = Budget::fraction(total, pct);
        let (plan, secs) = time_it(|| solver.solve_with_cache(&problem, budget, &cache).unwrap());
        println!(
            "  budget {:>5.1}% -> cleaned {:>6} values in {secs:.3}s",
            pct * 100.0,
            plan.selection.len()
        );
        s.push(pct, secs);
    }
    fig_a.series.push(s);
    fig_a.emit(&cfg);

    // (b) fixed budget, varying n.
    let sizes: Vec<usize> = if cfg.quick {
        vec![5_000, 10_000, 50_000]
    } else {
        vec![5_000, 10_000, 100_000, 500_000, 1_000_000]
    };
    let mut fig_b = Figure::new(
        "fig10b",
        "GreedyMinVar runtime, budget = 5000, varying n",
        "n",
        "seconds",
    );
    let mut run_s = Series::new("GreedyMinVar");
    let mut build_series = Series::new("engine build");
    let mut log_s = Series::new("log10(seconds)");
    for n in sizes {
        let problem = scaling_problem(n, cfg.seed);
        let cache = EngineCache::new();
        let ((), bsecs) = time_it(|| {
            cache.scoped(&problem).expect("discrete problem");
        });
        let budget = Budget::absolute(5_000);
        let (plan, secs) = time_it(|| solver.solve_with_cache(&problem, budget, &cache).unwrap());
        println!(
            "  n = {n:>8}: build {bsecs:.3}s, greedy {secs:.3}s, cleaned {} values",
            plan.selection.len()
        );
        run_s.push(n as f64, secs);
        build_series.push(n as f64, bsecs);
        log_s.push(n as f64, secs.max(1e-9).log10());
    }
    fig_b.series.extend([run_s, build_series, log_s]);
    fig_b.emit(&cfg);
}
