//! Fig. 2 — reducing uncertainty in claim *uniqueness* on the CDC
//! datasets (non-modular objectives, §4.2): GreedyNaive vs GreedyMinVar
//! vs Best, expected variance of the duplicity measure vs budget.

use fc_bench::{Figure, HarnessCfg, Series};
use fc_core::algo::{
    best_min_var_with_engine, greedy_min_var_with_engine, greedy_naive, BestConfig,
};
use fc_core::Budget;
use fc_datasets::workloads::{cdc_causes_uniqueness, cdc_firearms_uniqueness, UniquenessWorkload};

fn panel(id: &str, title: &str, w: &UniquenessWorkload, cfg: &HarnessCfg) {
    let eng = fc_core::ev::ScopedEv::new(&w.instance, &w.query);
    let total = w.instance.total_cost();
    let mut fig = Figure::new(id, title, "budget_frac", "expected variance after cleaning");
    let mut naive = Series::new("GreedyNaive");
    let mut gmv = Series::new("GreedyMinVar");
    let mut best = Series::new("Best");
    for frac in cfg.budget_fracs() {
        let budget = Budget::fraction(total, frac);
        let s_naive = greedy_naive(&w.instance, &w.query, budget);
        naive.push(frac, eng.ev_of(s_naive.objects()));
        let s_gmv = greedy_min_var_with_engine(&w.instance, &eng, budget);
        gmv.push(frac, eng.ev_of(s_gmv.objects()));
        let s_best = best_min_var_with_engine(&w.instance, &eng, budget, BestConfig::default());
        best.push(frac, eng.ev_of(s_best.objects()));
    }
    fig.series.extend([naive, gmv, best]);
    fig.emit(cfg);
}

fn main() {
    let cfg = HarnessCfg::from_args();
    let firearms = cdc_firearms_uniqueness(cfg.seed).unwrap();
    panel(
        "fig02a",
        "CDC-firearms uniqueness (8 perturbations, V = 6)",
        &firearms,
        &cfg,
    );
    let causes = cdc_causes_uniqueness(cfg.seed).unwrap();
    panel(
        "fig02b",
        "CDC-causes uniqueness (8 perturbations of 8 objects, V = 4)",
        &causes,
        &cfg,
    );
}
