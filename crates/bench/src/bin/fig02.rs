//! Fig. 2 — reducing uncertainty in claim *uniqueness* on the CDC
//! datasets (non-modular objectives, §4.2): GreedyNaive vs GreedyMinVar
//! vs Best, expected variance of the duplicity measure vs budget.
//! Served through the planner registry (one discrete MinVar [`Problem`]
//! per dataset, one batch of strategy × budget jobs over it — jobs on
//! one problem share a single engine cache, so the scoped-EV tables are
//! built once per panel, not once per strategy).

use std::sync::Arc;

use fc_bench::{Figure, HarnessCfg, Series};
use fc_core::planner::Problem;
use fc_core::{BatchJob, Budget, ExecOptions, SolverRegistry};
use fc_datasets::workloads::{cdc_causes_uniqueness, cdc_firearms_uniqueness, UniquenessWorkload};

const STRATEGIES: [(&str, &str); 3] = [
    ("GreedyNaive", "greedy-naive"),
    ("GreedyMinVar", "greedy"),
    ("Best", "best"),
];

fn panel(id: &str, title: &str, w: &UniquenessWorkload, cfg: &HarnessCfg) {
    let registry = SolverRegistry::with_defaults();
    let problem = Problem::discrete_min_var(w.instance.clone(), Arc::new(w.query.clone())).unwrap();
    let total = w.instance.total_cost();
    let fracs = cfg.budget_fracs();
    let budgets: Vec<Budget> = fracs.iter().map(|&f| Budget::fraction(total, f)).collect();
    let mut fig = Figure::new(id, title, "budget_frac", "expected variance after cleaning");
    let problem = &problem;
    let jobs: Vec<BatchJob<'_>> = STRATEGIES
        .iter()
        .flat_map(|&(_, strategy)| {
            budgets.iter().map(move |&budget| BatchJob {
                strategy,
                problem,
                budget,
                key: None,
            })
        })
        .collect();
    let plans = registry
        .solve_batch(&jobs, &ExecOptions::default())
        .expect("discrete MinVar supports all fig02 strategies");
    for ((label, _), plans) in STRATEGIES.iter().zip(plans.chunks(budgets.len())) {
        let mut series = Series::new(*label);
        for (&frac, plan) in fracs.iter().zip(plans) {
            series.push(frac, plan.after);
        }
        fig.series.push(series);
    }
    fig.emit(cfg);
}

fn main() {
    let cfg = HarnessCfg::from_args();
    let firearms = cdc_firearms_uniqueness(cfg.seed).unwrap();
    panel(
        "fig02a",
        "CDC-firearms uniqueness (8 perturbations, V = 6)",
        &firearms,
        &cfg,
    );
    let causes = cdc_causes_uniqueness(cfg.seed).unwrap();
    panel(
        "fig02b",
        "CDC-causes uniqueness (8 perturbations of 8 objects, V = 4)",
        &causes,
        &cfg,
    );
}
