//! Figs. 3 — uniqueness on URx: for each Γ ∈ {50..300}, expected
//! duplicity variance vs budget for GreedyNaive / GreedyMinVar / Best
//! (§4.2), served through the planner registry (one batch of
//! strategy × budget jobs per Γ panel, sharing one engine build — see
//! [`fc_bench::synthetic_uniqueness_sweep`]). The generator can be
//! overridden with a free arg (`lnx`/`smx`), though `fig04`/`fig05`
//! preset those.

use fc_bench::{synthetic_uniqueness_sweep, HarnessCfg};
use fc_datasets::SyntheticKind;

fn main() {
    let cfg = HarnessCfg::from_args();
    let kind = std::env::args()
        .find_map(|a| match a.as_str() {
            "lnx" => Some(SyntheticKind::Lnx),
            "smx" => Some(SyntheticKind::Smx),
            "urx" => Some(SyntheticKind::Urx),
            _ => None,
        })
        .unwrap_or(SyntheticKind::Urx);
    let fig_no = match kind {
        SyntheticKind::Urx => 3,
        SyntheticKind::Lnx => 4,
        SyntheticKind::Smx => 5,
    };
    synthetic_uniqueness_sweep(kind, fig_no, &cfg);
}
