//! Fig. 5 — uniqueness on SMx, Γ ∈ {50..300}, served through the
//! planner registry (see fig03).

use fc_bench::{synthetic_uniqueness_sweep, HarnessCfg};
use fc_datasets::SyntheticKind;

fn main() {
    let cfg = HarnessCfg::from_args();
    synthetic_uniqueness_sweep(SyntheticKind::Smx, 5, &cfg);
}
