//! Fig. 8 — "effectiveness in action" on CDC-causes (§4.3): posterior
//! mean / sd of the duplicity estimate vs budget after revealing hidden
//! truths for each algorithm's cleaning set.

use fc_bench::{in_action_sweep, HarnessCfg};

fn main() {
    let cfg = HarnessCfg::from_args();
    let w = fc_datasets::workloads::cdc_causes_uniqueness(cfg.seed).unwrap();
    in_action_sweep(8, "CDC-causes in action", &w, &cfg);
}
