//! §4.3 "finding counters" — the text results of the paper: budget
//! fraction needed before the revealed values expose a counterargument,
//! GreedyMaxPr vs GreedyNaive, on CDC-firearms and URx.
//!
//! The paper reports GreedyMaxPr at 7% vs GreedyNaive at 74% on
//! CDC-firearms (with ≥98% probability), and 8% vs 21% of total cost on
//! URx. We reproduce the *ordering and rough factor* in aggregate over
//! several qualifying scenarios (no counter visible on the noisy current
//! data, a counter hidden in the truth). Note GreedyMaxPr may refuse to
//! clean past its probability peak (the Fig. 12 behaviour), so on
//! unlucky draws it can miss a counter entirely — those scenarios are
//! reported as `>100`.

use fc_bench::{Figure, HarnessCfg, Series};
use fc_core::algo::{greedy_max_pr_discrete, greedy_naive};
use fc_core::{Budget, Selection};
use fc_datasets::workloads::{counters_firearms, counters_urx, CountersWorkload};

fn qualifying(w: &CountersWorkload) -> bool {
    let theta = w.claims.original_value(w.instance.current());
    w.claims
        .strongest_duplicate(w.instance.current(), theta)
        .is_none()
        && w.claims.strongest_duplicate(&w.truth, theta).is_some()
}

fn budget_to_find(w: &CountersWorkload, select: impl Fn(Budget) -> Selection, grid: &[u64]) -> u64 {
    let theta = w.claims.original_value(w.instance.current());
    let total = w.instance.total_cost();
    for &pct in grid {
        let sel = select(Budget::fraction(total, pct as f64 / 100.0));
        let mut v = w.instance.current().to_vec();
        for &i in sel.objects() {
            v[i] = w.truth[i];
        }
        if w.claims.strongest_duplicate(&v, theta).is_some() {
            return pct;
        }
    }
    101
}

fn run(
    name: &str,
    make: impl Fn(u64) -> CountersWorkload,
    cfg: &HarnessCfg,
    fig: &mut Figure,
    x_base: f64,
) {
    let grid: Vec<u64> = if cfg.quick {
        (1..=20).map(|i| i * 5).collect()
    } else {
        (1..=33).map(|i| i * 3).collect()
    };
    let want = if cfg.quick { 3 } else { 4 };
    let mut found = 0usize;
    let mut seed = cfg.seed;
    let mut sum_maxpr = 0u64;
    let mut sum_naive = 0u64;
    while found < want && seed < cfg.seed + 600 {
        let w = make(seed);
        seed += 1;
        if !qualifying(&w) {
            continue;
        }
        let maxpr = budget_to_find(
            &w,
            |b| greedy_max_pr_discrete(&w.instance, &w.query, b, w.tau, Some(1 << 12)).unwrap(),
            &grid,
        );
        let naive = budget_to_find(&w, |b| greedy_naive(&w.instance, &w.query, b), &grid);
        println!(
            "{name} scenario (seed {}): GreedyMaxPr {}%, GreedyNaive {}%",
            seed - 1,
            if maxpr > 100 {
                ">100".into()
            } else {
                maxpr.to_string()
            },
            if naive > 100 {
                ">100".into()
            } else {
                naive.to_string()
            },
        );
        fig.series[0].push(x_base + found as f64 / 10.0, maxpr as f64);
        fig.series[1].push(x_base + found as f64 / 10.0, naive as f64);
        sum_maxpr += maxpr;
        sum_naive += naive;
        found += 1;
    }
    if found > 0 {
        println!(
            "{name} aggregate over {found} scenarios: GreedyMaxPr avg {:.1}%, GreedyNaive avg {:.1}%\n",
            sum_maxpr as f64 / found as f64,
            sum_naive as f64 / found as f64
        );
    } else {
        println!("{name}: no qualifying scenario in seed range\n");
    }
}

fn main() {
    let cfg = HarnessCfg::from_args();
    let mut fig = Figure::new(
        "counters",
        "budget % until a counterargument surfaces (x: 0.x = CDC scenarios, 1.x = URx)",
        "scenario",
        "budget %",
    );
    fig.series.push(Series::new("GreedyMaxPr"));
    fig.series.push(Series::new("GreedyNaive"));
    run(
        "CDC-firearms",
        |s| counters_firearms(s).unwrap(),
        &cfg,
        &mut fig,
        0.0,
    );
    run("URx", |s| counters_urx(s).unwrap(), &cfg, &mut fig, 1.0);
    fig.emit(&cfg);
}
