//! Fig. 9 — "effectiveness in action" on URx with Γ = 100 (§4.3).

use fc_bench::{in_action_sweep, HarnessCfg};
use fc_datasets::SyntheticKind;

fn main() {
    let cfg = HarnessCfg::from_args();
    let n = if cfg.quick { 20 } else { 40 };
    let w = fc_datasets::workloads::synthetic_uniqueness(SyntheticKind::Urx, n, 100.0, cfg.seed)
        .unwrap();
    in_action_sweep(9, "URx (Γ = 100) in action", &w, &cfg);
}
