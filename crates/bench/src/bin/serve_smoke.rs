//! `serve_smoke` — the serving-layer counterpart of `par_sweep`: a CI
//! gate over the long-lived [`PlannerService`] + [`ClaimStream`] stack.
//!
//! Builds two synthetic uniqueness datasets, opens a claim stream over
//! each (sharing one service, one store, one worker pool), and drives a
//! **mixed interactive + sweep workload** through them:
//!
//! 1. concurrent single-objective submissions (bias/dup/frag/counter)
//!    racing a budget sweep, from multiple submitter threads;
//! 2. a cleaning step on stream A (`mark_cleaned`), then resubmission
//!    on both streams.
//!
//! The binary **fails (exit 1)** if
//!
//! * any served plan diverges from its synchronous
//!   `recommend`/`recommend_many`/`recommend_sweep` twin
//!   ([`Plan::divergence`] is the shared byte-identity gate), or
//! * a stale cache entry survives invalidation — detected both
//!   structurally (stream A's post-cleaning plans must match a fresh
//!   session over the cleaned data) and by the store counters (stream
//!   B must report **zero** scoped-table rebuilds after stream A's
//!   invalidation), or
//! * the **cancellation storm** (phase 3: submit/cancel churn from
//!   concurrent submitters under a tight tenant quota) produces a
//!   diverging plan, a cancelled request that reports `Ready`, a
//!   stale serve afterwards, or quota accounting that does not return
//!   to zero once the churn drains.
//!
//! Run `--quick` for the CI-sized instance.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fact_clean::prelude::*;
use fc_bench::HarnessCfg;
use fc_claims::window_sum_family;
use fc_core::SolverRegistry;
use fc_datasets::synthetic::urx;
use fc_datasets::workloads::LAMBDA;

fn dataset(n: usize, seed: u64) -> (Instance, ClaimSet) {
    let instance = urx(n, seed).expect("synthetic instance");
    let claims =
        window_sum_family(n, 4, n - 4, Direction::LowerIsStronger, LAMBDA).expect("claim family");
    (instance, claims)
}

fn sequential_session(instance: &Instance, claims: &ClaimSet) -> CleaningSession {
    SessionBuilder::new()
        .discrete(instance.clone())
        .claims(claims.clone())
        .parallelism(Parallelism::Sequential)
        .build()
        .expect("data and claims are set")
}

fn specs() -> Vec<ObjectiveSpec> {
    vec![
        ObjectiveSpec::ascertain(Measure::Bias),
        ObjectiveSpec::ascertain(Measure::Dup),
        ObjectiveSpec::ascertain(Measure::Frag),
        ObjectiveSpec::find_counter(5.0),
    ]
}

fn main() -> ExitCode {
    let cfg = HarnessCfg::from_args();
    // The mixed workload includes MaxPr (convolution) claims, whose
    // greedy probes are O(budget · n · bins) — size accordingly.
    let n = if cfg.quick { 100 } else { 400 };
    let (instance_a, claims_a) = dataset(n, cfg.seed);
    let (instance_b, claims_b) = dataset(n.saturating_sub(8), cfg.seed ^ 0xB);
    let budget = Budget::fraction(instance_a.total_cost(), 0.2);
    let budgets: Vec<Budget> = (1..=6)
        .map(|i| Budget::fraction(instance_a.total_cost(), i as f64 / 20.0))
        .collect();
    let specs = specs();

    // Inline threshold 0 so even the quick workload exercises the
    // queue, the lanes, and the pool — the paths this gate exists for.
    let service = PlannerService::new(
        Arc::new(SolverRegistry::with_defaults()),
        ServiceOptions::new().with_inline_threshold(0),
    );
    let store = Arc::clone(service.store());
    let mut stream_a =
        ClaimStream::open(sequential_session(&instance_a, &claims_a), service.clone());
    let stream_b = ClaimStream::open(sequential_session(&instance_b, &claims_b), service.clone());

    let failed = AtomicBool::new(false);
    let check = |what: &str, seq: &[Plan], served: &[Plan]| {
        if seq.len() != served.len() {
            eprintln!("FAIL {what}: plan count {} vs {}", seq.len(), served.len());
            failed.store(true, Ordering::Relaxed);
            return;
        }
        for (i, (s, p)) in seq.iter().zip(served).enumerate() {
            if let Some(why) = s.divergence(p) {
                eprintln!("FAIL {what}: served plan {i} diverges: {why}");
                failed.store(true, Ordering::Relaxed);
            }
        }
    };

    // --- 1. mixed interactive + sweep workload, concurrent submitters ---
    let seq_a = sequential_session(&instance_a, &claims_a);
    let seq_many = seq_a
        .recommend_many(&specs, budget)
        .expect("sequential batch");
    let sweep_spec = ObjectiveSpec::ascertain(Measure::Dup);
    let seq_sweep = seq_a
        .recommend_sweep(&sweep_spec, &budgets)
        .expect("sequential sweep");

    let t = Instant::now();
    let sweep_handle = stream_a
        .submit_sweep(&sweep_spec, &budgets)
        .expect("sweep submission");
    let served_many: Vec<Plan> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let stream_a = &stream_a;
                let specs = &specs;
                s.spawn(move || {
                    specs
                        .iter()
                        .map(|spec| {
                            stream_a
                                .submit(spec.clone(), budget)
                                .expect("submission")
                                .wait()
                                .expect("interactive claim")
                        })
                        .collect::<Vec<Plan>>()
                })
            })
            .collect();
        let mut first: Option<Vec<Plan>> = None;
        for handle in handles {
            let plans = handle.join().expect("submitter thread");
            match &first {
                None => first = Some(plans),
                Some(reference) => {
                    // Every submitter must see identical answers.
                    for (i, (a, b)) in reference.iter().zip(&plans).enumerate() {
                        if let Some(why) = a.divergence(b) {
                            eprintln!("FAIL cross-submitter: plan {i} diverges: {why}");
                            std::process::exit(1);
                        }
                    }
                }
            }
        }
        first.expect("at least one submitter")
    });
    let served_sweep = sweep_handle.wait().expect("sweep result");
    let mixed_time = t.elapsed();
    check("interactive claims", &seq_many, &served_many);
    check("budget sweep", &seq_sweep, &served_sweep);
    let stats = service.stats();
    println!(
        "serve_smoke: n = {n}, mixed workload ({} requests, {} inline / {} interactive / {} bulk) \
         in {:.3}s",
        stats.submitted,
        stats.inline,
        stats.interactive,
        stats.bulk,
        mixed_time.as_secs_f64(),
    );

    // --- 2. cleaning step: surgical invalidation, no stale serves ---
    // Warm stream B, remember the build count.
    let warm_b = stream_b
        .submit(sweep_spec.clone(), budget)
        .expect("submission")
        .wait()
        .expect("stream B warm-up");
    let builds_before = store.stats().scoped_builds;

    // Clean stream A's recommended set at the distribution means.
    let cleaned_objects = seq_many[1].selection.objects().to_vec();
    let revealed: Vec<f64> = cleaned_objects
        .iter()
        .map(|&i| stream_a.session().instance().dist(i).mean())
        .collect();
    let invalidated = stream_a
        .mark_cleaned(&cleaned_objects, &revealed)
        .expect("cleaning step");

    // Stream A resubmits: must match a fresh session over the cleaned
    // data — a stale cache serve would diverge here.
    let fresh = stream_a
        .session()
        .recommend_many(&specs, budget)
        .expect("fresh post-cleaning batch");
    let after: Vec<Plan> = specs
        .iter()
        .map(|spec| {
            stream_a
                .submit(spec.clone(), budget)
                .expect("submission")
                .wait()
                .expect("post-cleaning claim")
        })
        .collect();
    check("post-cleaning claims", &fresh, &after);

    // Stream B resubmits: zero rebuilds (surgical invalidation), same
    // answer.
    let again_b = stream_b
        .submit(sweep_spec, budget)
        .expect("submission")
        .wait()
        .expect("stream B resubmit");
    check(
        "unrelated stream",
        std::slice::from_ref(&warm_b),
        std::slice::from_ref(&again_b),
    );
    let builds_after = store.stats().scoped_builds;
    // Stream B's own warmth is read from its plan's provenance — the
    // per-plan counters, unlike the global build delta, cannot be
    // polluted by stream A's expected post-cleaning rebuilds.
    println!(
        "cleaning step: {invalidated} store entries invalidated, scoped builds {} -> {} \
         (stream B store misses: {})",
        builds_before, builds_after, again_b.diagnostics.store_misses,
    );
    if again_b.diagnostics.store_misses != 0 {
        eprintln!(
            "FAIL stale-cache gate: stream B rebuilt after an unrelated invalidation \
             (diagnostics: {:?})",
            again_b.diagnostics
        );
        failed.store(true, Ordering::Relaxed);
    }
    if invalidated == 0 {
        eprintln!("FAIL stale-cache gate: cleaning invalidated no store entries");
        failed.store(true, Ordering::Relaxed);
    }

    // --- 2b. delta-resolve: out-of-scope cleaning rekeys, not rebuilds ---
    // A stream whose claim family leaves the last four objects
    // unreferenced: cleaning one of them re-fingerprints the instance
    // but changes no cached table value, so the store entries must be
    // *carried* to the new key — zero invalidations, zero scoped
    // rebuilds, zero store misses on the resubmit.
    let instance_d = urx(n, cfg.seed ^ 0xD).expect("synthetic instance");
    let claims_d = window_sum_family(n - 4, 4, n - 8, Direction::LowerIsStronger, LAMBDA)
        .expect("truncated claim family");
    let mut stream_d =
        ClaimStream::open(sequential_session(&instance_d, &claims_d), service.clone());
    let delta_spec = ObjectiveSpec::ascertain(Measure::Dup);
    stream_d
        .submit(delta_spec.clone(), budget)
        .expect("submission")
        .wait()
        .expect("delta stream warm-up");
    let before_delta = store.stats();
    let out_of_scope = n - 1;
    let delta_invalidated = stream_d
        .mark_cleaned(&[out_of_scope], &[instance_d.dist(out_of_scope).mean()])
        .expect("out-of-scope cleaning step");
    let fresh_d = stream_d
        .session()
        .recommend(delta_spec.clone(), budget)
        .expect("fresh post-delta twin");
    let after_d = stream_d
        .submit(delta_spec, budget)
        .expect("submission")
        .wait()
        .expect("post-delta claim");
    check(
        "delta-resolve stream",
        std::slice::from_ref(&fresh_d),
        std::slice::from_ref(&after_d),
    );
    let after_delta = store.stats();
    println!(
        "delta-resolve: {delta_invalidated} invalidated, {} rekeyed, scoped builds {} -> {} \
         (store misses: {})",
        after_delta.rekeys - before_delta.rekeys,
        before_delta.scoped_builds,
        after_delta.scoped_builds,
        after_d.diagnostics.store_misses,
    );
    if delta_invalidated != 0 || after_delta.rekeys == before_delta.rekeys {
        eprintln!(
            "FAIL delta-resolve gate: out-of-scope cleaning invalidated {delta_invalidated} \
             entries ({} rekeyed) instead of carrying them",
            after_delta.rekeys - before_delta.rekeys,
        );
        failed.store(true, Ordering::Relaxed);
    }
    if after_d.diagnostics.store_misses != 0
        || after_delta.scoped_builds != before_delta.scoped_builds
    {
        eprintln!(
            "FAIL delta-resolve gate: resubmit after an out-of-scope clean rebuilt \
             (scoped builds {} -> {}, store misses {})",
            before_delta.scoped_builds, after_delta.scoped_builds, after_d.diagnostics.store_misses,
        );
        failed.store(true, Ordering::Relaxed);
    }

    // --- 3. cancellation storm: submit/cancel churn under quota -------
    // A third stream over stream A's *cleaned* data, quota-capped, is
    // hammered by concurrent submitters that cancel roughly a third of
    // their requests mid-flight. Gates: surviving plans stay
    // byte-identical to their sequential twins, a cancelled request
    // never reports Ready, quota accounting returns to zero, and
    // stream B still serves warm, identical answers afterwards.
    let storm_tenant = TenantId::new("storm");
    service.set_quota(
        storm_tenant.clone(),
        QuotaPolicy::default().with_max_in_flight(2),
    );
    let storm_stream = ClaimStream::open(stream_a.session().clone(), service.clone())
        .with_tenant(storm_tenant.clone());
    let storm_sweep_spec = ObjectiveSpec::ascertain(Measure::Dup);
    let expected_sweep = stream_a
        .session()
        .recommend_sweep(&storm_sweep_spec, &budgets)
        .expect("sequential storm-sweep twin");
    let rejected = AtomicU64::new(0);
    let cancelled_live = AtomicU64::new(0);
    let stats_before_storm = service.stats();
    let t = Instant::now();
    std::thread::scope(|s| {
        for thread in 0..3usize {
            let storm_stream = &storm_stream;
            let storm_sweep_spec = &storm_sweep_spec;
            let budgets = &budgets;
            let specs = &specs;
            let fresh = &fresh;
            let expected_sweep = &expected_sweep;
            let storm_failed = &failed;
            let rejected = &rejected;
            let cancelled_live = &cancelled_live;
            s.spawn(move || {
                let rounds = 6usize;
                for i in 0..rounds {
                    if (thread + i) % 3 == 0 {
                        // A sweep, cancelled mid-flight (or dropped).
                        match storm_stream.submit_sweep(storm_sweep_spec, budgets) {
                            Ok(handle) if i % 2 == 0 => {
                                if handle.cancel() {
                                    cancelled_live.fetch_add(1, Ordering::Relaxed);
                                    match handle.try_wait() {
                                        WaitOutcome::Cancelled => {}
                                        outcome => {
                                            eprintln!(
                                                "FAIL storm: cancelled sweep reported {}",
                                                match outcome {
                                                    WaitOutcome::Ready(_) => "Ready",
                                                    WaitOutcome::Taken => "Taken",
                                                    WaitOutcome::TimedOut => "TimedOut",
                                                    WaitOutcome::Cancelled => unreachable!(),
                                                }
                                            );
                                            storm_failed.store(true, Ordering::Relaxed);
                                        }
                                    }
                                } else {
                                    // Lost the race: it completed first —
                                    // then the result must be the real one.
                                    let plans = handle.wait().expect("completed before the cancel");
                                    for (a, b) in plans.iter().zip(expected_sweep) {
                                        if let Some(why) = a.divergence(b) {
                                            eprintln!("FAIL storm sweep: {why}");
                                            storm_failed.store(true, Ordering::Relaxed);
                                        }
                                    }
                                }
                            }
                            Ok(handle) => drop(handle), // cancellation-on-drop churn
                            Err(fc_core::CoreError::QuotaExceeded { .. }) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("FAIL storm: unexpected submit error: {e}");
                                storm_failed.store(true, Ordering::Relaxed);
                            }
                        }
                    } else {
                        let spec = &specs[i % specs.len()];
                        match storm_stream.submit(spec.clone(), budget) {
                            Ok(handle) => match handle.wait() {
                                Ok(plan) => {
                                    if let Some(why) = plan.divergence(&fresh[i % specs.len()]) {
                                        eprintln!("FAIL storm claim: {why}");
                                        storm_failed.store(true, Ordering::Relaxed);
                                    }
                                }
                                Err(e) => {
                                    eprintln!("FAIL storm claim: {e}");
                                    storm_failed.store(true, Ordering::Relaxed);
                                }
                            },
                            Err(fc_core::CoreError::QuotaExceeded { .. }) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("FAIL storm: unexpected submit error: {e}");
                                storm_failed.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    let storm_time = t.elapsed();

    // Quota-accounting drift: the ledger must read zero once the churn
    // has drained (cancel releases immediately; completion releases
    // before the handle resolves).
    let usage = service.quota_usage(&storm_tenant);
    if usage != QuotaUsage::default() {
        eprintln!("FAIL storm: quota accounting drifted: {usage:?}");
        failed.store(true, Ordering::Relaxed);
    }
    let stats = service.stats();
    let delta_submitted = stats.submitted - stats_before_storm.submitted;
    let delta_resolved = (stats.completed + stats.cancelled)
        - (stats_before_storm.completed + stats_before_storm.cancelled);
    if delta_submitted != delta_resolved {
        eprintln!(
            "FAIL storm: {delta_submitted} requests submitted but {delta_resolved} resolved \
             (completed+cancelled)"
        );
        failed.store(true, Ordering::Relaxed);
    }
    // Stale-serve gate, post-storm: stream B must still serve its warm,
    // byte-identical answer.
    let b_after_storm = stream_b
        .submit(ObjectiveSpec::ascertain(Measure::Dup), budget)
        .expect("submission")
        .wait()
        .expect("stream B post-storm");
    check(
        "post-storm unrelated stream",
        std::slice::from_ref(&warm_b),
        std::slice::from_ref(&b_after_storm),
    );
    println!(
        "cancellation storm: {} cancelled live, {} quota-rejected, {} cancelled total, \
         in {:.3}s",
        cancelled_live.load(Ordering::Relaxed),
        rejected.load(Ordering::Relaxed),
        stats.cancelled,
        storm_time.as_secs_f64(),
    );

    if failed.load(Ordering::Relaxed) {
        ExitCode::FAILURE
    } else {
        println!(
            "OK: served plans byte-identical to sequential; invalidation surgical; \
             cancellation/quota accounting clean"
        );
        ExitCode::SUCCESS
    }
}
