//! Fig. 7 — reducing uncertainty in claim *robustness* (frag, §4.2):
//! (a) CDC-firearms "as high as Γ′"; (b) URx with n = 100, 25
//! perturbations, Γ′ = 100.
//!
//! Served through the planner registry like fig02–06: one discrete
//! MinVar [`fc_core::Problem`] per panel and one `solve_batch` of
//! strategy × budget jobs over it, so the scoped-EV tables are built
//! once per panel instead of once per strategy. The plotted value is
//! [`Plan::after`](fc_core::Plan) — the same scoped `EV` the legacy
//! `*_with_engine` path reported.

use std::sync::Arc;

use fc_bench::{strategy_budget_batch, Figure, HarnessCfg, Series};
use fc_core::{Budget, Problem, SolverRegistry};
use fc_datasets::workloads::{cdc_firearms_robustness, synthetic_robustness, RobustnessWorkload};
use fc_datasets::SyntheticKind;

const STRATEGIES: [(&str, &str); 3] = [
    ("GreedyNaive", "greedy-naive"),
    ("GreedyMinVar", "greedy"),
    ("Best", "best"),
];

fn panel(
    id: &str,
    title: &str,
    w: &RobustnessWorkload,
    registry: &SolverRegistry,
    cfg: &HarnessCfg,
) {
    let problem = Problem::discrete_min_var(w.instance.clone(), Arc::new(w.query.clone()))
        .expect("robustness workloads lower onto discrete MinVar");
    let total = w.instance.total_cost();
    let fracs = cfg.budget_fracs();
    let budgets: Vec<Budget> = fracs.iter().map(|&f| Budget::fraction(total, f)).collect();
    let plans = strategy_budget_batch(registry, &problem, &STRATEGIES.map(|(_, s)| s), &budgets);
    let mut fig = Figure::new(id, title, "budget_frac", "expected variance after cleaning");
    for ((label, _), plans) in STRATEGIES.iter().zip(plans.chunks(budgets.len())) {
        let mut series = Series::new(*label);
        for (&frac, plan) in fracs.iter().zip(plans) {
            series.push(frac, plan.after);
        }
        fig.series.push(series);
    }
    fig.emit(cfg);
}

fn main() {
    let cfg = HarnessCfg::from_args();
    let registry = SolverRegistry::with_defaults();
    let firearms = cdc_firearms_robustness(cfg.seed).unwrap();
    panel(
        "fig07a",
        "CDC-firearms robustness (8 perturbations)",
        &firearms,
        &registry,
        &cfg,
    );
    let n = if cfg.quick { 40 } else { 100 };
    let urx = synthetic_robustness(SyntheticKind::Urx, n, 100.0, cfg.seed).unwrap();
    panel(
        "fig07b",
        "URx robustness, Γ′ = 100 (25 perturbations)",
        &urx,
        &registry,
        &cfg,
    );
}
