//! Fig. 7 — reducing uncertainty in claim *robustness* (frag, §4.2):
//! (a) CDC-firearms "as high as Γ′"; (b) URx with n = 100, 25
//! perturbations, Γ′ = 100.

use fc_bench::{Figure, HarnessCfg, Series};
use fc_core::algo::{
    best_min_var_with_engine, greedy_min_var_with_engine, greedy_naive, BestConfig,
};
use fc_core::Budget;
use fc_datasets::workloads::{cdc_firearms_robustness, synthetic_robustness, RobustnessWorkload};
use fc_datasets::SyntheticKind;

fn panel(id: &str, title: &str, w: &RobustnessWorkload, cfg: &HarnessCfg) {
    let eng = fc_core::ev::ScopedEv::new(&w.instance, &w.query);
    let total = w.instance.total_cost();
    let mut fig = Figure::new(id, title, "budget_frac", "expected variance after cleaning");
    let mut naive = Series::new("GreedyNaive");
    let mut gmv = Series::new("GreedyMinVar");
    let mut best = Series::new("Best");
    for frac in cfg.budget_fracs() {
        let budget = Budget::fraction(total, frac);
        naive.push(
            frac,
            eng.ev_of(greedy_naive(&w.instance, &w.query, budget).objects()),
        );
        gmv.push(
            frac,
            eng.ev_of(greedy_min_var_with_engine(&w.instance, &eng, budget).objects()),
        );
        best.push(
            frac,
            eng.ev_of(
                best_min_var_with_engine(&w.instance, &eng, budget, BestConfig::default())
                    .objects(),
            ),
        );
    }
    fig.series.extend([naive, gmv, best]);
    fig.emit(cfg);
}

fn main() {
    let cfg = HarnessCfg::from_args();
    let firearms = cdc_firearms_robustness(cfg.seed).unwrap();
    panel(
        "fig07a",
        "CDC-firearms robustness (8 perturbations)",
        &firearms,
        &cfg,
    );
    let n = if cfg.quick { 40 } else { 100 };
    let urx = synthetic_robustness(SyntheticKind::Urx, n, 100.0, cfg.seed).unwrap();
    panel(
        "fig07b",
        "URx robustness, Γ′ = 100 (25 perturbations)",
        &urx,
        &cfg,
    );
}
