//! Fig. 1 — effectiveness of algorithms in reducing uncertainty in
//! claim *fairness* (modular objectives, §4.1), served through the
//! planner registry: one Gaussian MinVar [`Problem`] per dataset, one
//! budget sweep per strategy.
//!
//! Panels: (a) Adoptions (with Random), (b) zoomed Adoptions without
//! Random, (c) CDC-firearms, (d) CDC-causes. Each curve is the variance
//! remaining in the fairness measure after cleaning what the algorithm
//! chose at the given budget fraction.

use fc_bench::gaussian_algos as ga;
use fc_bench::{Figure, HarnessCfg, Series};
use fc_core::planner::Problem;
use fc_core::{Budget, SolverRegistry};
use fc_datasets::workloads::{
    cdc_causes_fairness, cdc_firearms_fairness, giuliani_fairness, FairnessWorkload,
};
use fc_uncertain::seeded::child_rng;

const STRATEGIES: [(&str, &str); 4] = [
    ("GreedyNaiveCostBlind", "greedy-naive-cost-blind"),
    ("GreedyNaive", "greedy-naive"),
    ("GreedyMinVar", "greedy"),
    ("Optimum", "optimum-knapsack"),
];

fn panel(id: &str, title: &str, w: &FairnessWorkload, cfg: &HarnessCfg, with_random: bool) {
    let registry = SolverRegistry::with_defaults();
    let problem = Problem::gaussian_min_var(w.instance.clone(), w.weights.clone()).unwrap();
    let total = w.instance.total_cost();
    let fracs = cfg.budget_fracs();
    let budgets: Vec<Budget> = fracs.iter().map(|&f| Budget::fraction(total, f)).collect();
    let mut fig = Figure::new(
        id,
        title,
        "budget_frac",
        "variance in fairness after cleaning",
    );
    if with_random {
        // Random is averaged over many draws, so it bypasses the
        // single-shot registry solver and uses the raw baseline.
        let benefits = ga::benefits(&w.instance, &w.weights);
        let runs = if cfg.quick { 20 } else { 100 };
        let mut rng = child_rng(cfg.seed, 0xF1601);
        let mut random = Series::new("Random");
        for (&frac, &budget) in fracs.iter().zip(&budgets) {
            let avg: f64 = (0..runs)
                .map(|_| ga::remaining(&benefits, &ga::random(&w.instance, budget, &mut rng)))
                .sum::<f64>()
                / f64::from(runs);
            random.push(frac, avg);
        }
        fig.series.push(random);
    }
    for (label, strategy) in STRATEGIES {
        let plans = registry
            .sweep(strategy, &problem, &budgets)
            .expect("gaussian MinVar supports all fig01 strategies");
        let mut series = Series::new(label);
        for (&frac, plan) in fracs.iter().zip(&plans) {
            series.push(frac, plan.after);
        }
        fig.series.push(series);
    }
    fig.emit(cfg);
}

fn main() {
    let cfg = HarnessCfg::from_args();
    let adoptions = giuliani_fairness(cfg.seed).unwrap();
    panel(
        "fig01a",
        "Adoptions — Giuliani window claim (18 perturbations, λ = 1.5)",
        &adoptions,
        &cfg,
        true,
    );
    panel(
        "fig01b",
        "Adoptions, zoomed (no Random)",
        &adoptions,
        &cfg,
        false,
    );
    let firearms = cdc_firearms_fairness(cfg.seed).unwrap();
    panel(
        "fig01c",
        "CDC-firearms — back-to-back 4-year comparison (10 perturbations)",
        &firearms,
        &cfg,
        false,
    );
    let causes = cdc_causes_fairness(cfg.seed).unwrap();
    panel(
        "fig01d",
        "CDC-causes — transportation vs 30% of other causes (16 perturbations)",
        &causes,
        &cfg,
        false,
    );
}
