//! Fig. 1 — effectiveness of algorithms in reducing uncertainty in
//! claim *fairness* (modular objectives, §4.1).
//!
//! Panels: (a) Adoptions (with Random), (b) zoomed Adoptions without
//! Random, (c) CDC-firearms, (d) CDC-causes. Each curve is the variance
//! remaining in the fairness measure after cleaning what the algorithm
//! chose at the given budget fraction.

use fc_bench::gaussian_algos as ga;
use fc_bench::{Figure, HarnessCfg, Series};
use fc_core::algo::{greedy_min_var_gaussian, knapsack_optimum_min_var_gaussian};
use fc_core::Budget;
use fc_datasets::workloads::{
    cdc_causes_fairness, cdc_firearms_fairness, giuliani_fairness, FairnessWorkload,
};
use fc_uncertain::seeded::child_rng;

fn panel(id: &str, title: &str, w: &FairnessWorkload, cfg: &HarnessCfg, with_random: bool) {
    let benefits = ga::benefits(&w.instance, &w.weights);
    let total = w.instance.total_cost();
    let mut fig = Figure::new(
        id,
        title,
        "budget_frac",
        "variance in fairness after cleaning",
    );
    let mut random = Series::new("Random");
    let mut blind = Series::new("GreedyNaiveCostBlind");
    let mut naive = Series::new("GreedyNaive");
    let mut gmv = Series::new("GreedyMinVar");
    let mut opt = Series::new("Optimum");
    let runs = if cfg.quick { 20 } else { 100 };
    let mut rng = child_rng(cfg.seed, 0xF1601);
    for frac in cfg.budget_fracs() {
        let budget = Budget::fraction(total, frac);
        if with_random {
            let avg: f64 = (0..runs)
                .map(|_| ga::remaining(&benefits, &ga::random(&w.instance, budget, &mut rng)))
                .sum::<f64>()
                / runs as f64;
            random.push(frac, avg);
        }
        blind.push(
            frac,
            ga::remaining(&benefits, &ga::naive_cost_blind(&w.instance, &w.weights, budget)),
        );
        naive.push(
            frac,
            ga::remaining(&benefits, &ga::naive(&w.instance, &w.weights, budget)),
        );
        gmv.push(
            frac,
            ga::remaining(
                &benefits,
                &greedy_min_var_gaussian(&w.instance, &w.weights, budget),
            ),
        );
        opt.push(
            frac,
            ga::remaining(
                &benefits,
                &knapsack_optimum_min_var_gaussian(&w.instance, &w.weights, budget),
            ),
        );
    }
    if with_random {
        fig.series.push(random);
    }
    fig.series.extend([blind, naive, gmv, opt]);
    fig.emit(cfg);
}

fn main() {
    let cfg = HarnessCfg::from_args();
    let adoptions = giuliani_fairness(cfg.seed).unwrap();
    panel(
        "fig01a",
        "Adoptions — Giuliani window claim (18 perturbations, λ = 1.5)",
        &adoptions,
        &cfg,
        true,
    );
    panel(
        "fig01b",
        "Adoptions, zoomed (no Random)",
        &adoptions,
        &cfg,
        false,
    );
    let firearms = cdc_firearms_fairness(cfg.seed).unwrap();
    panel(
        "fig01c",
        "CDC-firearms — back-to-back 4-year comparison (10 perturbations)",
        &firearms,
        &cfg,
        false,
    );
    let causes = cdc_causes_fairness(cfg.seed).unwrap();
    panel(
        "fig01d",
        "CDC-causes — transportation vs 30% of other causes (16 perturbations)",
        &causes,
        &cfg,
        false,
    );
}
