//! Offline compatibility shim for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), [`prop_assert!`]/[`prop_assert_eq!`],
//! range and tuple strategies, `prop::collection::vec`, and
//! [`strategy::Strategy::prop_map`]. Cases are sampled from a
//! deterministic per-case RNG — there is no shrinking; a failure reports
//! the case index and the assertion message. Swap the path dependency
//! for the real `proptest` to get shrinking and persistence.

/// RNG plumbing used by the generated tests (an implementation detail of
/// the [`proptest!`] expansion).
#[doc(hidden)]
pub mod __rng {
    pub use rand::{Rng, SeedableRng, SmallRng};
}

/// Strategy: a recipe for sampling values of a given type.
pub mod strategy {
    use rand::SmallRng;

    /// A value-generation recipe (no shrinking in this shim).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A constant strategy (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::{Rng, SmallRng};

    /// Length specifications accepted by [`vec()`]: an exact `usize` or a
    /// `Range<usize>`.
    pub trait IntoLenRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut SmallRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn sample_len(&self, _rng: &mut SmallRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoLenRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` strategy over `element` with length drawn from `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    /// Per-`proptest!` configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real proptest defaults to 256; this shim trades case
            // count for CI wall-clock (the workspace's properties are
            // engine-heavy).
            Self { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Module alias so `prop::collection::vec(...)` resolves as in proptest.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// is expanded into a test that samples its arguments for a number of
/// deterministic cases and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Item-muncher behind [`proptest!`] (implementation detail).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                // Per-test, per-case deterministic stream: hash the test
                // name so sibling properties decorrelate.
                let mut seed = 0xcbf2_9ce4_8422_2325u64;
                for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                    seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
                }
                let mut rng = <$crate::__rng::SmallRng as $crate::__rng::SeedableRng>::seed_from_u64(
                    seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = result {
                    panic!("proptest {} case {case} failed: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items!{ cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in 1.0f64..2.0,
            n in 3usize..6,
            v in prop::collection::vec(0u64..10, 4),
            pair in (0usize..3, -1.0f64..1.0),
        ) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..6).contains(&n));
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!(pair.0 < 3 && pair.1.abs() <= 1.0);
        }

        #[test]
        fn prop_map_applies(
            doubled in (0u64..100).prop_map(|v| v * 2),
        ) {
            prop_assert!(doubled % 2 == 0);
        }

        /// Mirrors `if cond { return Ok(()); }` use inside properties.
        #[test]
        fn early_return_ok_supported(flag in 0usize..2) {
            if flag == 0 {
                return Ok(());
            }
            prop_assert!(flag == 1);
        }
    }
}
