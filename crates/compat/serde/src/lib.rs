//! Offline compatibility shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! downstream consumers, but never (de)serializes anything itself and the
//! build environment has no registry access. This shim provides the two
//! derive macros as no-ops so the annotations compile; swap the path
//! dependency for the real `serde` to get working serialization.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
