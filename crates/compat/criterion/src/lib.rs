//! Offline compatibility shim for `criterion`.
//!
//! Provides the API slice the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`] — as a
//! plain wall-clock harness: each benchmark is warmed up once, then run
//! for a fixed iteration batch and reported as mean ns/iter. No
//! statistics, no plots; swap the path dependency for the real
//! `criterion` to get those.

use std::fmt::Display;
use std::time::Instant;

/// A benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs one benchmark body repeatedly (see [`Bencher::iter`]).
pub struct Bencher {
    iters: u64,
    /// Total measured nanoseconds, filled by [`Bencher::iter`].
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // One warm-up call outside the measurement.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (criterion's sample size is
    /// reinterpreted as a simple iteration count here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed_ns: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns / u128::from(b.iters.max(1));
        println!(
            "bench {:>40}  {:>12} ns/iter",
            format!("{}/{}", self.name, id.id),
            per_iter
        );
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("top").bench_function(id, f);
        self
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
