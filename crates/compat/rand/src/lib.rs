//! Offline compatibility shim for `rand` 0.8.
//!
//! Implements exactly the slice of the `rand` 0.8 API this workspace
//! uses — [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], and
//! [`seq::SliceRandom::shuffle`] — backed by a SplitMix64 generator.
//! All streams are fully deterministic per seed, which is exactly what
//! the reproduction's seeded experiments require. Swap the path
//! dependency for the real `rand` if registry access is available.

/// Low-level entropy source: a full-period 64-bit generator step.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of a 64-bit
    /// draw, which has the better-mixed bits under SplitMix64).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG's raw bits (the shim's analogue
/// of sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::unnecessary_cast)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]` (the shim's
/// analogue of `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::unnecessary_cast)]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = u128::sample_standard(rng) % span;
                ((lo as i128).wrapping_add(draw as i128)) as $t
            }

            #[allow(clippy::unnecessary_cast)]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = u128::sample_standard(rng) % span;
                ((lo as i128).wrapping_add(draw as i128)) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges samplable uniformly (the shim's analogue of `SampleRange`).
/// The single blanket impl per range shape is what lets type inference
/// flow between the range's element type and `gen_range`'s return type.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing RNG interface (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniform draw of `T` over its raw-bits distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// A Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A small, fast, deterministic generator (SplitMix64).
///
/// The real `rand::rngs::SmallRng` is xoshiro-based; SplitMix64 shares
/// its guarantees that matter here — full determinism per seed, 64-bit
/// output, equidistribution good enough for Monte Carlo smoke tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

/// Named-generator module mirroring `rand::rngs`.
pub mod rngs {
    pub use super::SmallRng;
}

/// Sequence helpers mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniformly shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformish_mean() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
